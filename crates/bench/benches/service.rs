//! Job-daemon saturation: how fast the serve pool turns queued jobs into
//! durable summaries when the work itself is nearly free.
//!
//! The runner here is a stub whose seeds cost microseconds, so the
//! numbers isolate the service overhead — admission, the priority queue,
//! the per-transition manifest writes, the per-seed checkpoint records,
//! and the final summary write. That overhead is the floor under every
//! served sweep: a real job pays it on top of its simulation time, and a
//! fleet operator sizing `--workers`/`--queue-depth` wants to know when
//! the bookkeeping (all of it fsync-adjacent disk I/O) saturates before
//! the simulator does.
//!
//! Two groups:
//!
//! * `service/drain` — submit a burst of N tiny jobs and wait for the
//!   queue to drain; jobs/sec at 1 and 4 workers shows how much of the
//!   pipeline serializes on the shared queue and the state directory.
//! * `service/recover` — restart-path cost: `Registry::recover` over a
//!   state directory holding N persisted manifests, which bounds how fast
//!   a killed daemon gets back to serving.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use streamlab::service::{
    AdmissionConfig, AdmissionController, JobCost, JobError, JobManifest, JobRunner, JobSpec, Pool,
    Registry, SeedContext, SubmitOutcome,
};

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("streamlab-bench-serve-{}-{n}", std::process::id()))
}

/// The free-work runner: all that remains is the service's own cost.
struct NoopRunner;

impl JobRunner for NoopRunner {
    fn prepare(&self, spec: &JobSpec) -> Result<JobCost, JobError> {
        Ok(JobCost {
            sessions: spec.seeds.len() as u64,
            threads: 1,
        })
    }

    fn run_seed(
        &self,
        _spec: &JobSpec,
        seed: u64,
        _ctx: &SeedContext<'_>,
    ) -> Result<Value, JobError> {
        Ok(json!({ "seed": seed }))
    }

    fn summarize(&self, _spec: &JobSpec, per_seed: &[(u64, Value)]) -> Result<String, JobError> {
        Ok(json!({ "seeds": per_seed.len() as u64 }).to_json_pretty() + "\n")
    }
}

fn spec(tag: u64) -> JobSpec {
    JobSpec {
        label: format!("bench job {tag}"),
        kind: "noop".into(),
        config: json!({ "tag": tag }),
        seeds: vec![tag, tag + 1],
        threads: 1,
        priority: 0,
        audit: false,
    }
}

/// Submit `jobs` specs into a fresh pool and block until every one is
/// terminal; returns once the last summary hit disk.
fn drain(workers: usize, jobs: u64) {
    let root = scratch();
    let pool = Pool::start(
        Registry::open(&root).expect("open registry"),
        Arc::new(NoopRunner),
        AdmissionController {
            config: AdmissionConfig {
                max_queue_depth: jobs as usize + 1,
                ..AdmissionConfig::default()
            },
        },
        workers,
        None,
    );
    let mut ids = Vec::with_capacity(jobs as usize);
    for tag in 0..jobs {
        match pool.submit(spec(tag)) {
            SubmitOutcome::Accepted { id, .. } => ids.push(id),
            other => panic!("bench submission rejected: {other:?}"),
        }
    }
    for id in &ids {
        loop {
            let state = pool
                .job(id)
                .expect("job exists")
                .status()
                .get("state")
                .and_then(|s| s.as_str().map(str::to_owned))
                .expect("status has a state");
            if state == "Done" {
                break;
            }
            assert!(
                state == "Queued" || state == "Running",
                "bench job {id} ended {state}"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A state directory pre-populated with `jobs` persisted manifests,
/// ready for a recovery pass.
fn seeded_state(jobs: u64) -> PathBuf {
    let root = scratch();
    let registry = Registry::open(&root).expect("open registry");
    for tag in 0..jobs {
        let id = format!("job-{:06}", tag + 1);
        registry
            .save_manifest(&JobManifest::new(id, tag + 1, spec(tag), None))
            .expect("save manifest");
    }
    root
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    const JOBS: u64 = 24;
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("drain", format!("{JOBS}jobs-{workers}w")),
            &workers,
            |b, &workers| b.iter(|| drain(black_box(workers), JOBS)),
        );
    }

    const MANIFESTS: u64 = 64;
    group.bench_function(BenchmarkId::new("recover", MANIFESTS), |b| {
        b.iter_batched(
            || seeded_state(MANIFESTS),
            |root| {
                let report = Registry::open(&root).expect("open").recover();
                assert_eq!(report.jobs.len(), MANIFESTS as usize);
                let _ = std::fs::remove_dir_all(&root);
                black_box(report.next_seq)
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
