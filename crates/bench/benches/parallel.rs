//! Sequential vs shard-parallel engine wall time, plus the telemetry
//! assembly hot path.
//!
//! The contract under test elsewhere (tests/determinism.rs) is that
//! `threads` changes nothing but wall clock; this bench measures the wall
//! clock itself. Speedup is bounded by the number of PoPs and by how
//! evenly sessions land across them. The `tiny` scenario finishes in
//! hundreds of milliseconds, so at that size partition/merge bookkeeping
//! drowns the signal; the `small` scenario carries ≥10× the chunk volume
//! and is what thread-scaling claims (and the CI perf gate) are judged
//! against. `dataset/assemble` isolates the player↔CDN join from the
//! engine so join regressions are attributable.
//!
//! Unlike the other benches this one has a hand-written `main`: after the
//! timed runs it drains the criterion-compat record registry and writes
//! `BENCH_parallel.json` at the workspace root (override the path with
//! `STREAMLAB_BENCH_OUT`) so CI can track wall time per scenario without
//! scraping stdout. Each record carries a `chunks_per_sec` throughput
//! field — chunk records processed per wall second at the median sample —
//! which is the scale-free number to compare across scenarios. CI's
//! perf-gate job sets `STREAMLAB_BENCH_SAMPLES` to trade precision for
//! queue time; the committed baseline uses the default. The `observed`
//! group runs the same workload with the metrics subscriber attached,
//! which is what the "<2% uninstrumented overhead" budget in ISSUE.md is
//! judged against (`engine` group = no subscriber).

use criterion::{take_records, BatchSize, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use streamlab::supervisor::Storage;
use streamlab::telemetry::records::CacheOutcome;
use streamlab::telemetry::{
    CdnChunkRecord, ChunkTruth, Dataset, PlayerChunkRecord, SessionMeta, SessionStream, SpillSpec,
    TelemetrySink,
};
use streamlab::{ObsOptions, Simulation, SimulationConfig, SpillConfig};

/// Current resident-set size of this process in bytes (`VmRSS` from
/// `/proc/self/status`); 0 on platforms without procfs.
fn current_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Background peak-RSS sampler: a thread polls `VmRSS` every ~10 ms and
/// keeps the running maximum. `begin()` resets the window to the current
/// RSS; `peak()` folds in one final sample and returns the window maximum.
///
/// Sampling `VmRSS` (instantaneous) instead of reading `VmHWM` matters:
/// the high-water mark is cumulative over the process, so a later spilled
/// scenario would inherit the peak of an earlier in-RAM one.
struct RssSampler {
    peak: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RssSampler {
    fn start() -> RssSampler {
        let peak = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let (p, s) = (Arc::clone(&peak), Arc::clone(&stop));
        let handle = std::thread::spawn(move || {
            while !s.load(Ordering::Relaxed) {
                p.fetch_max(current_rss_bytes(), Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
        RssSampler {
            peak,
            stop,
            handle: Some(handle),
        }
    }

    fn begin(&self) {
        self.peak.store(current_rss_bytes(), Ordering::Relaxed);
    }

    fn peak(&self) -> u64 {
        self.peak
            .fetch_max(current_rss_bytes(), Ordering::Relaxed)
            .max(current_rss_bytes())
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Timed samples per benchmark; CI lowers this via `STREAMLAB_BENCH_SAMPLES`.
fn sample_size() -> usize {
    std::env::var("STREAMLAB_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn tiny_cfg(threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::tiny(2016);
    cfg.threads = threads;
    cfg
}

/// The thread-scaling workload: the `small` preset widened to 10× tiny's
/// session count (~150k chunk records), so the event loop dominates the
/// partition/merge bookkeeping and per-thread deltas are measurable.
fn small_cfg(threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::small(2016);
    cfg.traffic.sessions = 6_000;
    cfg.threads = threads;
    cfg
}

/// The steal-or-stall workload: `small` with 75% of prefixes pinned to
/// one metro, so one PoP carries the bulk of the sessions. Under the old
/// fixed slot-claiming this scenario flatlined past 2 threads (the hot
/// PoP was one indivisible shard); per-server shards plus work stealing
/// let idle workers drain the hot PoP's tail, which is exactly what this
/// group exists to measure.
fn skewed_cfg(threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::small(2016);
    cfg.traffic.sessions = 6_000;
    cfg.population.focus_metro = "NewYork-NY".to_owned();
    cfg.population.focus_fraction = 0.75;
    cfg.threads = threads;
    cfg
}

/// Joined chunk records one iteration of `cfg` produces (untimed probe
/// run); the numerator of the `chunks_per_sec` field.
fn chunk_volume(cfg: SimulationConfig) -> u64 {
    Simulation::new(cfg)
        .run()
        .expect("probe run")
        .dataset
        .chunk_count() as u64
}

/// A scenario constructor: thread count in, ready-to-run config out.
type ScenarioFn = fn(usize) -> SimulationConfig;

fn bench_parallel(
    c: &mut Criterion,
    chunks_by_label: &mut HashMap<String, u64>,
    rss: &RssSampler,
    rss_by_label: &mut HashMap<String, u64>,
) {
    // `small/8` exists because CI's scaling gate judges near-linear speedup
    // through 4 threads and wants the curve past the knee on record;
    // `skewed` only needs enough points to show stealing beats the worst
    // PoP imbalance.
    let scenarios: [(&str, ScenarioFn, &[usize]); 3] = [
        ("tiny", tiny_cfg, &[1, 2, 4]),
        ("small", small_cfg, &[1, 2, 4, 8]),
        ("skewed", skewed_cfg, &[1, 2, 4]),
    ];

    let mut group = c.benchmark_group("engine");
    group.sample_size(sample_size());
    for (name, make, thread_counts) in scenarios {
        let chunks = chunk_volume(make(1));
        for &threads in thread_counts {
            let label = format!("engine/{name}/{threads}");
            chunks_by_label.insert(label.clone(), chunks);
            rss.begin();
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| black_box(Simulation::new(make(threads)).run().expect("run")))
            });
            rss_by_label.insert(label, rss.peak());
        }
    }
    group.finish();

    let mut group = c.benchmark_group("engine-observed");
    group.sample_size(sample_size());
    let chunks = chunk_volume(tiny_cfg(1));
    for threads in [1usize, 2] {
        let label = format!("engine-observed/tiny/{threads}");
        chunks_by_label.insert(label.clone(), chunks);
        rss.begin();
        group.bench_with_input(
            BenchmarkId::new("tiny", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        Simulation::new(tiny_cfg(threads))
                            .run_observed(ObsOptions::default())
                            .expect("run"),
                    )
                })
            },
        );
        rss_by_label.insert(label, rss.peak());
    }
    // `small/1` is the instrumentation-overhead gate's numerator: CI
    // compares its median against the no-subscriber `engine/small/1` via
    // perf_gate --overhead, so both must run in the same bench invocation.
    let chunks = chunk_volume(small_cfg(1));
    chunks_by_label.insert("engine-observed/small/1".to_owned(), chunks);
    rss.begin();
    group.bench_with_input(BenchmarkId::new("small", 1usize), &1usize, |b, _| {
        b.iter(|| {
            black_box(
                Simulation::new(small_cfg(1))
                    .run_observed(ObsOptions::default())
                    .expect("run"),
            )
        })
    });
    rss_by_label.insert("engine-observed/small/1".to_owned(), rss.peak());
    group.finish();
}

/// The out-of-core scenario: `small`'s world at ≥1M sessions, telemetry
/// spilled to columnar segments and the join consumed as a stream, so the
/// full dataset never materializes. Opt-in via `STREAMLAB_BENCH_LARGE=1`
/// (a single iteration runs for minutes); `STREAMLAB_BENCH_LARGE_SESSIONS`
/// overrides the session count (the RSS-flatness check runs it at 250k,
/// 500k and 1M and expects the same peak).
fn bench_large(
    c: &mut Criterion,
    chunks_by_label: &mut HashMap<String, u64>,
    rss: &RssSampler,
    rss_by_label: &mut HashMap<String, u64>,
) {
    if std::env::var("STREAMLAB_BENCH_LARGE").map(|v| v == "1") != Ok(true) {
        return;
    }
    let sessions: usize = std::env::var("STREAMLAB_BENCH_LARGE_SESSIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let samples: usize = std::env::var("STREAMLAB_BENCH_LARGE_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let threads = 8usize;
    let dir = std::env::temp_dir().join(format!("streamlab-bench-large-{}", std::process::id()));
    let make = || {
        let mut cfg = SimulationConfig::small(2016);
        cfg.traffic.sessions = sessions;
        cfg.threads = threads;
        cfg.spill = Some(SpillConfig {
            dir: dir.to_string_lossy().into_owned(),
            threshold: 262_144,
        });
        cfg
    };

    let label = format!("engine/large/{threads}");
    let chunks = std::cell::Cell::new(0u64);
    let mut group = c.benchmark_group("engine");
    group.sample_size(samples);
    rss.begin();
    group.bench_with_input(BenchmarkId::new("large", threads), &threads, |b, _| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let out = Simulation::new(make()).run_streaming().expect("run");
            assert!(out.shard_errors.is_empty(), "large run lost shards");
            assert!(!out.segments.is_empty(), "large run never spilled");
            // Bounded-memory drain: the timed region covers the whole
            // streamed join, but only one session is ever held at once.
            let mut n = 0u64;
            for s in out.stream {
                n += s.expect("stream yields").chunks.len() as u64;
            }
            chunks.set(n);
            black_box(n)
        })
    });
    rss_by_label.insert(label.clone(), rss.peak());
    chunks_by_label.insert(label, chunks.get());
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sessions × chunks-per-session for the synthetic assembly workload.
const ASSEMBLE_SESSIONS: u64 = 2_000;
const ASSEMBLE_CHUNKS_EACH: u64 = 30;

/// A sink shaped exactly like engine output: per-session chunk records
/// contiguous and ascending, one player + one CDN record per chunk pushed
/// adjacently, one metadata beacon per session. Synthetic so the bench
/// needs no engine run and the record count is exact.
fn synth_sink() -> TelemetrySink {
    let total = (ASSEMBLE_SESSIONS * ASSEMBLE_CHUNKS_EACH) as usize;
    let mut sink = TelemetrySink::with_capacity(ASSEMBLE_SESSIONS as usize, total);
    fill_sink(&mut sink);
    sink
}

/// The same synthetic stream pushed through a spilling sink: segments
/// land in `dir` and the sink is sealed, ready for streaming assembly.
fn synth_spilled_sink(dir: &std::path::Path) -> TelemetrySink {
    let mut sink = TelemetrySink::with_spill(
        ASSEMBLE_SESSIONS as usize,
        SpillSpec {
            dir: dir.to_path_buf(),
            // ~8 segments over the 60k-pair workload.
            threshold: 8_192,
            shard: 0,
            storage: Storage::real(),
        },
    );
    fill_sink(&mut sink);
    sink.seal();
    assert!(
        sink.spill_errors().is_empty(),
        "spill failed: {:?}",
        sink.spill_errors()
    );
    sink
}

fn fill_sink(sink: &mut TelemetrySink) {
    use streamlab::sim::{SimDuration, SimTime};
    use streamlab::workload::{
        AccessClass, Browser, ChunkIndex, GeoPoint, OrgKind, Os, PopId, PrefixId, Region, ServerId,
        SessionId, VideoId,
    };

    for s in 0..ASSEMBLE_SESSIONS {
        let session = SessionId(s);
        for k in 0..ASSEMBLE_CHUNKS_EACH {
            let at = SimTime::from_nanos(s * 1_000_000 + k * 4_000_000_000);
            sink.player_chunk(PlayerChunkRecord {
                session,
                chunk: ChunkIndex(k as u32),
                bitrate_kbps: 3_000,
                requested_at: at,
                d_fb: SimDuration::from_nanos(40_000_000),
                d_lb: SimDuration::from_nanos(900_000_000),
                chunk_secs: 4.0,
                buf_count: 0,
                buf_dur: SimDuration::ZERO,
                visible: true,
                avg_fps: 30.0,
                dropped_frames: 0,
                frames: 120,
                truth: ChunkTruth {
                    dds: SimDuration::from_nanos(850_000_000),
                    rtt0: SimDuration::from_nanos(30_000_000),
                    transient_buffered: false,
                },
            });
            sink.cdn_chunk(CdnChunkRecord {
                session,
                chunk: ChunkIndex(k as u32),
                d_wait: SimDuration::from_nanos(1_000_000),
                d_open: SimDuration::from_nanos(2_000_000),
                d_read: SimDuration::from_nanos(5_000_000),
                d_backend: SimDuration::ZERO,
                cache: CacheOutcome::RamHit,
                retry_fired: false,
                size_bytes: 1_500_000,
                served_at: at,
                segments: 1_000,
                retx_segments: 3,
                tcp: Vec::new(),
            });
        }
        sink.session(SessionMeta {
            session,
            prefix: PrefixId(s % 64),
            video: VideoId(s % 128),
            video_secs: 600.0,
            os: Os::Windows,
            browser: Browser::Chrome,
            org: String::new(),
            org_kind: OrgKind::Residential,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint { lat: 0.0, lon: 0.0 },
            pop: PopId(s % 8),
            server: ServerId(s % 40),
            distance_km: 100.0,
            arrival: SimTime::from_nanos(s * 1_000_000),
            startup_delay_s: 0.8,
            proxied: false,
            ua_mismatch: false,
            gpu: true,
            visible: true,
        });
    }
}

fn bench_assemble(
    c: &mut Criterion,
    chunks_by_label: &mut HashMap<String, u64>,
    rss: &RssSampler,
    rss_by_label: &mut HashMap<String, u64>,
) {
    let total = ASSEMBLE_SESSIONS * ASSEMBLE_CHUNKS_EACH;
    let label = format!("dataset/assemble/{total}");
    chunks_by_label.insert(label.clone(), total);

    let mut group = c.benchmark_group("dataset");
    group.sample_size(sample_size());
    rss.begin();
    group.bench_with_input(BenchmarkId::new("assemble", total), &total, |b, _| {
        b.iter_batched(
            synth_sink,
            |sink| black_box(Dataset::assemble(sink).expect("assemble")),
            BatchSize::LargeInput,
        )
    });
    rss_by_label.insert(label, rss.peak());

    // The streaming twin: identical record volume, but read back from
    // sealed columnar segments through the k-way merge. Segment writes
    // happen in the untimed setup; the timed region is open + merge +
    // per-session assembly — the direct comparison against the in-RAM
    // `assemble` above.
    let label = format!("dataset/assemble-streaming/{total}");
    chunks_by_label.insert(label.clone(), total);
    let dir = std::env::temp_dir().join(format!("streamlab-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spill dir");
    rss.begin();
    group.bench_with_input(
        BenchmarkId::new("assemble-streaming", total),
        &total,
        |b, _| {
            b.iter_batched(
                || synth_spilled_sink(&dir),
                |sink| {
                    let mut chunks = 0usize;
                    for s in SessionStream::new(sink) {
                        chunks += s.expect("stream yields").chunks.len();
                    }
                    black_box(chunks)
                },
                BatchSize::LargeInput,
            )
        },
    );
    rss_by_label.insert(label, rss.peak());
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// Serialize drained [`criterion::BenchRecord`]s as a JSON array.
///
/// Labels only ever contain `[A-Za-z0-9/_-]`, so no string escaping is
/// needed; floats are emitted with enough precision for CI diffing.
/// `chunks_per_sec` is the scenario's chunk-record volume divided by the
/// median sample (0.0 when the volume is unknown for a label);
/// `peak_rss_bytes` is the sampled peak resident-set size over that
/// label's timed window (0 when unsampled), which `perf-gate --memory`
/// turns into a CI memory ceiling.
fn records_to_json(
    records: &[criterion::BenchRecord],
    chunks: &HashMap<String, u64>,
    rss_by_label: &HashMap<String, u64>,
) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let cps = match chunks.get(&r.label) {
            Some(&n) if r.median_ns > 0.0 => n as f64 / (r.median_ns / 1.0e9),
            _ => 0.0,
        };
        let rss = rss_by_label.get(&r.label).copied().unwrap_or(0);
        out.push_str(&format!(
            "  {{\"label\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"samples\": {}, \"chunks_per_sec\": {:.1}, \
             \"peak_rss_bytes\": {}}}",
            r.label, r.mean_ns, r.median_ns, r.min_ns, r.samples, cps, rss
        ));
    }
    out.push_str("\n]\n");
    out
}

fn main() {
    let mut c = Criterion::default();
    let mut chunks_by_label = HashMap::new();
    let mut rss_by_label = HashMap::new();
    let rss = RssSampler::start();
    // `STREAMLAB_BENCH_ONLY=large` runs just the out-of-core scenario in a
    // clean process — CI's memory gate uses it so earlier scenarios'
    // retained allocations don't pollute the sampled RSS floor.
    let only_large = std::env::var("STREAMLAB_BENCH_ONLY").map(|v| v == "large") == Ok(true);
    if !only_large {
        bench_parallel(&mut c, &mut chunks_by_label, &rss, &mut rss_by_label);
    }
    bench_large(&mut c, &mut chunks_by_label, &rss, &mut rss_by_label);
    if !only_large {
        bench_assemble(&mut c, &mut chunks_by_label, &rss, &mut rss_by_label);
    }
    c.final_summary();
    drop(rss);

    let records = take_records();
    let json = records_to_json(&records, &chunks_by_label, &rss_by_label);
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let path = std::env::var("STREAMLAB_BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {} ({} records)", path, records.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
