//! Sequential vs shard-parallel engine wall time.
//!
//! The contract under test elsewhere (tests/determinism.rs) is that
//! `threads` changes nothing but wall clock; this bench measures the wall
//! clock itself. Speedup is bounded by the number of PoPs and by how
//! evenly sessions land across them, and on a single-core host the
//! parallel engine should simply not be slower than its extra
//! partition/merge bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlab::{Simulation, SimulationConfig};

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("tiny", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = SimulationConfig::tiny(2016);
                    cfg.threads = threads;
                    black_box(Simulation::new(cfg).run().expect("run"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
