//! Sequential vs shard-parallel engine wall time, plus the telemetry
//! assembly hot path.
//!
//! The contract under test elsewhere (tests/determinism.rs) is that
//! `threads` changes nothing but wall clock; this bench measures the wall
//! clock itself. Speedup is bounded by the number of PoPs and by how
//! evenly sessions land across them. The `tiny` scenario finishes in
//! hundreds of milliseconds, so at that size partition/merge bookkeeping
//! drowns the signal; the `small` scenario carries ≥10× the chunk volume
//! and is what thread-scaling claims (and the CI perf gate) are judged
//! against. `dataset/assemble` isolates the player↔CDN join from the
//! engine so join regressions are attributable.
//!
//! Unlike the other benches this one has a hand-written `main`: after the
//! timed runs it drains the criterion-compat record registry and writes
//! `BENCH_parallel.json` at the workspace root (override the path with
//! `STREAMLAB_BENCH_OUT`) so CI can track wall time per scenario without
//! scraping stdout. Each record carries a `chunks_per_sec` throughput
//! field — chunk records processed per wall second at the median sample —
//! which is the scale-free number to compare across scenarios. CI's
//! perf-gate job sets `STREAMLAB_BENCH_SAMPLES` to trade precision for
//! queue time; the committed baseline uses the default. The `observed`
//! group runs the same workload with the metrics subscriber attached,
//! which is what the "<2% uninstrumented overhead" budget in ISSUE.md is
//! judged against (`engine` group = no subscriber).

use criterion::{take_records, BatchSize, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use streamlab::telemetry::records::CacheOutcome;
use streamlab::telemetry::{
    CdnChunkRecord, ChunkTruth, Dataset, PlayerChunkRecord, SessionMeta, TelemetrySink,
};
use streamlab::{ObsOptions, Simulation, SimulationConfig};

/// Timed samples per benchmark; CI lowers this via `STREAMLAB_BENCH_SAMPLES`.
fn sample_size() -> usize {
    std::env::var("STREAMLAB_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn tiny_cfg(threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::tiny(2016);
    cfg.threads = threads;
    cfg
}

/// The thread-scaling workload: the `small` preset widened to 10× tiny's
/// session count (~150k chunk records), so the event loop dominates the
/// partition/merge bookkeeping and per-thread deltas are measurable.
fn small_cfg(threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::small(2016);
    cfg.traffic.sessions = 6_000;
    cfg.threads = threads;
    cfg
}

/// The steal-or-stall workload: `small` with 75% of prefixes pinned to
/// one metro, so one PoP carries the bulk of the sessions. Under the old
/// fixed slot-claiming this scenario flatlined past 2 threads (the hot
/// PoP was one indivisible shard); per-server shards plus work stealing
/// let idle workers drain the hot PoP's tail, which is exactly what this
/// group exists to measure.
fn skewed_cfg(threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::small(2016);
    cfg.traffic.sessions = 6_000;
    cfg.population.focus_metro = "NewYork-NY".to_owned();
    cfg.population.focus_fraction = 0.75;
    cfg.threads = threads;
    cfg
}

/// Joined chunk records one iteration of `cfg` produces (untimed probe
/// run); the numerator of the `chunks_per_sec` field.
fn chunk_volume(cfg: SimulationConfig) -> u64 {
    Simulation::new(cfg)
        .run()
        .expect("probe run")
        .dataset
        .chunk_count() as u64
}

/// A scenario constructor: thread count in, ready-to-run config out.
type ScenarioFn = fn(usize) -> SimulationConfig;

fn bench_parallel(c: &mut Criterion, chunks_by_label: &mut HashMap<String, u64>) {
    // `small/8` exists because CI's scaling gate judges near-linear speedup
    // through 4 threads and wants the curve past the knee on record;
    // `skewed` only needs enough points to show stealing beats the worst
    // PoP imbalance.
    let scenarios: [(&str, ScenarioFn, &[usize]); 3] = [
        ("tiny", tiny_cfg, &[1, 2, 4]),
        ("small", small_cfg, &[1, 2, 4, 8]),
        ("skewed", skewed_cfg, &[1, 2, 4]),
    ];

    let mut group = c.benchmark_group("engine");
    group.sample_size(sample_size());
    for (name, make, thread_counts) in scenarios {
        let chunks = chunk_volume(make(1));
        for &threads in thread_counts {
            chunks_by_label.insert(format!("engine/{name}/{threads}"), chunks);
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                b.iter(|| black_box(Simulation::new(make(threads)).run().expect("run")))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("engine-observed");
    group.sample_size(sample_size());
    let chunks = chunk_volume(tiny_cfg(1));
    for threads in [1usize, 2] {
        chunks_by_label.insert(format!("engine-observed/tiny/{threads}"), chunks);
        group.bench_with_input(
            BenchmarkId::new("tiny", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        Simulation::new(tiny_cfg(threads))
                            .run_observed(ObsOptions::default())
                            .expect("run"),
                    )
                })
            },
        );
    }
    // `small/1` is the instrumentation-overhead gate's numerator: CI
    // compares its median against the no-subscriber `engine/small/1` via
    // perf_gate --overhead, so both must run in the same bench invocation.
    let chunks = chunk_volume(small_cfg(1));
    chunks_by_label.insert("engine-observed/small/1".to_owned(), chunks);
    group.bench_with_input(BenchmarkId::new("small", 1usize), &1usize, |b, _| {
        b.iter(|| {
            black_box(
                Simulation::new(small_cfg(1))
                    .run_observed(ObsOptions::default())
                    .expect("run"),
            )
        })
    });
    group.finish();
}

/// Sessions × chunks-per-session for the synthetic assembly workload.
const ASSEMBLE_SESSIONS: u64 = 2_000;
const ASSEMBLE_CHUNKS_EACH: u64 = 30;

/// A sink shaped exactly like engine output: per-session chunk records
/// contiguous and ascending, one player + one CDN record per chunk pushed
/// adjacently, one metadata beacon per session. Synthetic so the bench
/// needs no engine run and the record count is exact.
fn synth_sink() -> TelemetrySink {
    use streamlab::sim::{SimDuration, SimTime};
    use streamlab::workload::{
        AccessClass, Browser, ChunkIndex, GeoPoint, OrgKind, Os, PopId, PrefixId, Region, ServerId,
        SessionId, VideoId,
    };

    let total = (ASSEMBLE_SESSIONS * ASSEMBLE_CHUNKS_EACH) as usize;
    let mut sink = TelemetrySink::with_capacity(ASSEMBLE_SESSIONS as usize, total);
    for s in 0..ASSEMBLE_SESSIONS {
        let session = SessionId(s);
        for k in 0..ASSEMBLE_CHUNKS_EACH {
            let at = SimTime::from_nanos(s * 1_000_000 + k * 4_000_000_000);
            sink.player_chunk(PlayerChunkRecord {
                session,
                chunk: ChunkIndex(k as u32),
                bitrate_kbps: 3_000,
                requested_at: at,
                d_fb: SimDuration::from_nanos(40_000_000),
                d_lb: SimDuration::from_nanos(900_000_000),
                chunk_secs: 4.0,
                buf_count: 0,
                buf_dur: SimDuration::ZERO,
                visible: true,
                avg_fps: 30.0,
                dropped_frames: 0,
                frames: 120,
                truth: ChunkTruth {
                    dds: SimDuration::from_nanos(850_000_000),
                    rtt0: SimDuration::from_nanos(30_000_000),
                    transient_buffered: false,
                },
            });
            sink.cdn_chunk(CdnChunkRecord {
                session,
                chunk: ChunkIndex(k as u32),
                d_wait: SimDuration::from_nanos(1_000_000),
                d_open: SimDuration::from_nanos(2_000_000),
                d_read: SimDuration::from_nanos(5_000_000),
                d_backend: SimDuration::ZERO,
                cache: CacheOutcome::RamHit,
                retry_fired: false,
                size_bytes: 1_500_000,
                served_at: at,
                segments: 1_000,
                retx_segments: 3,
                tcp: Vec::new(),
            });
        }
        sink.session(SessionMeta {
            session,
            prefix: PrefixId(s % 64),
            video: VideoId(s % 128),
            video_secs: 600.0,
            os: Os::Windows,
            browser: Browser::Chrome,
            org: String::new(),
            org_kind: OrgKind::Residential,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint { lat: 0.0, lon: 0.0 },
            pop: PopId(s % 8),
            server: ServerId(s % 40),
            distance_km: 100.0,
            arrival: SimTime::from_nanos(s * 1_000_000),
            startup_delay_s: 0.8,
            proxied: false,
            ua_mismatch: false,
            gpu: true,
            visible: true,
        });
    }
    sink
}

fn bench_assemble(c: &mut Criterion, chunks_by_label: &mut HashMap<String, u64>) {
    let total = ASSEMBLE_SESSIONS * ASSEMBLE_CHUNKS_EACH;
    let label = format!("dataset/assemble/{total}");
    chunks_by_label.insert(label, total);

    let mut group = c.benchmark_group("dataset");
    group.sample_size(sample_size());
    group.bench_with_input(BenchmarkId::new("assemble", total), &total, |b, _| {
        b.iter_batched(
            synth_sink,
            |sink| black_box(Dataset::assemble(sink).expect("assemble")),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Serialize drained [`criterion::BenchRecord`]s as a JSON array.
///
/// Labels only ever contain `[A-Za-z0-9/_-]`, so no string escaping is
/// needed; floats are emitted with enough precision for CI diffing.
/// `chunks_per_sec` is the scenario's chunk-record volume divided by the
/// median sample (0.0 when the volume is unknown for a label).
fn records_to_json(records: &[criterion::BenchRecord], chunks: &HashMap<String, u64>) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let cps = match chunks.get(&r.label) {
            Some(&n) if r.median_ns > 0.0 => n as f64 / (r.median_ns / 1.0e9),
            _ => 0.0,
        };
        out.push_str(&format!(
            "  {{\"label\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"samples\": {}, \"chunks_per_sec\": {:.1}}}",
            r.label, r.mean_ns, r.median_ns, r.min_ns, r.samples, cps
        ));
    }
    out.push_str("\n]\n");
    out
}

fn main() {
    let mut c = Criterion::default();
    let mut chunks_by_label = HashMap::new();
    bench_parallel(&mut c, &mut chunks_by_label);
    bench_assemble(&mut c, &mut chunks_by_label);
    c.final_summary();

    let records = take_records();
    let json = records_to_json(&records, &chunks_by_label);
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let path = std::env::var("STREAMLAB_BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {} ({} records)", path, records.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
