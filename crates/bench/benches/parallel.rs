//! Sequential vs shard-parallel engine wall time.
//!
//! The contract under test elsewhere (tests/determinism.rs) is that
//! `threads` changes nothing but wall clock; this bench measures the wall
//! clock itself. Speedup is bounded by the number of PoPs and by how
//! evenly sessions land across them, and on a single-core host the
//! parallel engine should simply not be slower than its extra
//! partition/merge bookkeeping.
//!
//! Unlike the other benches this one has a hand-written `main`: after the
//! timed runs it drains the criterion-compat record registry and writes
//! `BENCH_parallel.json` at the workspace root so CI can track engine
//! wall time per thread count without scraping stdout. The `observed`
//! group runs the same workload with the metrics subscriber attached,
//! which is what the "<2% uninstrumented overhead" budget in ISSUE.md is
//! judged against (`engine` group = no subscriber).

use criterion::{take_records, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlab::{ObsOptions, Simulation, SimulationConfig};

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("tiny", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = SimulationConfig::tiny(2016);
                    cfg.threads = threads;
                    black_box(Simulation::new(cfg).run().expect("run"))
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("engine-observed");
    group.sample_size(10);
    for threads in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("tiny", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = SimulationConfig::tiny(2016);
                    cfg.threads = threads;
                    black_box(
                        Simulation::new(cfg)
                            .run_observed(ObsOptions { trace: false })
                            .expect("run"),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Serialize drained [`criterion::BenchRecord`]s as a JSON array.
///
/// Labels only ever contain `[A-Za-z0-9/_-]`, so no string escaping is
/// needed; floats are emitted with enough precision for CI diffing.
fn records_to_json(records: &[criterion::BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"label\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"samples\": {}}}",
            r.label, r.mean_ns, r.median_ns, r.min_ns, r.samples
        ));
    }
    out.push_str("\n]\n");
    out
}

fn main() {
    let mut c = Criterion::default();
    bench_parallel(&mut c);
    c.final_summary();

    let records = take_records();
    let json = records_to_json(&records);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {} ({} records)", path, records.len()),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
