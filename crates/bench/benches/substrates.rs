//! Microbenchmarks of the substrate building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use streamlab::cdn::{ByteCache, EvictionPolicy, ObjectKey};
use streamlab::client::{DownloadStack, RenderPath, StackConfig};
use streamlab::net::{PathProfile, PropagationModel, TcpConfig, TcpConnection};
use streamlab::sim::dist::Zipf;
use streamlab::sim::{EventQueue, RngStream, SimTime};
use streamlab::workload::{Browser, ChunkIndex, Os, VideoId};

fn key(v: u64, c: u32) -> ObjectKey {
    ObjectKey {
        video: VideoId(v),
        chunk: ChunkIndex(c),
        bitrate_kbps: 1050,
    }
}

fn bench_cache_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let zipf = Zipf::new(2_000, 0.95);
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::PerfectLfu,
        EvictionPolicy::GdSize,
        EvictionPolicy::Fifo,
    ] {
        group.bench_with_input(
            BenchmarkId::new("zipf_workload", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || {
                        (
                            ByteCache::new(policy, 500 * 1_000_000),
                            RngStream::new(7, "bench-cache"),
                        )
                    },
                    |(mut cache, mut rng)| {
                        for _ in 0..10_000 {
                            let k = key(zipf.sample_rank(&mut rng) as u64, 0);
                            if !cache.lookup(k) {
                                cache.insert(k, 1_000_000);
                            }
                        }
                        black_box(cache.stats())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_tcp_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp");
    let cases = [
        ("cable_clean", 50.0, 30.0, 0.0),
        ("dsl_lossy", 8.0, 45.0, 0.002),
        ("intl_far", 20.0, 180.0, 0.001),
    ];
    for (name, mbps, rtt, loss) in cases {
        group.bench_function(format!("chunk_transfer/{name}"), |b| {
            b.iter_batched(
                || {
                    let path = PathProfile::from_parts(
                        &PropagationModel::default(),
                        0.0,
                        rtt,
                        0.0,
                        mbps,
                        3.0,
                        loss,
                        0.1,
                        0.0,
                        1.0,
                    );
                    TcpConnection::new(
                        path,
                        TcpConfig::default(),
                        SimTime::ZERO,
                        RngStream::new(3, "bench-tcp"),
                    )
                },
                |mut conn| {
                    let mut t = SimTime::ZERO;
                    for _ in 0..10 {
                        let tr = conn.transfer(t, 1_762_500);
                        t = tr.last_byte_at;
                    }
                    black_box(conn.info(t))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_client_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("client");
    group.bench_function("download_stack/20_chunks", |b| {
        b.iter_batched(
            || {
                DownloadStack::new(
                    Os::Windows,
                    Browser::Firefox,
                    StackConfig::default(),
                    RngStream::new(5, "bench-stack"),
                )
            },
            |mut stack| {
                for i in 0..20u32 {
                    let t0 = SimTime::from_secs(u64::from(i) * 6);
                    black_box(stack.deliver(
                        ChunkIndex(i),
                        t0,
                        t0 + streamlab::sim::SimDuration::from_millis(700),
                    ));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("render/20_chunks_software", |b| {
        b.iter_batched(
            || {
                RenderPath::new(
                    Os::Windows,
                    Browser::Firefox,
                    false,
                    4,
                    0.4,
                    RngStream::new(5, "bench-render"),
                )
            },
            |mut render| {
                for _ in 0..20 {
                    black_box(render.render_chunk(6.0, 1750, 2.0, true, 10.0));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sim_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.bench_function("zipf_sample/10k_catalog", |b| {
        let z = Zipf::new(10_000, 0.95);
        let mut rng = RngStream::new(11, "bench-zipf");
        b.iter(|| black_box(z.sample_rank(&mut rng)))
    });
    group.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(
                    SimTime::from_nanos(i.wrapping_mul(2_654_435_761) % 1_000_000),
                    i,
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_policies,
    bench_tcp_transfer,
    bench_client_paths,
    bench_sim_primitives
);
criterion_main!(benches);
