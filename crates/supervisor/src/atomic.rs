//! Atomic, durable file emission.
//!
//! Every file the harness writes goes through [`atomic_write`] /
//! [`atomic_write_with`]: the bytes land in a same-directory temp file,
//! the file is fsynced, and the temp file is renamed over the target.
//! POSIX rename is atomic within a filesystem, so a reader (or a resumed
//! run) sees either the old complete file or the new complete file —
//! never a truncated one, no matter when the process is killed. After the
//! rename the parent directory is fsynced too, so the rename itself
//! survives a power cut, not just a process kill.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Name of the temp file used for an in-flight write of `name`. Includes
/// the pid so concurrent writers (parallel sweep workers recording
/// different seeds, or two runs pointed at the same directory) never
/// clobber each other's staging file.
fn staging_name(name: &str) -> String {
    format!(".{name}.tmp.{}", std::process::id())
}

/// Atomically replace `path` with `bytes`.
///
/// See [`atomic_write_with`] for the mechanism and guarantees.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |f| f.write_all(bytes))
}

/// Atomically replace `path` with whatever `write` produces.
///
/// The closure receives the staging [`fs::File`]; on success the file is
/// fsynced and renamed over `path`, and the parent directory is fsynced.
/// On any error the staging file is removed and `path` is untouched.
pub fn atomic_write_with<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut fs::File) -> io::Result<()>,
{
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write: {} has no usable file name", path.display()),
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = dir.join(staging_name(name));

    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        write(&mut f)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Make the rename itself durable. Directory fsync is advisory on some
    // platforms (and opening a directory read-only fails on Windows), so
    // failures here are ignored: the content guarantee already holds.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streamlab-atomic-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn writes_and_overwrites_without_leftovers() {
        let dir = scratch("basic");
        let path = dir.join("out.json");
        atomic_write(&path, b"{\"v\":1}\n").expect("first write");
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}\n");
        atomic_write(&path, b"{\"v\":2}\n").expect("overwrite");
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}\n");
        // No staging files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with('.'))
            .collect();
        assert!(
            leftovers.is_empty(),
            "leftover staging files: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_target_intact() {
        let dir = scratch("fail");
        let path = dir.join("out.txt");
        atomic_write(&path, b"original").expect("seed file");
        let err = atomic_write_with(&path, |_| Err(io::Error::other("injected failure")));
        assert!(err.is_err());
        assert_eq!(fs::read(&path).unwrap(), b"original");
        // The staging file was cleaned up.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_writer_variant_works() {
        let dir = scratch("stream");
        let path = dir.join("rows.csv");
        atomic_write_with(&path, |f| {
            writeln!(f, "a,b")?;
            writeln!(f, "1,2")
        })
        .expect("streamed write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bare_file_name_writes_into_cwd() {
        // `path.parent()` is empty for a bare name; the staging file must
        // land next to it (the cwd), not error out.
        let name = format!("streamlab-atomic-cwd-{}.tmp-target", std::process::id());
        let path = PathBuf::from(&name);
        atomic_write(&path, b"x").expect("cwd write");
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_file(&path);
    }
}
