//! Atomic, durable file emission.
//!
//! Every file the harness writes goes through [`atomic_write`] /
//! [`atomic_write_with`]: the bytes land in a same-directory temp file,
//! the file is fsynced, and the temp file is renamed over the target.
//! POSIX rename is atomic within a filesystem, so a reader (or a resumed
//! run) sees either the old complete file or the new complete file —
//! never a truncated one, no matter when the process is killed. After the
//! rename the parent directory is fsynced too, so the rename itself
//! survives a power cut, not just a process kill.
//!
//! Transient I/O failures (an interrupted syscall, a briefly-full disk
//! while a log rotates) are retried with bounded backoff before giving
//! up; a write that still fails surfaces as a structured
//! [`AtomicWriteError`] naming the target path, the protocol stage that
//! failed, and the attempt count — so a daemon's job log says *what*
//! could not be written and *where it died*, not just "No space left on
//! device".
//!
//! Every stage is routed through a [`Storage`] handle (the
//! [`crate::failpoint`] seam): [`atomic_write`] uses the process-wide
//! ambient storage (real unless `--storage-faults` installed a fault
//! plan), while the `*_in` variants take an explicit handle so tests can
//! inject faults without sharing global state.

use crate::failpoint::{ambient_storage, Storage, StorageOps};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Stage of the atomic-write protocol at which an error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStage {
    /// Creating the same-directory staging file.
    Create,
    /// Running the caller's writer over the staging file.
    Write,
    /// Fsyncing the staging file's contents.
    Sync,
    /// Renaming the staging file over the target.
    Rename,
    /// Fsyncing the parent directory after the rename, making the
    /// rename itself durable across power loss.
    SyncDir,
}

impl std::fmt::Display for WriteStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WriteStage::Create => "create-staging",
            WriteStage::Write => "write",
            WriteStage::Sync => "fsync",
            WriteStage::Rename => "rename",
            WriteStage::SyncDir => "fsync-dir",
        })
    }
}

/// A failed atomic write, with enough context to act on: the target
/// path, the protocol stage that failed, and how many attempts were
/// made before giving up. Carried inside the returned [`io::Error`]
/// (same `ErrorKind` as the underlying failure); recover it with
/// `err.get_ref().and_then(|e| e.downcast_ref::<AtomicWriteError>())`.
#[derive(Debug)]
pub struct AtomicWriteError {
    /// The file that could not be (re)placed.
    pub path: PathBuf,
    /// Which stage of the staging→fsync→rename protocol failed.
    pub stage: WriteStage,
    /// Attempts made at that stage (1 = no retry was applicable).
    pub attempts: u32,
    /// The last underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for AtomicWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "atomic write of {} failed at the {} stage after {} attempt(s): {}",
            self.path.display(),
            self.stage,
            self.attempts,
            self.source
        )
    }
}

impl std::error::Error for AtomicWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl AtomicWriteError {
    fn into_io(self) -> io::Error {
        io::Error::new(self.source.kind(), self)
    }
}

/// Maximum attempts per retryable stage (first try included).
const MAX_ATTEMPTS: u32 = 4;
/// Backoff before retry `n` (n = 1, 2, 3), in milliseconds. Interrupted
/// syscalls retry immediately; only resource-pressure errors sleep.
const BACKOFF_MS: [u64; 3] = [1, 8, 64];

/// Whether retrying `e` can plausibly succeed: interrupted syscalls
/// always, resource-pressure conditions (full disk mid-rotation, a
/// transiently unavailable file) after a short backoff.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::StorageFull
    )
}

/// Run `op` up to [`MAX_ATTEMPTS`] times, backing off on transient
/// errors. Returns the result plus the number of attempts made.
fn with_retry<T>(mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u32) {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match op() {
            Ok(v) => return (Ok(v), attempts),
            Err(e) if attempts < MAX_ATTEMPTS && is_transient(&e) => {
                if e.kind() != io::ErrorKind::Interrupted {
                    std::thread::sleep(Duration::from_millis(
                        BACKOFF_MS[(attempts - 1) as usize % BACKOFF_MS.len()],
                    ));
                }
            }
            Err(e) => return (Err(e), attempts),
        }
    }
}

/// Name of the temp file used for an in-flight write of `name`. Includes
/// the pid so concurrent writers (parallel sweep workers recording
/// different seeds, or two runs pointed at the same directory) never
/// clobber each other's staging file.
fn staging_name(name: &str) -> String {
    format!(".{name}.tmp.{}", std::process::id())
}

/// Atomically replace `path` with `bytes`, via the ambient [`Storage`].
///
/// See [`atomic_write_with_in`] for the mechanism and guarantees.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_in(&ambient_storage(), path, bytes)
}

/// Atomically replace `path` with whatever `write` produces, via the
/// ambient [`Storage`]. See [`atomic_write_with_in`].
pub fn atomic_write_with<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut fs::File) -> io::Result<()>,
{
    atomic_write_with_in(&ambient_storage(), path, write)
}

/// Atomically replace `path` with `bytes`, routing every stage through
/// `storage`. See [`atomic_write_with_in`].
pub fn atomic_write_in(storage: &Storage, path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with_in(storage, path, |f| f.write_all(bytes))
}

/// Atomically replace `path` with whatever `write` produces.
///
/// The closure receives the staging [`fs::File`]; on success the file is
/// fsynced and renamed over `path`, and the parent directory is fsynced
/// so the rename survives power loss. On any pre-rename error the
/// staging file is removed and `path` is untouched. Staging-file
/// creation, the fsyncs, and the rename are retried with bounded backoff
/// on transient failures (EINTR, ENOSPC); the caller's closure runs at
/// most once. A write that still fails returns an [`io::Error`] wrapping
/// an [`AtomicWriteError`] that names the path and the failed stage —
/// including [`WriteStage::SyncDir`], where the new content *is* visible
/// but its durability across power loss is not established.
///
/// Every filesystem touch goes through `storage`, so a
/// [`crate::failpoint::StorageFaultPlan`] can fail any stage
/// deterministically.
pub fn atomic_write_with_in<F>(storage: &Storage, path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut fs::File) -> io::Result<()>,
{
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic_write: {} has no usable file name", path.display()),
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = dir.join(staging_name(name));

    let structured = |stage, attempts, source| AtomicWriteError {
        path: path.to_owned(),
        stage,
        attempts,
        source,
    };
    let mut write = Some(write);
    let result: Result<(), AtomicWriteError> = (|| {
        let (created, attempts) = with_retry(|| storage.create(path, &tmp));
        let mut f = created.map_err(|e| structured(WriteStage::Create, attempts, e))?;
        storage
            .write(path, &mut f, &mut |f| {
                (write.take().expect("writer runs at most once"))(f)
            })
            .map_err(|e| structured(WriteStage::Write, 1, e))?;
        let (synced, attempts) = with_retry(|| storage.sync_file(path, &f));
        synced.map_err(|e| structured(WriteStage::Sync, attempts, e))?;
        drop(f);
        let (renamed, attempts) = with_retry(|| storage.rename(&tmp, path));
        renamed.map_err(|e| structured(WriteStage::Rename, attempts, e))
    })();
    if let Err(e) = result {
        let _ = storage.remove_file(&tmp);
        return Err(e.into_io());
    }
    // Make the rename itself durable: without this barrier a committed
    // file can vanish on power loss even though the rename returned.
    let (synced, attempts) = with_retry(|| storage.sync_dir(dir));
    synced.map_err(|e| structured(WriteStage::SyncDir, attempts, e).into_io())
}

/// Whether `name` looks like an atomic-write staging file
/// (`.{target}.tmp.{pid}`).
pub fn is_staging_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix('.') else {
        return false;
    };
    match rest.rsplit_once(".tmp.") {
        Some((target, pid)) => {
            !target.is_empty() && !pid.is_empty() && pid.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Remove every atomic-write staging file in `dir`, returning the names
/// removed (sorted), via the ambient [`Storage`]. See
/// [`sweep_stale_staging_in`].
pub fn sweep_stale_staging(dir: &Path) -> Vec<String> {
    sweep_stale_staging_in(&ambient_storage(), dir)
}

/// Remove every atomic-write staging file in `dir`, returning the names
/// removed (sorted).
///
/// Staging names embed the writer's pid, so a crash between create and
/// rename would leak `.*.tmp.*` files forever — no later process ever
/// generates the same name again. Callers invoke this when (re)opening a
/// directory for exclusive use: any staging file present at that point
/// has lost its writer, because live writers only exist *after* the
/// directory is opened. Removal failures are ignored (the files are
/// invisible to every reader anyway); unreadable directories yield an
/// empty list.
pub fn sweep_stale_staging_in(storage: &Storage, dir: &Path) -> Vec<String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut removed = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_staging_name(name) && storage.remove_file(&entry.path()).is_ok() {
            removed.push(name.to_string());
        }
    }
    removed.sort();
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streamlab-atomic-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn structured(e: &io::Error) -> &AtomicWriteError {
        e.get_ref()
            .and_then(|inner| inner.downcast_ref::<AtomicWriteError>())
            .expect("error carries AtomicWriteError")
    }

    #[test]
    fn writes_and_overwrites_without_leftovers() {
        let dir = scratch("basic");
        let path = dir.join("out.json");
        atomic_write(&path, b"{\"v\":1}\n").expect("first write");
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}\n");
        atomic_write(&path, b"{\"v\":2}\n").expect("overwrite");
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}\n");
        // No staging files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with('.'))
            .collect();
        assert!(
            leftovers.is_empty(),
            "leftover staging files: {leftovers:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_target_intact() {
        let dir = scratch("fail");
        let path = dir.join("out.txt");
        atomic_write(&path, b"original").expect("seed file");
        let err = atomic_write_with(&path, |_| Err(io::Error::other("injected failure")));
        assert!(err.is_err());
        assert_eq!(fs::read(&path).unwrap(), b"original");
        // The staging file was cleaned up.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_writer_variant_works() {
        let dir = scratch("stream");
        let path = dir.join("rows.csv");
        atomic_write_with(&path, |f| {
            writeln!(f, "a,b")?;
            writeln!(f, "1,2")
        })
        .expect("streamed write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bare_file_name_writes_into_cwd() {
        // `path.parent()` is empty for a bare name; the staging file must
        // land next to it (the cwd), not error out.
        let name = format!("streamlab-atomic-cwd-{}.tmp-target", std::process::id());
        let path = PathBuf::from(&name);
        atomic_write(&path, b"x").expect("cwd write");
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn create_failure_names_path_and_stage() {
        let dir = scratch("nostage");
        let path = dir.join("missing-subdir").join("out.json");
        let err = atomic_write(&path, b"x").unwrap_err();
        let s = structured(&err);
        assert_eq!(s.stage, WriteStage::Create);
        assert_eq!(s.path, path);
        let msg = err.to_string();
        assert!(msg.contains("create-staging"), "{msg}");
        assert!(msg.contains("out.json"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_failure_names_the_write_stage_and_keeps_the_kind() {
        let dir = scratch("writerr");
        let path = dir.join("out.txt");
        let err = atomic_write_with(&path, |_| {
            Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
        })
        .unwrap_err();
        // The wrapper preserves the underlying kind so callers matching on
        // ErrorKind keep working.
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let s = structured(&err);
        assert_eq!(s.stage, WriteStage::Write);
        assert_eq!(s.attempts, 1, "the caller's closure must not be re-run");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let mut left = 3u32; // 3 failures, then success: fits in MAX_ATTEMPTS
        let (result, attempts) = with_retry(|| {
            if left > 0 {
                left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(attempts, 4);
    }

    #[test]
    fn transient_errors_exhaust_the_attempt_budget() {
        let mut calls = 0u32;
        let (result, attempts) = with_retry::<()>(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::StorageFull, "ENOSPC"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::StorageFull);
        assert_eq!(attempts, MAX_ATTEMPTS);
        assert_eq!(calls, MAX_ATTEMPTS);
    }

    #[test]
    fn staging_names_are_recognized() {
        assert!(is_staging_name(&staging_name("manifest.json")));
        assert!(is_staging_name(".x.tmp.1"));
        for not_staging in [
            "manifest.json",
            ".hidden",
            ".x.tmp.", // no pid
            ".x.tmp.12a",
            "..tmp.12", // no target
            "x.tmp.12", // no leading dot
        ] {
            assert!(!is_staging_name(not_staging), "{not_staging}");
        }
    }

    #[test]
    fn sweep_removes_only_stale_staging_files() {
        let dir = scratch("sweep");
        atomic_write(&dir.join("real.json"), b"{}").unwrap();
        fs::write(dir.join(".old.json.tmp.99999"), b"orphan").unwrap();
        fs::write(dir.join(".older.json.tmp.1"), b"orphan").unwrap();
        fs::write(dir.join(".not-staging"), b"keep").unwrap();
        let removed = sweep_stale_staging(&dir);
        assert_eq!(
            removed,
            vec![
                ".old.json.tmp.99999".to_string(),
                ".older.json.tmp.1".to_string()
            ]
        );
        assert!(dir.join("real.json").exists());
        assert!(dir.join(".not-staging").exists());
        assert!(!dir.join(".old.json.tmp.99999").exists());
        // Unreadable directory: no panic, nothing removed.
        assert!(sweep_stale_staging(&dir.join("missing")).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_dir_sync_failure_names_the_sync_dir_stage() {
        use crate::failpoint::{Storage, StorageFaultPlan};
        let dir = scratch("syncdir");
        let path = dir.join("out.json");
        let plan = StorageFaultPlan::from_json_str(
            r#"{ "rules": [ { "op": "sync_dir", "kind": "eio" } ] }"#,
        )
        .unwrap();
        let err = atomic_write_in(&Storage::faulty_soft(plan), &path, b"payload").unwrap_err();
        let s = structured(&err);
        assert_eq!(s.stage, WriteStage::SyncDir);
        assert!(err.to_string().contains("fsync-dir"), "{err}");
        // The content is visible (the rename committed) — only its
        // durability is unestablished.
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_transient_enospc_is_absorbed_by_retry() {
        use crate::failpoint::{Storage, StorageFaultPlan};
        let dir = scratch("transient");
        let path = dir.join("out.json");
        // Two ENOSPC hits on sync, then clean: with_retry's four-attempt
        // budget rides through without surfacing an error.
        let plan = StorageFaultPlan::from_json_str(
            r#"{ "rules": [ { "op": "sync", "kind": "enospc", "count": 2 } ] }"#,
        )
        .unwrap();
        let storage = Storage::faulty_soft(plan);
        atomic_write_in(&storage, &path, b"payload").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert_eq!(storage.fault_snapshot().enospc, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_errors_fail_on_the_first_attempt() {
        let mut calls = 0u32;
        let (result, attempts) = with_retry::<()>(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "EACCES"))
        });
        assert!(result.is_err());
        assert_eq!(attempts, 1);
        assert_eq!(calls, 1);
    }
}
