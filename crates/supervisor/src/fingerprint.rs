//! Stable fingerprints for checkpoint compatibility.
//!
//! A resumed sweep must only reuse records produced by *the same
//! computation*: same configuration, same checkpoint format. The
//! fingerprint is an FNV-1a hash over the canonical serialized
//! configuration plus the checkpoint format version, computed identically
//! when a run directory is created and when it is reopened. Any mismatch
//! (edited config, older format) makes the stale records invisible rather
//! than silently merging incompatible results.

/// 64-bit FNV-1a over `bytes`. Deterministic across platforms and runs —
/// exactly what a persisted fingerprint needs (`DefaultHasher` is
/// explicitly not stable across Rust releases).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fingerprint of a run: the canonical config JSON plus the checkpoint
/// format version (so a format bump invalidates old records even when the
/// config is unchanged).
pub fn fingerprint_config(config_json: &str, format_version: u32) -> u64 {
    let mut bytes = Vec::with_capacity(config_json.len() + 16);
    bytes.extend_from_slice(b"streamlab-ckpt-v");
    bytes.extend_from_slice(format_version.to_string().as_bytes());
    bytes.push(b';');
    bytes.extend_from_slice(config_json.as_bytes());
    fnv1a64(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_separates_config_and_version() {
        let a = fingerprint_config("{\"seed\":1}", 1);
        assert_eq!(a, fingerprint_config("{\"seed\":1}", 1), "stable");
        assert_ne!(a, fingerprint_config("{\"seed\":2}", 1), "config-sensitive");
        assert_ne!(
            a,
            fingerprint_config("{\"seed\":1}", 2),
            "version-sensitive"
        );
    }
}
