//! # streamlab-supervisor
//!
//! The crash-safety layer around the simulation harness: everything that
//! makes a *long* run survivable. The simulated world became
//! fault-tolerant in the fault-injection layer (`streamlab-faults`); this
//! crate makes the **harness that generates the trace** fault-tolerant:
//!
//! * [`atomic`] — torn-write-free file emission (temp file + fsync +
//!   rename), used by every CLI output path so a `SIGKILL` at any instant
//!   never leaves a half-written JSON/CSV behind.
//! * [`checkpoint`] — a versioned, fingerprinted run directory for
//!   multi-seed sweeps: a manifest plus one durable record per completed
//!   seed, so an interrupted sweep resumes exactly where it died and
//!   reproduces the uninterrupted output byte for byte.
//! * [`failpoint`] — deterministic storage fault injection: a
//!   [`Storage`] seam over create/write/fsync/rename/read used by every
//!   persistence path, governed by a JSON-declared, seeded
//!   [`StorageFaultPlan`] (`--storage-faults`) that injects EIO, ENOSPC,
//!   torn writes, lost fsyncs, slow IO, and crash failpoints — the
//!   substrate for systematic crash-point sweeps.
//! * [`watchdog`] — a wall-clock monitor over per-shard sim-time
//!   heartbeats: a shard that stops progressing past a deadline is
//!   cancelled and reported as a structured stall instead of hanging the
//!   process forever.
//! * [`audit`] — post-run structural invariant checks (conservation of
//!   sessions/chunks/bytes, histogram totals vs counters, monotone
//!   sim-time) that fail loudly with a pinpointed diagnostic rather than
//!   letting silent corruption reach the figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atomic;
pub mod audit;
pub mod checkpoint;
pub mod failpoint;
pub mod fingerprint;
pub mod watchdog;

pub use atomic::{
    atomic_write, atomic_write_in, atomic_write_with, atomic_write_with_in, is_staging_name,
    sweep_stale_staging, sweep_stale_staging_in, AtomicWriteError, WriteStage,
};
pub use audit::{AuditReport, AuditViolation, DatasetFacts};
pub use checkpoint::{Manifest, RunDir, FORMAT_VERSION};
pub use failpoint::{
    ambient_storage, install_ambient_storage, FaultKind, FaultRule, Storage, StorageFaultPlan,
    StorageOp, StorageOps,
};
pub use fingerprint::{fingerprint_config, fnv1a64};
pub use watchdog::{HeartbeatSample, StallReport, WatchdogConfig};
