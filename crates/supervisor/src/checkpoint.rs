//! Versioned, crash-safe run directories for multi-seed sweeps.
//!
//! Layout of a run directory:
//!
//! ```text
//! <dir>/manifest.json           # version, fingerprint, seeds, config
//! <dir>/seeds/seed-<seed>.json  # one durable record per completed seed
//! ```
//!
//! The manifest is written once, atomically, when the sweep starts; each
//! seed's result record is written atomically **as the seed completes**.
//! A `SIGKILL` at any instant therefore leaves only complete files behind,
//! and a resumed sweep ([`RunDir::completed_seeds`]) can trust every
//! record it can parse. Records carry the run fingerprint (config +
//! format version, see [`crate::fingerprint`]); a record whose
//! fingerprint does not match the manifest is ignored, so editing the
//! configuration between runs re-computes rather than silently merging
//! incompatible results.

use crate::atomic::{atomic_write_in, sweep_stale_staging_in};
use crate::failpoint::{ambient_storage, Storage, StorageOps};
use crate::fingerprint::fingerprint_config;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Checkpoint format version. Bumping it invalidates every existing run
/// directory (the fingerprint covers it).
pub const FORMAT_VERSION: u32 = 1;

/// The run manifest: everything needed to resume the sweep from nothing
/// but the directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Checkpoint format version ([`FORMAT_VERSION`] at creation).
    pub version: u32,
    /// Fingerprint over `config` + `version`; every record must match.
    pub fingerprint: u64,
    /// What produced the directory (e.g. `"sweep"`), for humans.
    pub label: String,
    /// The full planned seed list, in output order.
    pub seeds: Vec<u64>,
    /// The complete serialized configuration the sweep runs under.
    pub config: Value,
}

impl Manifest {
    /// Build a manifest for `label` over `seeds` under `config`
    /// (serialized configuration). Computes the fingerprint.
    pub fn new(label: &str, seeds: Vec<u64>, config: Value) -> Manifest {
        let fingerprint = fingerprint_config(&config.to_json_string(), FORMAT_VERSION);
        Manifest {
            version: FORMAT_VERSION,
            fingerprint,
            label: label.to_owned(),
            seeds,
            config,
        }
    }

    /// Recompute the fingerprint from the embedded config and check it
    /// against the stored one (detects a hand-edited manifest).
    pub fn verify(&self) -> Result<(), String> {
        let expect = fingerprint_config(&self.config.to_json_string(), self.version);
        if expect != self.fingerprint {
            return Err(format!(
                "manifest fingerprint {:#018x} does not match its config (expected {:#018x}); \
                 the manifest was edited or corrupted",
                self.fingerprint, expect
            ));
        }
        Ok(())
    }
}

/// One durable per-seed record: the envelope ties the payload to the run
/// it belongs to.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SeedRecord {
    version: u32,
    fingerprint: u64,
    seed: u64,
    payload: Value,
}

/// An open run directory.
#[derive(Debug)]
pub struct RunDir {
    root: PathBuf,
    manifest: Manifest,
    storage: Storage,
    stale_staging: Vec<String>,
}

impl RunDir {
    /// Create a fresh run directory at `root` via the ambient
    /// [`Storage`]. See [`RunDir::create_in`].
    pub fn create(root: &Path, manifest: Manifest) -> Result<RunDir, String> {
        RunDir::create_in(ambient_storage(), root, manifest)
    }

    /// Open an existing run directory via the ambient [`Storage`]. See
    /// [`RunDir::open_in`].
    pub fn open(root: &Path) -> Result<RunDir, String> {
        RunDir::open_in(ambient_storage(), root)
    }

    /// Create a fresh run directory at `root` and durably write its
    /// manifest, routing all writes through `storage`. Any previous
    /// checkpoint state under `root` (manifest and seed records — only
    /// files this module owns) is removed first, so a fresh sweep never
    /// silently inherits stale records; orphaned staging files from a
    /// crashed earlier writer are swept too ([`RunDir::stale_staging`]).
    pub fn create_in(storage: Storage, root: &Path, manifest: Manifest) -> Result<RunDir, String> {
        fs::create_dir_all(root).map_err(|e| format!("creating {}: {e}", root.display()))?;
        let seeds_dir = root.join("seeds");
        if seeds_dir.exists() {
            fs::remove_dir_all(&seeds_dir)
                .map_err(|e| format!("clearing {}: {e}", seeds_dir.display()))?;
        }
        fs::create_dir_all(&seeds_dir)
            .map_err(|e| format!("creating {}: {e}", seeds_dir.display()))?;
        let stale_staging = sweep_stale_staging_in(&storage, root);
        let json = manifest.to_value().to_json_string() + "\n";
        atomic_write_in(&storage, &root.join("manifest.json"), json.as_bytes())
            .map_err(|e| format!("writing manifest: {e}"))?;
        Ok(RunDir {
            root: root.to_owned(),
            manifest,
            storage,
            stale_staging,
        })
    }

    /// Open an existing run directory for resumption, routing all reads
    /// and writes through `storage`. Stale staging files left by a
    /// crashed earlier writer are removed ([`RunDir::stale_staging`]):
    /// their names embed the dead process's pid, so nothing else would
    /// ever reclaim them.
    pub fn open_in(storage: Storage, root: &Path) -> Result<RunDir, String> {
        let path = root.join("manifest.json");
        let text = storage
            .read_to_string(&path)
            .map_err(|e| format!("reading {}: {e} (not a run directory?)", path.display()))?;
        let v = Value::parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let manifest = Manifest::from_value(&v).map_err(|e| format!("{}: {e}", path.display()))?;
        if manifest.version != FORMAT_VERSION {
            return Err(format!(
                "{}: checkpoint format v{} is not supported (this build reads v{})",
                path.display(),
                manifest.version,
                FORMAT_VERSION
            ));
        }
        manifest
            .verify()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut stale_staging = sweep_stale_staging_in(&storage, root);
        stale_staging.extend(sweep_stale_staging_in(&storage, &root.join("seeds")));
        Ok(RunDir {
            root: root.to_owned(),
            manifest,
            storage,
            stale_staging,
        })
    }

    /// The manifest this directory was created with.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Orphaned staging file names removed when the directory was
    /// opened or created (recovery diagnostics).
    pub fn stale_staging(&self) -> &[String] {
        &self.stale_staging
    }

    fn seed_path(&self, seed: u64) -> PathBuf {
        self.root
            .join("seeds")
            .join(format!("seed-{seed:020}.json"))
    }

    /// Durably record one completed seed's payload. Atomic: a kill during
    /// the call leaves either no record or a complete one.
    pub fn record_seed(&self, seed: u64, payload: Value) -> Result<(), String> {
        let rec = SeedRecord {
            version: self.manifest.version,
            fingerprint: self.manifest.fingerprint,
            seed,
            payload,
        };
        let json = rec.to_value().to_json_string() + "\n";
        let path = self.seed_path(seed);
        atomic_write_in(&self.storage, &path, json.as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load every valid completed-seed record. Records that fail to
    /// parse, carry the wrong fingerprint/version, or belong to a seed
    /// outside the manifest are skipped (the seed just re-runs);
    /// the skipped file names are returned for reporting.
    pub fn completed_seeds(&self) -> (BTreeMap<u64, Value>, Vec<String>) {
        let mut done = BTreeMap::new();
        let mut skipped = Vec::new();
        let seeds_dir = self.root.join("seeds");
        let entries = match fs::read_dir(&seeds_dir) {
            Ok(e) => e,
            Err(_) => return (done, skipped),
        };
        let planned: std::collections::BTreeSet<u64> =
            self.manifest.seeds.iter().copied().collect();
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with("seed-") || !name.ends_with(".json") {
                continue; // staging files and strangers
            }
            let valid = self
                .storage
                .read_to_string(&entry.path())
                .ok()
                .and_then(|text| Value::parse_json(&text).ok())
                .and_then(|v| SeedRecord::from_value(&v).ok())
                .filter(|r| {
                    r.version == self.manifest.version
                        && r.fingerprint == self.manifest.fingerprint
                        && planned.contains(&r.seed)
                });
            match valid {
                Some(rec) => {
                    done.insert(rec.seed, rec.payload);
                }
                None => skipped.push(name),
            }
        }
        (done, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Map;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streamlab-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> Value {
        let mut m = Map::new();
        m.insert("sessions".into(), 600u64.to_value());
        Value::Object(m)
    }

    fn payload(x: u64) -> Value {
        let mut m = Map::new();
        m.insert("metric".into(), x.to_value());
        Value::Object(m)
    }

    #[test]
    fn create_record_reopen_roundtrip() {
        let root = scratch("roundtrip");
        let dir = RunDir::create(&root, Manifest::new("sweep", vec![7, 8, 9], config())).unwrap();
        dir.record_seed(7, payload(70)).unwrap();
        dir.record_seed(9, payload(90)).unwrap();

        let reopened = RunDir::open(&root).unwrap();
        assert_eq!(reopened.manifest().seeds, vec![7, 8, 9]);
        let (done, skipped) = reopened.completed_seeds();
        assert!(skipped.is_empty());
        assert_eq!(done.len(), 2);
        assert_eq!(done[&7], payload(70));
        assert_eq!(done[&9], payload(90));
        assert!(!done.contains_key(&8));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_mismatch_hides_stale_records() {
        let root = scratch("stale");
        let dir = RunDir::create(&root, Manifest::new("sweep", vec![1], config())).unwrap();
        dir.record_seed(1, payload(1)).unwrap();
        // Re-create with a different config: the old record must vanish.
        let mut other = Map::new();
        other.insert("sessions".into(), 601u64.to_value());
        let dir2 =
            RunDir::create(&root, Manifest::new("sweep", vec![1], Value::Object(other))).unwrap();
        let (done, _) = dir2.completed_seeds();
        assert!(done.is_empty(), "stale record survived a config change");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_or_foreign_records_are_skipped_not_fatal() {
        let root = scratch("torn");
        let dir = RunDir::create(&root, Manifest::new("sweep", vec![1, 2], config())).unwrap();
        dir.record_seed(1, payload(1)).unwrap();
        // A truncated record (can't happen through atomic_write, but be
        // lenient) and a record for an unplanned seed.
        fs::write(
            root.join("seeds").join("seed-00000000000000000002.json"),
            b"{\"ver",
        )
        .unwrap();
        let mut rec = Map::new();
        rec.insert("version".into(), 1u64.to_value());
        rec.insert("fingerprint".into(), dir.manifest().fingerprint.to_value());
        rec.insert("seed".into(), 42u64.to_value());
        rec.insert("payload".into(), payload(42));
        fs::write(
            root.join("seeds").join("seed-00000000000000000042.json"),
            Value::Object(rec).to_json_string(),
        )
        .unwrap();

        let (done, skipped) = dir.completed_seeds();
        assert_eq!(done.len(), 1);
        assert!(done.contains_key(&1));
        assert_eq!(skipped.len(), 2, "both bad records reported: {skipped:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopening_sweeps_orphaned_staging_files() {
        let root = scratch("staging");
        let dir = RunDir::create(&root, Manifest::new("sweep", vec![1], config())).unwrap();
        dir.record_seed(1, payload(1)).unwrap();
        // A crashed writer's staging files: pid-stamped names nothing
        // would ever reclaim without the sweep.
        fs::write(root.join(".manifest.json.tmp.4242"), b"orphan").unwrap();
        fs::write(root.join("seeds").join(".seed-x.json.tmp.4242"), b"orphan").unwrap();
        let reopened = RunDir::open(&root).unwrap();
        assert_eq!(
            reopened.stale_staging().len(),
            2,
            "{:?}",
            reopened.stale_staging()
        );
        assert!(!root.join(".manifest.json.tmp.4242").exists());
        assert!(!root.join("seeds").join(".seed-x.json.tmp.4242").exists());
        let (done, skipped) = reopened.completed_seeds();
        assert_eq!(done.len(), 1);
        assert!(skipped.is_empty(), "{skipped:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn edited_manifest_is_rejected_on_open() {
        let root = scratch("edited");
        RunDir::create(&root, Manifest::new("sweep", vec![1], config())).unwrap();
        let path = root.join("manifest.json");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("600", "999")).unwrap();
        let err = RunDir::open(&root).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_missing_dir_is_a_clear_error() {
        let err = RunDir::open(Path::new("/nonexistent/streamlab-run")).unwrap_err();
        assert!(err.contains("not a run directory"), "{err}");
    }
}
