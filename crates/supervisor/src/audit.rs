//! Post-run structural invariant auditor.
//!
//! A deterministic simulator can be wrong *quietly*: a dropped counter
//! increment or a mis-merged shard produces plausible-looking figures
//! that no longer conserve anything. The auditor re-derives the
//! bookkeeping identities that must hold for **any** configuration —
//! conservation of sessions, chunks and bytes, histogram totals vs their
//! driving counters, monotone per-session sim-time — and reports each
//! breach with the numbers that disagree, so a violation pinpoints the
//! broken subsystem instead of surfacing three figures later as a weird
//! quantile.
//!
//! The checks deliberately use only two inputs: the merged [`SimMetrics`]
//! block (observer path) and a [`DatasetFacts`] summary of the primary
//! output (beacon-join path). The two are produced by disjoint code, so
//! agreement between them is evidence, not tautology.

use serde::Serialize;
use streamlab_obs::SimMetrics;

/// Plain-number facts about the run's primary outputs, computed by the
/// caller (the engine crate) so the auditor needs no dataset types.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DatasetFacts {
    /// Sessions simulated before any telemetry-side filtering.
    pub raw_sessions: u64,
    /// Sessions present in the joined dataset (after proxy filtering).
    pub dataset_sessions: u64,
    /// Per-chunk records present in the joined dataset.
    pub dataset_chunks: u64,
    /// Session ids whose per-chunk request times go backwards.
    pub nonmonotonic_sessions: Vec<u64>,
    /// Session ids whose chunk indices are not `0..n` exactly.
    pub noncontiguous_sessions: Vec<u64>,
    /// Shards that failed (panicked or stalled); their results are
    /// excluded from both metrics and dataset, so conservation must still
    /// hold among the survivors.
    pub shard_errors: u64,
}

/// One violated invariant.
#[derive(Debug, Clone, Serialize)]
pub struct AuditViolation {
    /// Short stable name of the invariant (e.g. `bytes_conservation`).
    pub invariant: &'static str,
    /// The disagreeing numbers, spelled out.
    pub detail: String,
}

/// The auditor's verdict: which invariants were checked, which failed.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AuditReport {
    /// Names of every invariant evaluated, in evaluation order.
    pub checks: Vec<&'static str>,
    /// The failures (empty on a clean run).
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// A short human summary: one line when clean, one line per
    /// violation otherwise.
    pub fn render(&self) -> String {
        if self.is_clean() {
            format!("audit: {} invariants checked, all hold", self.checks.len())
        } else {
            let mut s = format!(
                "audit: {} of {} invariants VIOLATED\n",
                self.violations.len(),
                self.checks.len()
            );
            for v in &self.violations {
                s.push_str(&format!("  {}: {}\n", v.invariant, v.detail));
            }
            s
        }
    }

    fn check(&mut self, invariant: &'static str, holds: bool, detail: String) {
        self.checks.push(invariant);
        if !holds {
            self.violations.push(AuditViolation { invariant, detail });
        }
    }

    fn check_eq(&mut self, invariant: &'static str, left: (&str, u64), right: (&str, u64)) {
        self.check(
            invariant,
            left.1 == right.1,
            format!("{} = {} but {} = {}", left.0, left.1, right.0, right.1),
        );
    }

    fn check_le(&mut self, invariant: &'static str, small: (&str, u64), big: (&str, u64)) {
        self.check(
            invariant,
            small.1 <= big.1,
            format!("{} = {} exceeds {} = {}", small.0, small.1, big.0, big.1),
        );
    }
}

/// Run every structural invariant over a completed run.
pub fn audit(m: &SimMetrics, facts: &DatasetFacts) -> AuditReport {
    let mut r = AuditReport::default();

    // Session lifecycle: the event loop drains, so every started session
    // ends (aborted sessions end too), and the observer and beacon paths
    // must have seen the same population.
    r.check_eq(
        "session_lifecycle",
        ("sessions_started", m.sessions_started.get()),
        ("sessions_ended", m.sessions_ended.get()),
    );
    r.check_eq(
        "session_population",
        ("sessions_started", m.sessions_started.get()),
        ("dataset raw_sessions", facts.raw_sessions),
    );
    r.check_le(
        "session_filtering",
        ("dataset sessions", facts.dataset_sessions),
        ("raw_sessions", facts.raw_sessions),
    );

    // Chunk conservation: every served chunk went through exactly one
    // cache lookup, and the telemetry join can only drop records (proxy
    // filtering), never invent them.
    let lookups = m.chunk_lookups();
    r.check_eq(
        "chunk_lookup_partition",
        ("chunk ram+disk+miss lookups", lookups),
        ("chunks_served", m.chunks_served.get()),
    );
    r.check_le(
        "chunk_join",
        ("dataset chunks", facts.dataset_chunks),
        ("chunks_served", m.chunks_served.get()),
    );

    // Manifest conservation: same partition on the manifest side.
    r.check_eq(
        "manifest_lookup_partition",
        (
            "manifest ram+disk+miss lookups",
            m.manifest_ram_hits.get() + m.manifest_disk_hits.get() + m.manifest_misses.get(),
        ),
        ("manifest_requests", m.manifest_requests.get()),
    );

    // Byte conservation: every served byte came from exactly one tier.
    r.check_eq(
        "bytes_conservation",
        ("bytes_served", m.bytes_served.get()),
        (
            "bytes_ram + bytes_disk + bytes_miss",
            m.bytes_ram.get() + m.bytes_disk.get() + m.bytes_miss.get(),
        ),
    );

    // Histogram totals vs their driving counters: one sample per serve
    // (three latency views of the same chunk) and one per failed attempt.
    r.check_eq(
        "serve_latency_samples",
        ("serve_latency_ns count", m.serve_latency_ns.count()),
        ("chunks_served", m.chunks_served.get()),
    );
    r.check_eq(
        "first_byte_samples",
        ("first_byte_ns count", m.first_byte_ns.count()),
        ("chunks_served", m.chunks_served.get()),
    );
    r.check_eq(
        "download_samples",
        ("download_ns count", m.download_ns.count()),
        ("chunks_served", m.chunks_served.get()),
    );
    r.check_eq(
        "retry_backoff_samples",
        ("retry_backoff_ns count", m.retry_backoff_ns.count()),
        ("request_retries", m.request_retries.get()),
    );

    // Transport and playback sanity.
    r.check_le(
        "retransmit_bound",
        ("retx_segments", m.retx_segments.get()),
        ("segments_sent", m.segments_sent.get()),
    );
    r.check_le(
        "frame_drop_bound",
        ("frames_dropped", m.frames_dropped.get()),
        ("frames_rendered", m.frames_rendered.get()),
    );

    // Engine accounting: a chunk serve consumes at least one event.
    r.check_le(
        "event_accounting",
        ("chunks_served", m.chunks_served.get()),
        ("events_processed", m.events_processed.get()),
    );

    // Localization partition: the problem-localization pass must
    // attribute every rebuffer, abort and ended session to exactly one
    // problem class — no double counting, nothing unclassified.
    r.check_eq(
        "localization_rebuffer_partition",
        ("loc_rebuffers_* total", m.loc_rebuffers_total()),
        ("stall_events", m.stall_events.get()),
    );
    r.check_eq(
        "localization_abort_partition",
        ("loc_aborts_* total", m.loc_aborts_total()),
        ("sessions_aborted", m.sessions_aborted.get()),
    );
    r.check_eq(
        "localization_session_partition",
        ("loc_sessions_* total", m.loc_sessions_total()),
        ("sessions_ended", m.sessions_ended.get()),
    );

    // Sim-time structure of the joined dataset.
    r.check(
        "monotone_session_time",
        facts.nonmonotonic_sessions.is_empty(),
        format!(
            "request sim-time goes backwards within session(s) {:?}",
            truncate(&facts.nonmonotonic_sessions)
        ),
    );
    r.check(
        "contiguous_chunk_indices",
        facts.noncontiguous_sessions.is_empty(),
        format!(
            "chunk indices are not 0..n within session(s) {:?}",
            truncate(&facts.noncontiguous_sessions)
        ),
    );

    r
}

/// First few offending ids — enough to pinpoint, not enough to flood.
fn truncate(ids: &[u64]) -> Vec<u64> {
    ids.iter().copied().take(8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A self-consistent metrics block + facts pair.
    fn consistent() -> (SimMetrics, DatasetFacts) {
        let mut m = SimMetrics::default();
        m.sessions_started.add(4);
        m.sessions_ended.add(4);
        m.chunks_served.add(10);
        m.chunk_ram_hits.add(6);
        m.chunk_disk_hits.add(1);
        m.chunk_misses.add(3);
        m.manifest_requests.add(4);
        m.manifest_ram_hits.add(3);
        m.manifest_misses.add(1);
        m.bytes_served.add(1_000);
        m.bytes_ram.add(600);
        m.bytes_disk.add(100);
        m.bytes_miss.add(300);
        m.segments_sent.add(700);
        m.retx_segments.add(7);
        m.frames_rendered.add(2_400);
        m.frames_dropped.add(3);
        m.events_processed.add(500);
        m.request_retries.add(2);
        m.stall_events.add(2);
        m.loc_rebuffers_network.add(1);
        m.loc_rebuffers_server.add(1);
        m.loc_sessions_healthy.add(3);
        m.loc_sessions_network.add(1);
        for _ in 0..10 {
            m.serve_latency_ns.record(5_000_000);
            m.first_byte_ns.record(40_000_000);
            m.download_ns.record(300_000_000);
        }
        for _ in 0..2 {
            m.retry_backoff_ns.record(250_000_000);
        }
        let facts = DatasetFacts {
            raw_sessions: 4,
            dataset_sessions: 3,
            dataset_chunks: 8,
            ..DatasetFacts::default()
        };
        (m, facts)
    }

    #[test]
    fn consistent_run_is_clean() {
        let (m, facts) = consistent();
        let report = audit(&m, &facts);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.checks.len() >= 15);
        assert!(report.render().contains("all hold"));
    }

    #[test]
    fn corrupted_byte_counter_is_pinpointed() {
        let (mut m, facts) = consistent();
        m.bytes_ram.add(1); // lose conservation by a single byte
        let report = audit(&m, &facts);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.invariant, "bytes_conservation");
        assert!(v.detail.contains("1000"), "{}", v.detail);
        assert!(v.detail.contains("1001"), "{}", v.detail);
        assert!(report.render().contains("VIOLATED"));
    }

    #[test]
    fn dropped_histogram_sample_is_caught() {
        let (mut m, facts) = consistent();
        m.chunks_served.add(1); // one serve whose latency was never recorded
        m.chunk_misses.add(1);
        m.events_processed.add(1);
        let report = audit(&m, &facts);
        let names: Vec<_> = report.violations.iter().map(|v| v.invariant).collect();
        assert!(names.contains(&"serve_latency_samples"), "{names:?}");
        assert!(names.contains(&"first_byte_samples"), "{names:?}");
        assert!(names.contains(&"download_samples"), "{names:?}");
    }

    #[test]
    fn dataset_structure_violations_list_sessions() {
        let (m, mut facts) = consistent();
        facts.nonmonotonic_sessions = vec![17];
        facts.noncontiguous_sessions = (0..20).collect();
        let report = audit(&m, &facts);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations[0].detail.contains("17"));
        // Long offender lists are truncated.
        assert!(!report.violations[1].detail.contains("19"));
    }

    #[test]
    fn unattributed_rebuffer_is_caught() {
        let (mut m, facts) = consistent();
        m.stall_events.add(1); // a stall the localization pass never classified
        let report = audit(&m, &facts);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(
            report.violations[0].invariant,
            "localization_rebuffer_partition"
        );
    }

    #[test]
    fn double_counted_session_class_is_caught() {
        let (mut m, facts) = consistent();
        m.loc_sessions_server.add(1); // same session classified twice
        let report = audit(&m, &facts);
        let names: Vec<_> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(names, vec!["localization_session_partition"]);
    }

    #[test]
    fn inverted_bound_is_caught() {
        let (mut m, facts) = consistent();
        m.retx_segments.add(100_000); // more retransmits than segments
        let report = audit(&m, &facts);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "retransmit_bound");
    }

    #[test]
    fn empty_run_is_clean() {
        let report = audit(&SimMetrics::default(), &DatasetFacts::default());
        assert!(report.is_clean(), "{}", report.render());
    }
}
