//! Deterministic storage failpoints: a seam over the handful of file
//! operations every persistence path uses, plus a JSON-declared, seeded
//! fault plan that can fail any of them on demand.
//!
//! The crash-safety story of PRs 4 and 8 — atomic emission, fingerprinted
//! checkpoints, quarantine-and-continue recovery — was only ever proven
//! under clean SIGKILLs and corruption at rest. The host filesystem is
//! "layer zero" of the end-to-end pipeline, and real disks fail *live*:
//! `ENOSPC` mid-run, `EIO` on an fsync, a torn write that leaves half a
//! file, an fsync the kernel acknowledged but never performed. This
//! module makes those failures deterministic and replayable:
//!
//! * [`StorageOps`] — the storage operations the persistence paths go
//!   through (create / write / fsync / rename / dir-fsync / read /
//!   remove). [`Storage`] implements it; `atomic_write`, checkpoint run
//!   directories, and the service registry route every byte through it.
//! * [`StorageFaultPlan`] — a JSON-declared, seeded list of
//!   [`FaultRule`]s, loaded from `--storage-faults FILE` and inert by
//!   default (mirroring the session-level `--faults` scenario). Each
//!   rule matches an operation class and a path substring, and fires at
//!   the Nth matching operation: `eio`, `enospc`,
//!   torn-write-truncate-at-byte-k, lost-fsync, slow-io, or `crash`.
//! * Crash-point sweeps — [`Storage::faulty_soft`] turns the `crash`
//!   kind into an in-process simulated death (the storage goes
//!   permanently dead instead of calling `abort()`), so a test can kill
//!   a persistence protocol at *every* failpoint in turn
//!   (FoundationDB-style) and assert recovery invariants after each,
//!   thousands of times per second, in one process.
//!
//! Faults are injected at the *operation* level, not the syscall level:
//! a torn write truncates the staging file while reporting success,
//! which is exactly the damage an ill-timed power cut produces — and
//! exactly what the atomic-write protocol's rename barrier plus the
//! readers' fingerprint checks must catch.

use serde::Value;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use streamlab_obs::storage::StorageFaultSnapshot;

/// The operation classes a [`FaultRule`] can match. `Any` matches every
/// instrumented operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOp {
    /// Matches every operation class.
    Any,
    /// Creating a staging file (rules match on the *target* path).
    Create,
    /// Writing payload bytes into a staging file.
    Write,
    /// Fsyncing a staging file.
    Sync,
    /// Renaming a staging file over its target.
    Rename,
    /// Fsyncing the parent directory after a rename.
    SyncDir,
    /// Reading a persisted file back.
    Read,
    /// Removing a file.
    Remove,
}

impl StorageOp {
    fn parse(text: &str) -> Result<StorageOp, String> {
        Ok(match text {
            "any" => StorageOp::Any,
            "create" => StorageOp::Create,
            "write" => StorageOp::Write,
            "sync" => StorageOp::Sync,
            "rename" => StorageOp::Rename,
            "sync_dir" => StorageOp::SyncDir,
            "read" => StorageOp::Read,
            "remove" => StorageOp::Remove,
            other => {
                return Err(format!(
                    "unknown storage op {other:?} (expected any, create, write, sync, \
                     rename, sync_dir, read or remove)"
                ))
            }
        })
    }

    /// The lowercase name used in fault-plan JSON.
    pub fn name(self) -> &'static str {
        match self {
            StorageOp::Any => "any",
            StorageOp::Create => "create",
            StorageOp::Write => "write",
            StorageOp::Sync => "sync",
            StorageOp::Rename => "rename",
            StorageOp::SyncDir => "sync_dir",
            StorageOp::Read => "read",
            StorageOp::Remove => "remove",
        }
    }
}

/// What an injected fault does to the matched operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail the operation with an I/O error (`ErrorKind::Other`), the
    /// shape of a device-level `EIO`. Not transient: retries don't help.
    Eio,
    /// Fail the operation with `ErrorKind::StorageFull` (`ENOSPC`).
    /// Transient in the retry taxonomy, so `with_retry` will re-attempt
    /// — each attempt is a fresh matching operation that consumes the
    /// rule's window.
    Enospc,
    /// Report success but truncate the written file to `keep_bytes`:
    /// the damage an ill-timed power cut produces. Only meaningful on
    /// `write` operations; a no-op elsewhere.
    TornWrite {
        /// Bytes of the write that actually reach the file.
        keep_bytes: u64,
    },
    /// Report success without syncing anything: an fsync the kernel
    /// acknowledged and dropped. Only meaningful on `sync` / `sync_dir`
    /// operations; a no-op elsewhere.
    LostFsync,
    /// Delay the operation by `delay_ms`, then let it through.
    SlowIo {
        /// Injected delay in milliseconds.
        delay_ms: u64,
    },
    /// Kill the process at this failpoint (`std::process::abort()`) —
    /// or, for storage built with [`Storage::faulty_soft`], simulate the
    /// death in-process: this and every later operation on the handle
    /// fails, as if the process had died here.
    Crash,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::TornWrite { .. } => "torn_write",
            FaultKind::LostFsync => "lost_fsync",
            FaultKind::SlowIo { .. } => "slow_io",
            FaultKind::Crash => "crash",
        }
    }
}

/// One declarative fault: *which* operations it matches, *when* it
/// fires, and *what* it does.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Operation class to match (`"any"` matches all). JSON key `op`.
    pub op: StorageOp,
    /// Substring the operation's target path must contain; empty
    /// matches everything. JSON key `path_contains`.
    pub path_contains: String,
    /// 1-based index of the first matching operation that fires.
    /// JSON key `nth`, default 1.
    pub nth: u64,
    /// How many consecutive matching operations fire from `nth` on;
    /// `0` means forever. JSON key `count`, default 1.
    pub count: u64,
    /// Chance an eligible operation actually fires, drawn from the
    /// plan's seeded generator. JSON key `probability`, default 1.0.
    pub probability: f64,
    /// What happens when the rule fires. JSON key `kind` (string),
    /// with `keep_bytes` / `delay_ms` as sibling keys where relevant.
    pub kind: FaultKind,
}

/// A seeded, JSON-declared storage fault plan: the `--storage-faults`
/// counterpart of the session-level `--faults` scenario. An empty plan
/// is inert — loading one changes nothing.
///
/// ```json
/// {
///   "seed": 7,
///   "rules": [
///     { "op": "write", "path_contains": "jobs/", "nth": 3, "kind": "enospc", "count": 0 },
///     { "op": "sync", "kind": "lost_fsync", "probability": 0.5 },
///     { "op": "any", "nth": 12, "kind": "crash" }
///   ]
/// }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageFaultPlan {
    /// Seed for the probability draws; plans with the same seed and
    /// rules inject identically.
    pub seed: u64,
    /// Rules, evaluated in order; the first rule whose window fires
    /// decides the operation's fate (all matching rules still advance
    /// their counters).
    pub rules: Vec<FaultRule>,
}

impl StorageFaultPlan {
    /// A plan whose only rule crashes at the `nth` matching operation —
    /// the unit of a crash-point sweep.
    pub fn crash_at(nth: u64) -> StorageFaultPlan {
        StorageFaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                op: StorageOp::Any,
                path_contains: String::new(),
                nth,
                count: 1,
                probability: 1.0,
                kind: FaultKind::Crash,
            }],
        }
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parse a plan from JSON text and validate it.
    pub fn from_json_str(text: &str) -> Result<StorageFaultPlan, String> {
        let value = Value::parse_json(text).map_err(|e| e.to_string())?;
        let plan = Self::from_value(&value)?;
        plan.validate()?;
        Ok(plan)
    }

    /// Load a plan from a JSON file, tagging errors with the path.
    pub fn from_json_file(path: &str) -> Result<StorageFaultPlan, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading storage faults {path}: {e}"))?;
        Self::from_json_str(&text).map_err(|e| format!("{path}: {e}"))
    }

    fn from_value(value: &Value) -> Result<StorageFaultPlan, String> {
        let obj = value
            .as_object()
            .ok_or_else(|| format!("storage fault plan must be an object, got {}", value.kind()))?;
        let seed = match obj.get("seed") {
            None => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| "seed must be a non-negative integer".to_string())?,
        };
        let mut rules = Vec::new();
        if let Some(raw) = obj.get("rules") {
            let list = raw
                .as_array()
                .ok_or_else(|| format!("rules must be an array, got {}", raw.kind()))?;
            for (i, entry) in list.iter().enumerate() {
                rules.push(Self::rule_from_value(entry, i)?);
            }
        }
        for key in obj.keys() {
            if key != "seed" && key != "rules" {
                return Err(format!("unknown storage fault plan key {key:?}"));
            }
        }
        Ok(StorageFaultPlan { seed, rules })
    }

    fn rule_from_value(value: &Value, index: usize) -> Result<FaultRule, String> {
        let tag = |msg: String| format!("rules[{index}]: {msg}");
        let obj = value
            .as_object()
            .ok_or_else(|| tag(format!("must be an object, got {}", value.kind())))?;
        let str_key = |key: &str, default: &str| -> Result<String, String> {
            match obj.get(key) {
                None => Ok(default.to_string()),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| tag(format!("{key} must be a string"))),
            }
        };
        let u64_key = |key: &str, default: u64| -> Result<u64, String> {
            match obj.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| tag(format!("{key} must be a non-negative integer"))),
            }
        };
        let op = StorageOp::parse(&str_key("op", "any")?).map_err(tag)?;
        let path_contains = str_key("path_contains", "")?;
        let nth = u64_key("nth", 1)?;
        let count = u64_key("count", 1)?;
        let probability = match obj.get("probability") {
            None => 1.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| tag("probability must be a number".to_string()))?,
        };
        let kind = match str_key("kind", "")?.as_str() {
            "" => return Err(tag("missing required key \"kind\"".to_string())),
            "eio" => FaultKind::Eio,
            "enospc" => FaultKind::Enospc,
            "torn_write" => FaultKind::TornWrite {
                keep_bytes: u64_key("keep_bytes", 0)?,
            },
            "lost_fsync" => FaultKind::LostFsync,
            "slow_io" => FaultKind::SlowIo {
                delay_ms: u64_key("delay_ms", 10)?,
            },
            "crash" => FaultKind::Crash,
            other => {
                return Err(tag(format!(
                    "unknown fault kind {other:?} (expected eio, enospc, torn_write, \
                     lost_fsync, slow_io or crash)"
                )))
            }
        };
        Ok(FaultRule {
            op,
            path_contains,
            nth,
            count,
            probability,
            kind,
        })
    }

    /// Reject plans whose rules can never behave sensibly.
    pub fn validate(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.nth == 0 {
                return Err(format!("rules[{i}]: nth is 1-based and must be >= 1"));
            }
            if !rule.probability.is_finite() || !(0.0..=1.0).contains(&rule.probability) {
                return Err(format!(
                    "rules[{i}]: probability must be within [0, 1], got {}",
                    rule.probability
                ));
            }
            if let FaultKind::SlowIo { delay_ms } = rule.kind {
                if delay_ms > 10_000 {
                    return Err(format!(
                        "rules[{i}]: slow_io delay_ms must be <= 10000, got {delay_ms}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// What a fired rule tells the operation to do (beyond plain errors).
enum Action {
    Proceed,
    Torn(u64),
    SkipSync,
}

#[derive(Debug)]
struct FaultState {
    plan: StorageFaultPlan,
    /// `crash` rules simulate death in-process instead of aborting.
    soft_crash: bool,
    enabled: AtomicBool,
    dead: AtomicBool,
    ops: AtomicU64,
    /// Per-rule count of matching operations seen (drives `nth`/`count`).
    hits: Vec<AtomicU64>,
    rng: Mutex<u64>,
    /// Injected-fault counters: eio, enospc, torn, lost_fsync, slow_io, crash.
    injected: [AtomicU64; 6],
}

/// xorshift64*: deterministic, seedable, plenty for fault probability
/// draws. Never returns the same stream for two different seeds.
fn next_f64(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
}

fn dead_error() -> io::Error {
    io::Error::other(
        "storage crashed at an injected failpoint; all subsequent I/O on this handle fails",
    )
}

/// A cloneable storage handle: either the real filesystem (the default,
/// zero-cost path) or the real filesystem wrapped in a
/// [`StorageFaultPlan`]. Clones share fault state, so one handle
/// threaded through a daemon injects a single coherent fault history.
#[derive(Debug, Clone, Default)]
pub struct Storage {
    faults: Option<Arc<FaultState>>,
}

impl Storage {
    /// The real filesystem: no interception, no counters.
    pub fn real() -> Storage {
        Storage { faults: None }
    }

    /// Storage governed by `plan`; `crash` rules call
    /// `std::process::abort()`, exactly like the service chaos hook.
    pub fn faulty(plan: StorageFaultPlan) -> Storage {
        Storage::with_plan(plan, false)
    }

    /// Storage governed by `plan` with *soft* crashes: a `crash` rule
    /// marks the handle dead instead of aborting, and every later
    /// operation fails. This simulates process death in-process, which
    /// is what makes systematic crash-point sweeps cheap.
    pub fn faulty_soft(plan: StorageFaultPlan) -> Storage {
        Storage::with_plan(plan, true)
    }

    /// Storage with an empty plan: behaves exactly like the real
    /// filesystem but counts operations — used to enumerate the
    /// failpoints of a protocol before sweeping them.
    pub fn counting() -> Storage {
        Storage::with_plan(StorageFaultPlan::default(), true)
    }

    fn with_plan(plan: StorageFaultPlan, soft_crash: bool) -> Storage {
        let mut seed = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        if seed == 0 {
            seed = 1; // xorshift must not start at the absorbing state
        }
        let hits = (0..plan.rules.len()).map(|_| AtomicU64::new(0)).collect();
        Storage {
            faults: Some(Arc::new(FaultState {
                plan,
                soft_crash,
                enabled: AtomicBool::new(true),
                dead: AtomicBool::new(false),
                ops: AtomicU64::new(0),
                hits,
                rng: Mutex::new(seed),
                injected: Default::default(),
            })),
        }
    }

    /// Whether the plan is consulted at all. Disabling leaves rule
    /// counters frozen, so a fault can be armed later deterministically.
    pub fn set_enabled(&self, enabled: bool) {
        if let Some(st) = &self.faults {
            st.enabled.store(enabled, Ordering::SeqCst);
        }
    }

    /// True once a soft crash has fired: the handle refuses all I/O.
    pub fn is_dead(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|st| st.dead.load(Ordering::SeqCst))
    }

    /// Total instrumented operations seen (faulted or not). Zero for
    /// [`Storage::real`], which does not count.
    pub fn ops_seen(&self) -> u64 {
        self.faults
            .as_ref()
            .map_or(0, |st| st.ops.load(Ordering::SeqCst))
    }

    /// Injected-fault counts by kind, for OpenMetrics export.
    pub fn fault_snapshot(&self) -> StorageFaultSnapshot {
        let Some(st) = &self.faults else {
            return StorageFaultSnapshot::default();
        };
        let n = |i: usize| st.injected[i].load(Ordering::SeqCst);
        StorageFaultSnapshot {
            eio: n(0),
            enospc: n(1),
            torn_writes: n(2),
            lost_fsyncs: n(3),
            slow_ios: n(4),
            crashes: n(5),
        }
    }

    /// Consult the plan for one operation. Every matching rule advances
    /// its counter (so windows stay aligned across rules); the first
    /// rule whose window fires decides the outcome.
    fn decide(&self, op: StorageOp, path: &Path) -> io::Result<Action> {
        let Some(st) = &self.faults else {
            return Ok(Action::Proceed);
        };
        st.ops.fetch_add(1, Ordering::SeqCst);
        if st.dead.load(Ordering::SeqCst) {
            return Err(dead_error());
        }
        if !st.enabled.load(Ordering::SeqCst) {
            return Ok(Action::Proceed);
        }
        let path_text = path.to_string_lossy();
        let mut fired: Option<FaultKind> = None;
        for (rule, hits) in st.plan.rules.iter().zip(&st.hits) {
            if rule.op != StorageOp::Any && rule.op != op {
                continue;
            }
            if !rule.path_contains.is_empty() && !path_text.contains(&rule.path_contains) {
                continue;
            }
            let n = hits.fetch_add(1, Ordering::SeqCst) + 1; // 1-based
            if fired.is_some() || n < rule.nth {
                continue;
            }
            if rule.count != 0 && n >= rule.nth + rule.count {
                continue;
            }
            if rule.probability < 1.0 {
                let u = next_f64(&mut st.rng.lock().unwrap());
                if u >= rule.probability {
                    continue;
                }
            }
            fired = Some(rule.kind);
        }
        let Some(kind) = fired else {
            return Ok(Action::Proceed);
        };
        let count = |i: usize| {
            st.injected[i].fetch_add(1, Ordering::SeqCst);
        };
        match kind {
            FaultKind::Eio => {
                count(0);
                Err(io::Error::other(format!(
                    "injected EIO on {} {}",
                    op.name(),
                    path.display()
                )))
            }
            FaultKind::Enospc => {
                count(1);
                Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!("injected ENOSPC on {} {}", op.name(), path.display()),
                ))
            }
            FaultKind::TornWrite { keep_bytes } => {
                count(2);
                Ok(Action::Torn(keep_bytes))
            }
            FaultKind::LostFsync => {
                count(3);
                Ok(Action::SkipSync)
            }
            FaultKind::SlowIo { delay_ms } => {
                count(4);
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                Ok(Action::Proceed)
            }
            FaultKind::Crash => {
                count(5);
                if st.soft_crash {
                    st.dead.store(true, Ordering::SeqCst);
                    Err(dead_error())
                } else {
                    std::process::abort();
                }
            }
        }
    }
}

/// The storage operations every persistence path goes through — the
/// supervisor's VFS seam. `atomic_write`, checkpoint run directories and
/// the service registry call these instead of `std::fs`, so one
/// [`StorageFaultPlan`] observes (and can fail) every create / write /
/// fsync / rename / read they perform.
pub trait StorageOps: Send + Sync {
    /// Create (truncating) the staging file `tmp` for target `target`.
    /// Fault rules match on the target path.
    fn create(&self, target: &Path, tmp: &Path) -> io::Result<fs::File>;

    /// Run the caller's writer over the staging file. The writer runs
    /// at most once. A torn-write fault truncates the result and
    /// reports success — the protocol then publishes damage that a
    /// reader's fingerprint check must catch.
    fn write(
        &self,
        target: &Path,
        file: &mut fs::File,
        writer: &mut dyn FnMut(&mut fs::File) -> io::Result<()>,
    ) -> io::Result<()>;

    /// Fsync the staging file for `target`. A lost-fsync fault reports
    /// success without syncing.
    fn sync_file(&self, target: &Path, file: &fs::File) -> io::Result<()>;

    /// Rename `from` over `to` (fault rules match on `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsync directory `dir`, making a completed rename durable.
    /// Platforms or filesystems that cannot fsync a directory report
    /// success — the barrier is advisory there.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Read `path` to a string.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Remove `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

impl StorageOps for Storage {
    fn create(&self, target: &Path, tmp: &Path) -> io::Result<fs::File> {
        self.decide(StorageOp::Create, target)?;
        fs::File::create(tmp)
    }

    fn write(
        &self,
        target: &Path,
        file: &mut fs::File,
        writer: &mut dyn FnMut(&mut fs::File) -> io::Result<()>,
    ) -> io::Result<()> {
        let action = self.decide(StorageOp::Write, target)?;
        writer(file)?;
        if let Action::Torn(keep_bytes) = action {
            // The bytes past `keep_bytes` never reach the disk, but the
            // writer is told everything succeeded.
            let len = file.metadata()?.len();
            file.set_len(len.min(keep_bytes))?;
        }
        Ok(())
    }

    fn sync_file(&self, target: &Path, file: &fs::File) -> io::Result<()> {
        match self.decide(StorageOp::Sync, target)? {
            Action::SkipSync => Ok(()),
            _ => file.sync_all(),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.decide(StorageOp::Rename, to)?;
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if let Action::SkipSync = self.decide(StorageOp::SyncDir, dir)? {
            return Ok(());
        }
        let handle = match fs::File::open(dir) {
            Ok(handle) => handle,
            // Directories cannot be opened for fsync everywhere; the
            // durability barrier is advisory on such platforms.
            Err(_) => return Ok(()),
        };
        match handle.sync_all() {
            Ok(()) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Unsupported | io::ErrorKind::InvalidInput
                ) =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.decide(StorageOp::Read, path)?;
        fs::read_to_string(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.decide(StorageOp::Remove, path)?;
        fs::remove_file(path)
    }
}

static AMBIENT: RwLock<Option<Storage>> = RwLock::new(None);

/// Install `storage` as the process-wide default used by
/// [`crate::atomic_write`] (and everything layered on it) when no
/// explicit handle is given. Called once at CLI startup when
/// `--storage-faults` is present; tests pass explicit handles to the
/// `*_in` variants instead, so parallel tests never share fault state.
pub fn install_ambient_storage(storage: Storage) {
    *AMBIENT.write().unwrap() = Some(storage);
}

/// The process-wide default storage: real, unless
/// [`install_ambient_storage`] ran.
pub fn ambient_storage() -> Storage {
    AMBIENT.read().unwrap().clone().unwrap_or_default()
}

impl fmt::Display for StorageFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inert() {
            return write!(f, "inert storage fault plan");
        }
        write!(f, "seed {} with {} rule(s):", self.seed, self.rules.len())?;
        for rule in &self.rules {
            write!(
                f,
                " [{} op={} path~{:?} nth={} count={}]",
                rule.kind.name(),
                rule.op.name(),
                rule.path_contains,
                rule.nth,
                rule.count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamlab-failpoint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_via(storage: &Storage, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        let mut file = storage.create(path, &tmp)?;
        storage.write(path, &mut file, &mut |f| f.write_all(bytes))?;
        storage.sync_file(path, &file)?;
        storage.rename(&tmp, path)?;
        storage.sync_dir(path.parent().unwrap())
    }

    #[test]
    fn parse_applies_defaults() {
        let plan =
            StorageFaultPlan::from_json_str(r#"{ "rules": [ { "kind": "eio" } ] }"#).unwrap();
        assert_eq!(plan.seed, 0);
        let rule = &plan.rules[0];
        assert_eq!(rule.op, StorageOp::Any);
        assert_eq!(rule.path_contains, "");
        assert_eq!(rule.nth, 1);
        assert_eq!(rule.count, 1);
        assert_eq!(rule.probability, 1.0);
        assert_eq!(rule.kind, FaultKind::Eio);
    }

    #[test]
    fn parse_rejects_bad_plans() {
        for (text, needle) in [
            (r#"[]"#, "must be an object"),
            (r#"{ "rules": [ {} ] }"#, "missing required key"),
            (
                r#"{ "rules": [ { "kind": "meteor" } ] }"#,
                "unknown fault kind",
            ),
            (
                r#"{ "rules": [ { "kind": "eio", "op": "chmod" } ] }"#,
                "unknown storage op",
            ),
            (
                r#"{ "rules": [ { "kind": "eio", "nth": 0 } ] }"#,
                "nth is 1-based",
            ),
            (
                r#"{ "rules": [ { "kind": "eio", "probability": 1.5 } ] }"#,
                "probability",
            ),
            (
                r#"{ "rules": [ { "kind": "slow_io", "delay_ms": 99999 } ] }"#,
                "delay_ms",
            ),
            (r#"{ "surprise": 1 }"#, "unknown storage fault plan key"),
        ] {
            let err = StorageFaultPlan::from_json_str(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn empty_plan_is_inert_and_counts_ops() {
        let dir = scratch("inert");
        let storage = Storage::counting();
        assert!(StorageFaultPlan::default().is_inert());
        write_via(&storage, &dir.join("out.json"), b"payload").unwrap();
        assert_eq!(fs::read(dir.join("out.json")).unwrap(), b"payload");
        // create + write + sync + rename + sync_dir
        assert_eq!(storage.ops_seen(), 5);
        assert_eq!(storage.fault_snapshot().total(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eio_fires_at_nth_matching_op_only() {
        let dir = scratch("eio");
        let plan = StorageFaultPlan::from_json_str(
            r#"{ "rules": [ { "op": "sync", "nth": 2, "kind": "eio" } ] }"#,
        )
        .unwrap();
        let storage = Storage::faulty_soft(plan);
        write_via(&storage, &dir.join("a.json"), b"a").unwrap();
        let err = write_via(&storage, &dir.join("b.json"), b"b").unwrap_err();
        assert!(err.to_string().contains("injected EIO"), "{err}");
        // Third sync is past the window again.
        write_via(&storage, &dir.join("c.json"), b"c").unwrap();
        assert_eq!(storage.fault_snapshot().eio, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_keeps_storage_full_error_kind() {
        let dir = scratch("enospc");
        let plan = StorageFaultPlan::from_json_str(
            r#"{ "rules": [ { "op": "write", "kind": "enospc", "count": 0 } ] }"#,
        )
        .unwrap();
        let storage = Storage::faulty_soft(plan);
        let err = write_via(&storage, &dir.join("full.json"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_truncates_but_reports_success() {
        let dir = scratch("torn");
        let plan = StorageFaultPlan::from_json_str(
            r#"{ "rules": [ { "op": "write", "kind": "torn_write", "keep_bytes": 3 } ] }"#,
        )
        .unwrap();
        let storage = Storage::faulty_soft(plan);
        // The protocol reports success end to end...
        write_via(&storage, &dir.join("torn.json"), b"0123456789").unwrap();
        // ...but the published file is truncated: exactly the damage a
        // power cut produces, and what fingerprint checks must catch.
        assert_eq!(fs::read(dir.join("torn.json")).unwrap(), b"012");
        assert_eq!(storage.fault_snapshot().torn_writes, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn soft_crash_kills_the_handle_permanently() {
        let dir = scratch("softcrash");
        // Crash at the 4th operation: create(1) write(2) sync(3) rename(4).
        let storage = Storage::faulty_soft(StorageFaultPlan::crash_at(4));
        let err = write_via(&storage, &dir.join("out.json"), b"payload").unwrap_err();
        assert!(err.to_string().contains("crashed"), "{err}");
        assert!(storage.is_dead());
        // Every later op fails too, like a dead process.
        let err = storage.read_to_string(&dir.join("out.json")).unwrap_err();
        assert!(err.to_string().contains("crashed"), "{err}");
        // The target was never published; the staging file is orphaned,
        // exactly as a real crash between create and rename leaves it.
        assert!(!dir.join("out.json").exists());
        assert!(dir.join("out.tmp").exists());
        assert_eq!(storage.fault_snapshot().crashes, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probability_draws_are_seed_deterministic() {
        let plan_text = r#"{ "seed": 42, "rules": [ { "op": "write", "kind": "eio", "count": 0, "probability": 0.5 } ] }"#;
        let outcomes = |storage: &Storage| -> Vec<bool> {
            let dir = scratch("prob");
            let hits = (0..32)
                .map(|i| write_via(storage, &dir.join(format!("f{i}.json")), b"x").is_err())
                .collect();
            let _ = fs::remove_dir_all(&dir);
            hits
        };
        let a = outcomes(&Storage::faulty_soft(
            StorageFaultPlan::from_json_str(plan_text).unwrap(),
        ));
        let b = outcomes(&Storage::faulty_soft(
            StorageFaultPlan::from_json_str(plan_text).unwrap(),
        ));
        assert_eq!(a, b);
        assert!(a.iter().any(|&hit| hit), "seed 42 never fired in 32 draws");
        assert!(
            !a.iter().all(|&hit| hit),
            "probability 0.5 fired every time"
        );
    }

    #[test]
    fn set_enabled_arms_and_disarms_the_plan() {
        let dir = scratch("arm");
        let plan = StorageFaultPlan::from_json_str(
            r#"{ "rules": [ { "op": "write", "kind": "enospc", "count": 0 } ] }"#,
        )
        .unwrap();
        let storage = Storage::faulty_soft(plan);
        storage.set_enabled(false);
        write_via(&storage, &dir.join("ok.json"), b"fine").unwrap();
        storage.set_enabled(true);
        assert!(write_via(&storage, &dir.join("no.json"), b"nope").is_err());
        storage.set_enabled(false);
        write_via(&storage, &dir.join("ok2.json"), b"fine again").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ambient_defaults_to_real_storage() {
        // Never install in tests (the global is shared across threads);
        // just check the default shape.
        let storage = ambient_storage();
        assert_eq!(storage.ops_seen(), 0);
        assert!(!storage.is_dead());
    }
}
