//! Shard watchdog: wall-clock deadline over per-shard sim-time progress.
//!
//! The sharded engine publishes each shard's progress (events popped,
//! current sim-time) into a [`ProgressCell`]. [`run`] polls those cells:
//! a shard that is `Running` but whose **sim-time has not advanced** for
//! longer than the deadline is cancelled (cooperatively — the shard loop
//! checks the cell's cancel flag between events) and reported as a
//! [`StallReport`]. The engine turns the report into a structured
//! `ShardError::Stalled`, so a wedged PoP degrades into the partial-
//! results path instead of hanging the whole run forever.
//!
//! The deadline is on *sim-time* progress, not events: a shard can pop
//! bookkeeping events without moving time, but a healthy shard always
//! advances its clock, and a deadlocked or livelocked one never does.
//!
//! Limitation: cancellation is cooperative. A shard thread wedged *inside*
//! one event (e.g. an infinite loop in a handler, rather than between
//! events) cannot be killed from safe Rust; the watchdog will still
//! report the stall, but the engine only regains control when the thread
//! next reaches an event-pop boundary.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use streamlab_obs::{ProgressCell, ShardState};

/// One heartbeat observation: a `Running` shard's progress as seen at a
/// watchdog poll tick. Wall-clock data — the engine turns these into
/// Chrome-trace counter events (`--trace-out`), never into the
/// deterministic metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatSample {
    /// Poll time, milliseconds after the epoch passed to [`run_observed`].
    pub at_ms: f64,
    /// Canonical shard index the sample describes.
    pub shard_index: usize,
    /// Events the shard had popped at the tick.
    pub events: u64,
    /// Sim-time (ns) the shard had reached at the tick.
    pub sim_ns: u64,
}

/// Watchdog tuning.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How long a `Running` shard's sim-time may sit still before the
    /// shard is declared stalled and cancelled.
    pub deadline: Duration,
    /// How often the cells are polled.
    pub poll: Duration,
}

impl WatchdogConfig {
    /// A config for `deadline` with the poll interval derived from it
    /// (deadline/8, clamped to 10–250 ms): frequent enough to catch a
    /// stall soon after the deadline, cheap enough to never matter.
    pub fn with_deadline(deadline: Duration) -> WatchdogConfig {
        let poll = (deadline / 8).clamp(Duration::from_millis(10), Duration::from_millis(250));
        WatchdogConfig { deadline, poll }
    }
}

/// One stalled shard, as observed when the deadline expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Canonical shard index in the engine's shard order.
    pub shard_index: usize,
    /// Events the shard had popped when it was declared stalled.
    pub events: u64,
    /// The sim-time (ns) the shard was stuck at.
    pub sim_ns: u64,
}

struct Watch {
    shard_index: usize,
    cell: Arc<ProgressCell>,
    last_sim_ns: u64,
    fresh_at: Instant,
    stalled: bool,
}

/// Watch `cells` (pairs of shard index and progress cell) until every
/// cell reaches `Done`, cancelling and reporting any that stall.
///
/// Runs on the calling thread; the engine spawns it inside the same
/// scope as the shard workers. It terminates on its own because workers
/// mark their cell `Done` in **every** outcome — completion, panic
/// (caught), or cancellation — so the scope never deadlocks joining it.
/// Returns the stalls in shard-index order.
pub fn run(cells: &[(usize, Arc<ProgressCell>)], cfg: WatchdogConfig) -> Vec<StallReport> {
    run_impl(cells, cfg, None)
}

/// [`run`], but every poll tick also appends one [`HeartbeatSample`] per
/// `Running` shard to `log`, timestamped against `epoch`. The log is a
/// shared `Mutex` because the watchdog runs on its own thread inside the
/// engine's worker scope; the engine drains it after the scope joins.
pub fn run_observed(
    cells: &[(usize, Arc<ProgressCell>)],
    cfg: WatchdogConfig,
    epoch: Instant,
    log: &Mutex<Vec<HeartbeatSample>>,
) -> Vec<StallReport> {
    run_impl(cells, cfg, Some((epoch, log)))
}

fn run_impl(
    cells: &[(usize, Arc<ProgressCell>)],
    cfg: WatchdogConfig,
    observer: Option<(Instant, &Mutex<Vec<HeartbeatSample>>)>,
) -> Vec<StallReport> {
    let start = Instant::now();
    let mut watches: Vec<Watch> = cells
        .iter()
        .map(|(shard_index, cell)| Watch {
            shard_index: *shard_index,
            cell: cell.clone(),
            last_sim_ns: 0,
            fresh_at: start,
            stalled: false,
        })
        .collect();
    let mut stalls = Vec::new();

    loop {
        let now = Instant::now();
        let mut all_done = true;
        let mut tick_samples: Vec<HeartbeatSample> = Vec::new();
        for w in &mut watches {
            let snap = w.cell.snapshot();
            if let (Some((epoch, _)), ShardState::Running) = (observer, snap.state) {
                tick_samples.push(HeartbeatSample {
                    at_ms: now.saturating_duration_since(epoch).as_secs_f64() * 1.0e3,
                    shard_index: w.shard_index,
                    events: snap.events,
                    sim_ns: snap.sim_ns,
                });
            }
            match snap.state {
                ShardState::Done => continue,
                ShardState::Pending => {
                    // Not picked up yet: queue delay is not a stall. Keep
                    // the freshness clock current so the deadline only
                    // starts once the shard actually runs.
                    all_done = false;
                    w.fresh_at = now;
                }
                ShardState::Running => {
                    all_done = false;
                    if snap.sim_ns != w.last_sim_ns {
                        w.last_sim_ns = snap.sim_ns;
                        w.fresh_at = now;
                    } else if !w.stalled && now.duration_since(w.fresh_at) >= cfg.deadline {
                        w.stalled = true;
                        w.cell.cancel();
                        stalls.push(StallReport {
                            shard_index: w.shard_index,
                            events: snap.events,
                            sim_ns: snap.sim_ns,
                        });
                    }
                }
            }
        }
        if let (Some((_, log)), false) = (observer, tick_samples.is_empty()) {
            log.lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(tick_samples);
        }
        if all_done {
            break;
        }
        std::thread::sleep(cfg.poll);
    }
    stalls.sort_unstable_by_key(|s| s.shard_index);
    stalls
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn fast_cfg() -> WatchdogConfig {
        WatchdogConfig {
            deadline: Duration::from_millis(60),
            poll: Duration::from_millis(5),
        }
    }

    #[test]
    fn poll_interval_derivation_clamps() {
        let c = WatchdogConfig::with_deadline(Duration::from_secs(30));
        assert_eq!(c.poll, Duration::from_millis(250));
        let c = WatchdogConfig::with_deadline(Duration::from_millis(16));
        assert_eq!(c.poll, Duration::from_millis(10));
        let c = WatchdogConfig::with_deadline(Duration::from_millis(800));
        assert_eq!(c.poll, Duration::from_millis(100));
    }

    #[test]
    fn beating_shard_is_never_stalled() {
        let cell = Arc::new(ProgressCell::new());
        let cells = vec![(0usize, cell.clone())];
        let stop = Arc::new(AtomicBool::new(false));
        let beater = {
            let (cell, stop) = (cell.clone(), stop.clone());
            std::thread::spawn(move || {
                cell.start();
                let mut t = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    t += 1;
                    cell.beat(t, t);
                    std::thread::sleep(Duration::from_millis(5));
                }
                cell.finish();
            })
        };
        let watcher = std::thread::spawn(move || run(&cells, fast_cfg()));
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        beater.join().unwrap();
        let stalls = watcher.join().unwrap();
        assert!(
            stalls.is_empty(),
            "healthy shard reported stalled: {stalls:?}"
        );
        assert!(!cell.cancelled());
    }

    #[test]
    fn observed_run_logs_heartbeats_for_running_shards() {
        let cell = Arc::new(ProgressCell::new());
        let cells = vec![(7usize, cell.clone())];
        let stop = Arc::new(AtomicBool::new(false));
        let beater = {
            let (cell, stop) = (cell.clone(), stop.clone());
            std::thread::spawn(move || {
                cell.start();
                let mut t = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    t += 1;
                    cell.beat(t, t * 1_000);
                    std::thread::sleep(Duration::from_millis(5));
                }
                cell.finish();
            })
        };
        let log = Mutex::new(Vec::new());
        let epoch = Instant::now();
        let stalls = {
            let stop = stop.clone();
            std::thread::scope(|s| {
                let log = &log;
                let h = s.spawn(move || run_observed(&cells, fast_cfg(), epoch, log));
                std::thread::sleep(Duration::from_millis(100));
                stop.store(true, Ordering::Relaxed);
                h.join().unwrap()
            })
        };
        beater.join().unwrap();
        assert!(stalls.is_empty());
        let samples = log.into_inner().unwrap();
        assert!(!samples.is_empty(), "no heartbeats logged");
        assert!(samples.iter().all(|s| s.shard_index == 7));
        assert!(samples.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn silent_shard_is_cancelled_and_reported() {
        let cell = Arc::new(ProgressCell::new());
        let cells = vec![(3usize, cell.clone())];
        let wedged = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                cell.start();
                cell.beat(42, 9_000);
                // Sim-time now sits still; a cooperative shard notices the
                // cancel flag and gives up.
                while !cell.cancelled() {
                    std::thread::sleep(Duration::from_millis(2));
                }
                cell.finish();
            })
        };
        let stalls = run(&cells, fast_cfg());
        wedged.join().unwrap();
        assert_eq!(
            stalls,
            vec![StallReport {
                shard_index: 3,
                events: 42,
                sim_ns: 9_000
            }]
        );
    }

    #[test]
    fn pending_shard_does_not_accumulate_deadline() {
        // A shard stuck in the queue for longer than the deadline must not
        // be reported: the clock starts when it starts running.
        let cell = Arc::new(ProgressCell::new());
        let cells = vec![(0usize, cell.clone())];
        let worker = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150)); // > deadline
                cell.start();
                for t in 1..=20u64 {
                    cell.beat(t, t * 1_000);
                    std::thread::sleep(Duration::from_millis(5));
                }
                cell.finish();
            })
        };
        let stalls = run(&cells, fast_cfg());
        worker.join().unwrap();
        assert!(stalls.is_empty(), "queued shard misreported: {stalls:?}");
    }

    #[test]
    fn each_stall_is_reported_once() {
        let a = Arc::new(ProgressCell::new());
        let b = Arc::new(ProgressCell::new());
        a.start();
        a.beat(1, 100);
        b.start();
        b.beat(2, 200);
        let cells = vec![(0usize, a.clone()), (1usize, b.clone())];
        let finisher = {
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                while !(a.cancelled() && b.cancelled()) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Linger past a few more polls to prove no duplicates.
                std::thread::sleep(Duration::from_millis(40));
                a.finish();
                b.finish();
            })
        };
        let stalls = run(&cells, fast_cfg());
        finisher.join().unwrap();
        assert_eq!(stalls.len(), 2);
        assert_eq!(stalls[0].shard_index, 0);
        assert_eq!(stalls[1].shard_index, 1);
    }
}
