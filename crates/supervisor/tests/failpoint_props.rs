//! Property tests over random [`StorageFaultPlan`]s: whatever mix of
//! EIO, ENOSPC, torn writes, lost fsyncs, slow IO, and crashes a plan
//! injects into the checkpoint protocol,
//!
//! 1. nothing ever panics — faults surface as `Err`, full stop;
//! 2. once the faults are cleared, resuming the damaged directory
//!    converges to output byte-identical to an uninterrupted reference
//!    run — or the damage is *reported* (skipped records, failed open),
//!    never silently merged into the result.
//!
//! Torn writes are the interesting adversary: they truncate the staging
//! file mid-write, so the atomic-rename protocol must ensure the torn
//! bytes never become visible under the final name. Lost fsyncs are
//! benign in this simulated world (no machine loses power here); they
//! exist to count how often real durability would have been at risk.

use proptest::prelude::*;
use serde::Value;
use serde_json::json;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use streamlab_supervisor::{
    FaultKind, FaultRule, Manifest, RunDir, Storage, StorageFaultPlan, StorageOp,
};

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "streamlab-failpoint-prop-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const SEEDS: [u64; 3] = [7, 8, 9];

fn manifest() -> Manifest {
    Manifest::new(
        "failpoint-props",
        SEEDS.to_vec(),
        json!({ "sessions": 64u64 }),
    )
}

fn payload(seed: u64) -> Value {
    json!({ "seed": seed, "metric": seed * 13 + 5 })
}

/// One checkpoint pass: create-or-open, record what's missing, reopen,
/// merge. Errors are data here, not failures.
fn run_protocol(storage: &Storage, root: &Path) -> Result<Vec<(u64, Value)>, String> {
    let run = match RunDir::open_in(storage.clone(), root) {
        Ok(run) => run,
        Err(_) => RunDir::create_in(storage.clone(), root, manifest())?,
    };
    let (done, skipped) = run.completed_seeds();
    if !skipped.is_empty() {
        return Err(format!("unusable records: {skipped:?}"));
    }
    for seed in SEEDS {
        if !done.contains_key(&seed) {
            run.record_seed(seed, payload(seed))?;
        }
    }
    let reopened = RunDir::open_in(storage.clone(), root)?;
    let (merged, skipped) = reopened.completed_seeds();
    if !skipped.is_empty() {
        return Err(format!("unusable records after reopen: {skipped:?}"));
    }
    Ok(merged.into_iter().collect())
}

fn decode_op(raw: u8) -> StorageOp {
    match raw % 8 {
        0 => StorageOp::Any,
        1 => StorageOp::Create,
        2 => StorageOp::Write,
        3 => StorageOp::Sync,
        4 => StorageOp::Rename,
        5 => StorageOp::SyncDir,
        6 => StorageOp::Read,
        _ => StorageOp::Remove,
    }
}

fn decode_kind(raw: u8, keep: u8) -> FaultKind {
    match raw % 6 {
        0 => FaultKind::Eio,
        1 => FaultKind::Enospc,
        2 => FaultKind::TornWrite {
            keep_bytes: keep as u64,
        },
        3 => FaultKind::LostFsync,
        4 => FaultKind::SlowIo { delay_ms: 1 },
        _ => FaultKind::Crash,
    }
}

fn decode_path(raw: u8) -> String {
    match raw % 4 {
        0 => String::new(),
        1 => "manifest".into(),
        2 => "seed".into(),
        _ => ".tmp.".into(),
    }
}

/// (op, path, nth, count, probability%, kind, keep_bytes) tuples decode
/// into one rule each — proptest shrinks toward fewer, simpler rules.
type RawRule = (u8, u8, u8, u8, u8, u8, u8);

fn raw_rule() -> impl Strategy<Value = RawRule> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
        any::<u8>(),
    )
}

fn decode_plan(seed: u64, raw: &[RawRule]) -> StorageFaultPlan {
    let rules = raw
        .iter()
        .map(|&(op, path, nth, count, prob, kind, keep)| FaultRule {
            op: decode_op(op),
            path_contains: decode_path(path),
            nth: u64::from(nth % 24) + 1,
            count: u64::from(count % 4), // 0 = forever
            probability: f64::from(prob % 101) / 100.0,
            kind: decode_kind(kind, keep),
        })
        .collect();
    let plan = StorageFaultPlan { seed, rules };
    plan.validate().expect("generated plan must be valid");
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_fault_plans_never_corrupt_a_checkpoint(
        seed in any::<u64>(),
        raw in proptest::collection::vec(raw_rule(), 1..5),
    ) {
        let plan = decode_plan(seed, &raw);
        let root = scratch();

        // Reference: the same protocol, no faults.
        let ref_root = scratch();
        let reference = run_protocol(&Storage::real(), &ref_root)
            .expect("fault-free reference run");

        // Property 1: the faulty pass must not panic. Crash rules kill
        // the handle (soft), everything else surfaces as Err — both fine.
        let faulty = Storage::faulty_soft(plan);
        let first = run_protocol(&faulty, &root);

        // Property 2: clearing the faults and resuming converges to the
        // reference — damage is recoverable or reported, never silent.
        let resumed = run_protocol(&Storage::real(), &root);
        match resumed {
            Ok(merged) => prop_assert_eq!(
                merged,
                reference,
                "resume after faults (first pass: {:?}) must be byte-identical",
                first.as_ref().map(|_| "ok").map_err(|e| e.clone())
            ),
            // A clean run dir can always be recreated, so the only
            // acceptable failure is an explicitly reported one.
            Err(e) => prop_assert!(
                e.contains("unusable records") || e.contains("manifest"),
                "resume failed without naming the damage: {}",
                e
            ),
        }

        let _ = fs::remove_dir_all(&root);
        let _ = fs::remove_dir_all(&ref_root);
    }

    /// Fault *counters* are deterministic: the same plan over the same
    /// protocol injects the same faults, hit for hit — the property the
    /// whole `--storage-faults` reproducibility story rests on.
    #[test]
    fn identical_plans_inject_identically(
        seed in any::<u64>(),
        raw in proptest::collection::vec(raw_rule(), 1..4),
    ) {
        let root_a = scratch();
        let root_b = scratch();
        let a = Storage::faulty_soft(decode_plan(seed, &raw));
        let b = Storage::faulty_soft(decode_plan(seed, &raw));
        let out_a = run_protocol(&a, &root_a);
        let out_b = run_protocol(&b, &root_b);
        prop_assert_eq!(out_a.is_ok(), out_b.is_ok());
        prop_assert_eq!(a.fault_snapshot(), b.fault_snapshot());
        prop_assert_eq!(a.ops_seen(), b.ops_seen());
        let _ = fs::remove_dir_all(&root_a);
        let _ = fs::remove_dir_all(&root_b);
    }
}
