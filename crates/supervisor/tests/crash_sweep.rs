//! The FoundationDB-style systematic crash-point sweep over the
//! checkpoint protocol: enumerate every storage operation a full sweep
//! performs (create run dir → record every seed → reopen and merge),
//! then re-run the protocol once per operation with a crash injected at
//! exactly that point, and assert the recovery invariants after each:
//!
//! 1. no partially visible file — everything visible (non-staging)
//!    parses and fingerprint-verifies;
//! 2. resume completes and the directory ends byte-identical to an
//!    uninterrupted reference run (or any damage was cleanly reported
//!    as a skipped record, never silently merged);
//! 3. reopening sweeps all `.tmp.` staging residue.
//!
//! The crash is the *soft* variant ([`Storage::faulty_soft`]): the
//! storage handle goes permanently dead instead of `abort()`ing the
//! process, so one test process can sweep every failpoint in turn.

use serde::{Deserialize, Value};
use serde_json::json;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use streamlab_supervisor::{is_staging_name, Manifest, RunDir, Storage, StorageFaultPlan};

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("streamlab-crash-sweep-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

const SEEDS: [u64; 3] = [41, 42, 43];

fn manifest() -> Manifest {
    Manifest::new(
        "crash-sweep",
        SEEDS.to_vec(),
        json!({ "sessions": 100u64, "scale": "tiny" }),
    )
}

fn payload(seed: u64) -> Value {
    json!({ "seed": seed, "metric": seed * 7 + 1 })
}

/// One full pass of the checkpoint protocol under `storage`: open (or
/// create) the run dir, record every seed not already durable, reopen,
/// and return the merged per-seed payloads. Every step may fail when a
/// fault plan is armed — the caller decides what an `Err` means.
fn run_protocol(storage: &Storage, root: &Path) -> Result<Vec<(u64, Value)>, String> {
    let run = match RunDir::open_in(storage.clone(), root) {
        Ok(run) => run,
        // Nothing durable yet (or the manifest never landed): start over.
        Err(_) => RunDir::create_in(storage.clone(), root, manifest())?,
    };
    let (done, skipped) = run.completed_seeds();
    if !skipped.is_empty() {
        return Err(format!("unusable records: {skipped:?}"));
    }
    for seed in SEEDS {
        if !done.contains_key(&seed) {
            run.record_seed(seed, payload(seed))?;
        }
    }
    // Reopen: the merge a resuming sweep would perform.
    let reopened = RunDir::open_in(storage.clone(), root)?;
    let (merged, skipped) = reopened.completed_seeds();
    if !skipped.is_empty() {
        return Err(format!("unusable records after reopen: {skipped:?}"));
    }
    Ok(merged.into_iter().collect())
}

/// Every durable (non-staging) file under the run dir, relative name →
/// bytes, for byte-identity comparison against the reference.
fn visible_files(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for sub in ["", "seeds"] {
        let dir = if sub.is_empty() {
            root.to_owned()
        } else {
            root.join(sub)
        };
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if is_staging_name(&name) {
                continue;
            }
            let rel = if sub.is_empty() {
                name
            } else {
                format!("{sub}/{name}")
            };
            out.push((rel, fs::read(entry.path()).expect("read visible file")));
        }
    }
    out.sort();
    out
}

/// Invariant 1: everything visible after a crash is *complete* — it
/// parses as JSON, and the manifest additionally fingerprint-verifies.
fn assert_no_partial_files(root: &Path, at: u64) {
    for (name, bytes) in visible_files(root) {
        let text = String::from_utf8(bytes)
            .unwrap_or_else(|_| panic!("crash at op {at}: {name} is not utf-8"));
        let value = Value::parse_json(&text)
            .unwrap_or_else(|e| panic!("crash at op {at}: {name} is torn/partial: {e}"));
        if name == "manifest.json" {
            let m = Manifest::from_value(&value)
                .unwrap_or_else(|e| panic!("crash at op {at}: bad manifest shape: {e}"));
            m.verify()
                .unwrap_or_else(|e| panic!("crash at op {at}: {e}"));
        }
    }
}

#[test]
fn crash_at_every_failpoint_recovers_to_byte_identical_state() {
    // Reference: the protocol uninterrupted, on a counting handle — this
    // both produces the reference directory and enumerates the total
    // number of storage operations a clean pass performs.
    let ref_root = scratch();
    let counting = Storage::counting();
    let reference_merge = run_protocol(&counting, &ref_root).expect("reference run");
    let total_ops = counting.ops_seen();
    let reference_files = visible_files(&ref_root);
    assert!(
        total_ops >= 10,
        "the protocol should exercise many failpoints, saw {total_ops}"
    );
    assert_eq!(reference_merge.len(), SEEDS.len());

    for at in 1..=total_ops {
        let root = scratch();
        let storage = Storage::faulty_soft(StorageFaultPlan::crash_at(at));
        let crashed = run_protocol(&storage, &root);
        if crashed.is_ok() {
            // The crash landed on an op the failing path never reached
            // (ops_seen < at can't happen on the same protocol, but the
            // final reopen may finish before op `at` when earlier ops
            // were reads that a fresh dir skips). Either way the result
            // must already be correct.
            assert!(storage.is_dead() || storage.ops_seen() < at);
        }

        // Invariant 1: whatever the crash left behind is never partial.
        assert_no_partial_files(&root, at);

        // Invariant 2: a restart with healthy storage resumes to the
        // exact reference state — same merged payloads, same bytes.
        let resumed = run_protocol(&Storage::real(), &root)
            .unwrap_or_else(|e| panic!("crash at op {at}: resume failed: {e}"));
        assert_eq!(
            resumed, reference_merge,
            "crash at op {at}: merged payloads differ after resume"
        );
        assert_eq!(
            visible_files(&root),
            reference_files,
            "crash at op {at}: directory not byte-identical after resume"
        );

        // Invariant 3: reopening swept every staging orphan.
        for sub in ["", "seeds"] {
            let dir = if sub.is_empty() {
                root.clone()
            } else {
                root.join(sub)
            };
            for entry in fs::read_dir(&dir).expect("read swept dir").flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                assert!(
                    !is_staging_name(&name),
                    "crash at op {at}: staging residue {sub}/{name} survived reopen"
                );
            }
        }

        let _ = fs::remove_dir_all(&root);
    }
    let _ = fs::remove_dir_all(&ref_root);
}

/// The sweep above covers single crashes; this covers a crash *during
/// recovery from a crash*: kill the first pass midway, kill the resume
/// at every point too, then finish with healthy storage. The final state
/// must still be byte-identical to the reference.
#[test]
fn crash_during_recovery_still_converges() {
    let ref_root = scratch();
    let reference_merge = run_protocol(&Storage::real(), &ref_root).expect("reference run");
    let reference_files = visible_files(&ref_root);

    // First crash lands mid-protocol (after the manifest, during seed
    // records); enumerate the recovery pass from there.
    let probe_root = scratch();
    let first = Storage::faulty_soft(StorageFaultPlan::crash_at(12));
    let _ = run_protocol(&first, &probe_root);
    let counting = Storage::counting();
    let _ = run_protocol(&counting, &probe_root).expect("probe recovery");
    let recovery_ops = counting.ops_seen();
    let _ = fs::remove_dir_all(&probe_root);

    for at in 1..=recovery_ops {
        let root = scratch();
        let crash = Storage::faulty_soft(StorageFaultPlan::crash_at(12));
        let _ = run_protocol(&crash, &root);
        let crash_again = Storage::faulty_soft(StorageFaultPlan::crash_at(at));
        let _ = run_protocol(&crash_again, &root);
        assert_no_partial_files(&root, at);
        let resumed = run_protocol(&Storage::real(), &root)
            .unwrap_or_else(|e| panic!("double crash at op {at}: resume failed: {e}"));
        assert_eq!(resumed, reference_merge, "double crash at op {at}");
        assert_eq!(
            visible_files(&root),
            reference_files,
            "double crash at op {at}: directory differs"
        );
        let _ = fs::remove_dir_all(&root);
    }
    let _ = fs::remove_dir_all(&ref_root);
}
