//! Property-based tests for the cache layer: under arbitrary request
//! sequences, every policy preserves the capacity and accounting
//! invariants.

use proptest::prelude::*;
use streamlab_cdn::{ByteCache, EvictionPolicy, ObjectKey, TieredCache, TieredCacheConfig};
use streamlab_workload::{ChunkIndex, VideoId};

fn key(v: u8, c: u8) -> ObjectKey {
    ObjectKey {
        video: VideoId(u64::from(v)),
        chunk: ChunkIndex(u32::from(c)),
        bitrate_kbps: 1050,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u8, u8),
    Insert(u8, u8, u64),
    Remove(u8, u8),
    Pin(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..8).prop_map(|(v, c)| Op::Lookup(v % 32, c)),
        (any::<u8>(), 0u8..8, 1u64..5_000).prop_map(|(v, c, s)| Op::Insert(v % 32, c, s)),
        (any::<u8>(), 0u8..8).prop_map(|(v, c)| Op::Remove(v % 32, c)),
        (any::<u8>(), 0u8..8).prop_map(|(v, c)| Op::Pin(v % 32, c)),
    ]
}

fn policies() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![
        Just(EvictionPolicy::Lru),
        Just(EvictionPolicy::PerfectLfu),
        Just(EvictionPolicy::GdSize),
        Just(EvictionPolicy::Fifo),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_invariants_under_arbitrary_ops(
        policy in policies(),
        capacity in 1_000u64..50_000,
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        let mut cache = ByteCache::new(policy, capacity);
        let mut inserted_sizes: std::collections::HashMap<ObjectKey, u64> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Lookup(v, c) => {
                    let hit = cache.lookup(key(v, c));
                    prop_assert_eq!(hit, inserted_sizes.contains_key(&key(v, c)) && cache.contains(key(v, c)));
                }
                Op::Insert(v, c, s) => {
                    let evicted = cache.insert(key(v, c), s);
                    for (k, size) in &evicted {
                        // Evicted sizes must match what was inserted.
                        prop_assert_eq!(inserted_sizes.get(k), Some(size));
                        inserted_sizes.remove(k);
                    }
                    if cache.contains(key(v, c)) {
                        inserted_sizes.entry(key(v, c)).or_insert(s);
                    }
                }
                Op::Remove(v, c) => {
                    cache.remove(key(v, c));
                    inserted_sizes.remove(&key(v, c));
                }
                Op::Pin(v, c) => cache.pin(key(v, c)),
            }
            // The core invariants, after every operation:
            prop_assert!(cache.used() <= cache.capacity(), "over capacity");
            let tracked: u64 = inserted_sizes
                .iter()
                .filter(|(k, _)| cache.contains(**k))
                .map(|(_, s)| *s)
                .sum();
            prop_assert_eq!(cache.used(), tracked, "byte accounting drifted");
        }
        let (hits, misses) = cache.stats();
        prop_assert!(hits + misses <= 300);
    }

    #[test]
    fn tiered_cache_never_loses_track(
        policy in policies(),
        ops in proptest::collection::vec((any::<u8>(), 0u8..6, 500u64..4_000), 1..200)
    ) {
        let mut t = TieredCache::new(TieredCacheConfig {
            ram_bytes: 10_000,
            disk_bytes: 40_000,
            policy,
            admission: streamlab_cdn::AdmissionPolicy::Always,
        });
        for (v, c, s) in ops {
            let k = key(v % 16, c);
            let status = t.fetch(k, s);
            if !status.is_hit() {
                t.fill(k, s);
            }
            prop_assert!(t.ram().used() <= t.ram().capacity());
            prop_assert!(t.disk().used() <= t.disk().capacity());
            // After a fill the object is somewhere (it fits in both tiers).
            prop_assert!(t.contains(k));
        }
    }

    #[test]
    fn fetch_miss_then_fill_then_hit(policy in policies(), v in any::<u8>(), s in 100u64..5_000) {
        let mut t = TieredCache::new(TieredCacheConfig {
            ram_bytes: 100_000,
            disk_bytes: 100_000,
            policy,
            admission: streamlab_cdn::AdmissionPolicy::Always,
        });
        let k = key(v, 0);
        prop_assert!(!t.fetch(k, s).is_hit());
        t.fill(k, s);
        prop_assert!(t.fetch(k, s).is_hit());
    }
}
