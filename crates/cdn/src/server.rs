//! One CDN server: tiered cache + ATS serve path + load tracking.

use crate::ats::{AtsConfig, AtsTimings, BackendConfig, CacheStatus, ServeOutcome};
use crate::cache::{ObjectKey, TieredCache, TieredCacheConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use streamlab_faults::ServerFaultTimeline;
use streamlab_obs::{
    CacheLookup, CacheTier, Meta, NoopSubscriber, RetryTimerFired, ServerRestarted, Subscriber,
};
use streamlab_sim::{RngStream, SimDuration, SimTime};
use streamlab_workload::{PopId, ServerId};

impl From<CacheStatus> for CacheTier {
    fn from(s: CacheStatus) -> CacheTier {
        match s {
            CacheStatus::RamHit => CacheTier::Ram,
            CacheStatus::DiskHit => CacheTier::Disk,
            CacheStatus::Miss => CacheTier::Miss,
        }
    }
}

/// Per-server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerConfig {
    /// Cache tier sizes and policy.
    pub cache: TieredCacheConfig,
    /// Serve-path latency parameters.
    pub ats: AtsConfig,
    /// Backend latency parameters.
    pub backend: BackendConfig,
}

/// Aggregate serving statistics, used by the §4.1.3 load-vs-performance
/// analysis and the fleet report.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Chunks served.
    pub requests: u64,
    /// RAM hits.
    pub ram_hits: u64,
    /// Disk hits.
    pub disk_hits: u64,
    /// Backend misses.
    pub misses: u64,
    /// Sum of total server latency (for means), seconds.
    pub total_latency_s: f64,
    /// Chunks on which the open-read retry timer fired.
    pub retry_fired: u64,
    /// Bytes served.
    pub bytes: u64,
}

impl ServerStats {
    /// Mean total server latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_s * 1.0e3 / self.requests as f64
        }
    }

    /// Cache miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }
}

/// A CDN server machine.
#[derive(Debug)]
pub struct CdnServer {
    id: ServerId,
    pop: PopId,
    cache: TieredCache,
    timings: AtsTimings,
    rng: RngStream,
    /// Arrival times of recent requests (sliding 1 s window), the load
    /// proxy: "We estimated load as number of parallel HTTP requests,
    /// sessions, or bytes served per second" (§4.1 footnote).
    recent: VecDeque<SimTime>,
    stats: ServerStats,
    /// Injected fault timeline (empty by default; queried lazily on the
    /// serve path so unfaulted runs pay one `is_empty`-style check).
    faults: ServerFaultTimeline,
}

impl CdnServer {
    /// Build a server.
    pub fn new(id: ServerId, pop: PopId, cfg: ServerConfig, rng: RngStream) -> Self {
        CdnServer {
            id,
            pop,
            cache: TieredCache::new(cfg.cache),
            timings: AtsTimings::new(cfg.ats, cfg.backend),
            rng,
            recent: VecDeque::new(),
            stats: ServerStats::default(),
            faults: ServerFaultTimeline::default(),
        }
    }

    /// Install this server's compiled fault timeline (restarts, outage
    /// windows, backend slowdowns).
    pub fn install_fault_timeline(&mut self, timeline: ServerFaultTimeline) {
        self.faults = timeline;
    }

    /// True when the server is inside an injected outage window at `now`
    /// and rejects new requests.
    pub fn is_out(&self, now: SimTime) -> bool {
        self.faults.is_out(now)
    }

    /// Server identity.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Hosting PoP.
    pub fn pop(&self) -> PopId {
        self.pop
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Direct cache access (warming, inspection).
    pub fn cache_mut(&mut self) -> &mut TieredCache {
        &mut self.cache
    }

    /// Shared cache view.
    pub fn cache(&self) -> &TieredCache {
        &self.cache
    }

    /// Requests in the last second ending at `now` (load proxy).
    pub fn load(&self, now: SimTime) -> u32 {
        let window = SimDuration::from_secs(1);
        self.recent
            .iter()
            .filter(|&&t| now.duration_since(t) <= window)
            .count() as u32
    }

    fn note_request(&mut self, now: SimTime) {
        let window = SimDuration::from_secs(1);
        while let Some(&front) = self.recent.front() {
            if now.duration_since(front) > window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        self.recent.push_back(now);
    }

    /// Serve one chunk request arriving at `now`.
    ///
    /// `rank` is the video's popularity rank (drives cold-disk seek cost);
    /// `prefetch` lists `(key, size)` pairs of subsequent chunks that
    /// should be pulled into the cache in the background when this request
    /// misses (the §4.1.2 prefetch take-away; empty when disabled).
    pub fn serve(
        &mut self,
        key: ObjectKey,
        size: u64,
        rank: usize,
        now: SimTime,
        prefetch: &[(ObjectKey, u64)],
    ) -> ServeOutcome {
        self.serve_with(key, size, rank, now, prefetch, None, &mut NoopSubscriber)
    }

    /// [`serve`](Self::serve), emitting observability events to `sub`.
    ///
    /// `session` attributes the events to a session id (None for fleet- or
    /// warmup-level requests). With [`NoopSubscriber`] the probes
    /// monomorphize to nothing, so the plain `serve` path pays no cost.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_with<S: Subscriber>(
        &mut self,
        key: ObjectKey,
        size: u64,
        rank: usize,
        now: SimTime,
        prefetch: &[(ObjectKey, u64)],
        session: Option<u64>,
        sub: &mut S,
    ) -> ServeOutcome {
        // Apply any injected restarts due before this request: the RAM
        // tier is wiped once (the disk tier stays warm) and the request
        // proceeds against the cold memory cache. Applied lazily at serve
        // time, the wipe is a pure function of the server's request
        // stream, which is identical at every thread count.
        let due_restarts = self.faults.take_due_restarts(now);
        if due_restarts > 0 {
            self.cache.wipe_ram();
            let meta = Meta::fleet(now);
            for _ in 0..due_restarts {
                sub.on_server_restarted(
                    &meta,
                    &ServerRestarted {
                        server: self.id.raw(),
                    },
                );
            }
        }

        self.note_request(now);
        let concurrent = self.recent.len() as u32;

        let d_wait = self.timings.sample_wait(concurrent, &mut self.rng);
        let d_open = self.timings.sample_open(&mut self.rng);
        let status = self.cache.fetch(key, size);
        let (mut d_read, mut d_backend, retry_fired) =
            self.timings.sample_read(status, rank, &mut self.rng);
        if status == CacheStatus::Miss {
            // Injected origin slowdown: backend fetches stretch by the
            // window's factor, lengthening the read the response waits on.
            let factor = self.faults.slowdown_factor(now);
            if factor > 1.0 {
                let extra = d_backend.mul_f64(factor - 1.0);
                d_read += extra;
                d_backend += extra;
            }
        }
        if status == CacheStatus::Miss {
            // Admission gate: one-hit wonders may not be worth a slot.
            if self.cache.should_admit(key, &mut self.rng) {
                self.cache.fill(key, size);
            }
            // Background prefetch of the session's subsequent chunks: they
            // land in cache without delaying this response. Prefetch
            // deliberately bypasses admission — it exists precisely to
            // commit to the rest of an already-requested video.
            for &(k, s) in prefetch {
                if !self.cache.contains(k) {
                    self.cache.fill(k, s);
                }
            }
        }

        self.stats.requests += 1;
        self.stats.bytes += size;
        match status {
            CacheStatus::RamHit => self.stats.ram_hits += 1,
            CacheStatus::DiskHit => self.stats.disk_hits += 1,
            CacheStatus::Miss => self.stats.misses += 1,
        }
        if retry_fired {
            self.stats.retry_fired += 1;
        }
        let meta = match session {
            Some(id) => Meta::session(now, id),
            None => Meta::fleet(now),
        };
        sub.on_cache_lookup(
            &meta,
            &CacheLookup {
                tier: status.into(),
                manifest: key.is_manifest(),
                bytes: size,
            },
        );
        if retry_fired {
            sub.on_retry_timer_fired(&meta, &RetryTimerFired {});
        }
        let outcome = ServeOutcome {
            d_wait,
            d_open,
            d_read,
            d_backend,
            status,
            retry_fired,
        };
        self.stats.total_latency_s += outcome.total().as_secs_f64();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_workload::{ChunkIndex, VideoId};

    fn key(v: u64, c: u32) -> ObjectKey {
        ObjectKey {
            video: VideoId(v),
            chunk: ChunkIndex(c),
            bitrate_kbps: 1050,
        }
    }

    fn server() -> CdnServer {
        CdnServer::new(
            ServerId(0),
            PopId(0),
            ServerConfig::default(),
            RngStream::new(5, "server-test"),
        )
    }

    const MB: u64 = 1024 * 1024;

    #[test]
    fn miss_then_hit_sequence() {
        let mut s = server();
        let o1 = s.serve(key(1, 0), MB, 10, SimTime::from_secs(1), &[]);
        assert_eq!(o1.status, CacheStatus::Miss);
        assert!(o1.retry_fired);
        assert!(o1.d_backend > SimDuration::ZERO);
        let o2 = s.serve(key(1, 0), MB, 10, SimTime::from_secs(2), &[]);
        assert_eq!(o2.status, CacheStatus::RamHit);
        assert!(o2.d_backend.is_zero());
        assert!(o2.total() < o1.total());
    }

    #[test]
    fn stats_account_every_request() {
        let mut s = server();
        for i in 0..10 {
            s.serve(key(i, 0), MB, 10, SimTime::from_secs(i), &[]);
        }
        for i in 0..5 {
            s.serve(key(i, 0), MB, 10, SimTime::from_secs(20 + i), &[]);
        }
        let st = s.stats();
        assert_eq!(st.requests, 15);
        assert_eq!(st.misses, 10);
        assert_eq!(st.ram_hits + st.disk_hits, 5);
        assert_eq!(st.bytes, 15 * MB);
        assert!(st.mean_latency_ms() > 0.0);
        assert!((st.miss_ratio() - 10.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_warms_subsequent_chunks() {
        let mut s = server();
        let next: Vec<(ObjectKey, u64)> = (1..4).map(|c| (key(1, c), MB)).collect();
        let o = s.serve(key(1, 0), MB, 10, SimTime::from_secs(1), &next);
        assert_eq!(o.status, CacheStatus::Miss);
        // The session's next chunks now hit.
        for c in 1..4 {
            let o = s.serve(key(1, c), MB, 10, SimTime::from_secs(1 + u64::from(c)), &[]);
            assert!(o.status.is_hit(), "chunk {c} should be prefetched");
        }
    }

    #[test]
    fn load_window_slides() {
        let mut s = server();
        for i in 0..20 {
            s.serve(key(i, 0), MB, 10, SimTime::from_millis(100 * i), &[]);
        }
        // At t=2.0 s only requests within [1.0, 2.0] count: t=1.0..1.9.
        assert_eq!(s.load(SimTime::from_secs(2)), 10);
        assert_eq!(s.load(SimTime::from_secs(60)), 0);
    }

    #[test]
    fn second_hit_admission_defers_caching() {
        let mut s = CdnServer::new(
            ServerId(0),
            PopId(0),
            ServerConfig {
                cache: TieredCacheConfig {
                    admission: crate::cache::AdmissionPolicy::OnSecondRequest,
                    ..TieredCacheConfig::default()
                },
                ..ServerConfig::default()
            },
            RngStream::new(6, "server-adm"),
        );
        // First request: miss, NOT cached.
        let o1 = s.serve(key(1, 0), MB, 10, SimTime::from_secs(1), &[]);
        assert_eq!(o1.status, CacheStatus::Miss);
        // Second request: still a miss (first one was not admitted)...
        let o2 = s.serve(key(1, 0), MB, 10, SimTime::from_secs(2), &[]);
        assert_eq!(o2.status, CacheStatus::Miss);
        // ...but now it is cached: third request hits.
        let o3 = s.serve(key(1, 0), MB, 10, SimTime::from_secs(3), &[]);
        assert!(o3.status.is_hit());
    }

    #[test]
    fn serve_with_emits_lookup_and_retry_events() {
        use streamlab_obs::MetricsRecorder;
        let mut s = server();
        let mut rec = MetricsRecorder::new(false);
        // Miss, then RAM hit, then a manifest miss.
        s.serve_with(
            key(1, 0),
            MB,
            10,
            SimTime::from_secs(1),
            &[],
            Some(7),
            &mut rec,
        );
        s.serve_with(
            key(1, 0),
            MB,
            10,
            SimTime::from_secs(2),
            &[],
            Some(7),
            &mut rec,
        );
        s.serve_with(
            ObjectKey::manifest(VideoId(1)),
            1024,
            10,
            SimTime::from_secs(3),
            &[],
            None,
            &mut rec,
        );
        let m = rec.metrics();
        assert_eq!(m.chunk_misses.get(), 1);
        assert_eq!(m.chunk_ram_hits.get(), 1);
        assert_eq!(m.manifest_requests.get(), 1);
        assert_eq!(m.bytes_served.get(), 2 * MB + 1024);
        // Event counters mirror the server's own stats.
        let st = s.stats();
        assert_eq!(
            m.retry_timer_fires.get(),
            st.retry_fired,
            "subscriber retry count must match ServerStats"
        );
        // Churn: the chunk miss filled both tiers; the manifest may too.
        assert!(s.cache().churn().fills >= 1);
    }

    #[test]
    fn restart_wipes_ram_but_leaves_disk_warm() {
        let mut s = server();
        s.serve(key(1, 0), MB, 10, SimTime::from_secs(1), &[]); // miss → fills
        let o = s.serve(key(1, 0), MB, 10, SimTime::from_secs(2), &[]);
        assert_eq!(o.status, CacheStatus::RamHit);
        s.install_fault_timeline(ServerFaultTimeline::new(
            vec![SimTime::from_secs(5)],
            Vec::new(),
            Vec::new(),
        ));
        // First request after the restart: RAM is cold, disk still warm.
        let o = s.serve(key(1, 0), MB, 10, SimTime::from_secs(6), &[]);
        assert_eq!(o.status, CacheStatus::DiskHit);
        // The promoted object is back in RAM afterwards.
        let o = s.serve(key(1, 0), MB, 10, SimTime::from_secs(7), &[]);
        assert_eq!(o.status, CacheStatus::RamHit);
    }

    #[test]
    fn restart_emits_event_through_subscriber() {
        use streamlab_obs::MetricsRecorder;
        let mut s = server();
        s.install_fault_timeline(ServerFaultTimeline::new(
            vec![SimTime::from_secs(2)],
            Vec::new(),
            Vec::new(),
        ));
        let mut rec = MetricsRecorder::new(false);
        s.serve_with(
            key(1, 0),
            MB,
            10,
            SimTime::from_secs(1),
            &[],
            None,
            &mut rec,
        );
        assert_eq!(rec.metrics().server_restarts.get(), 0);
        s.serve_with(
            key(1, 0),
            MB,
            10,
            SimTime::from_secs(3),
            &[],
            None,
            &mut rec,
        );
        assert_eq!(rec.metrics().server_restarts.get(), 1);
    }

    #[test]
    fn outage_window_reports_is_out() {
        let mut s = server();
        assert!(!s.is_out(SimTime::from_secs(15)));
        s.install_fault_timeline(ServerFaultTimeline::new(
            Vec::new(),
            vec![(SimTime::from_secs(10), SimTime::from_secs(20))],
            Vec::new(),
        ));
        assert!(s.is_out(SimTime::from_secs(10)));
        assert!(s.is_out(SimTime::from_secs(19)));
        assert!(!s.is_out(SimTime::from_secs(20)));
    }

    #[test]
    fn backend_slowdown_stretches_miss_latency() {
        let mut plain = server();
        let mut slowed = server(); // identical seed → identical samples
        slowed.install_fault_timeline(ServerFaultTimeline::new(
            Vec::new(),
            Vec::new(),
            vec![(SimTime::ZERO, SimTime::from_secs(100), 5.0)],
        ));
        let a = plain.serve(key(1, 0), MB, 10, SimTime::from_secs(1), &[]);
        let b = slowed.serve(key(1, 0), MB, 10, SimTime::from_secs(1), &[]);
        assert_eq!(a.status, CacheStatus::Miss);
        assert_eq!(b.status, CacheStatus::Miss);
        let ratio = b.d_backend.as_secs_f64() / a.d_backend.as_secs_f64();
        assert!((ratio - 5.0).abs() < 1e-6, "ratio {ratio}");
        assert!(b.d_read > a.d_read);
        // Hits are untouched by a backend slowdown.
        let a2 = plain.serve(key(1, 0), MB, 10, SimTime::from_secs(2), &[]);
        let b2 = slowed.serve(key(1, 0), MB, 10, SimTime::from_secs(2), &[]);
        assert!(a2.status.is_hit() && b2.status.is_hit());
        assert_eq!(a2.d_backend, b2.d_backend);
    }

    #[test]
    fn deterministic_serving() {
        let run = || {
            let mut s = server();
            (0..20)
                .map(|i| {
                    s.serve(key(i % 7, 0), MB, 10, SimTime::from_secs(i), &[])
                        .total()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
