//! The ATS-style request serve path and its latency anatomy.
//!
//! Per-chunk server-side latency decomposes into (§2.1):
//!
//! * `D_wait` — the HTTP request's time in the accept queue before a
//!   threadpool worker reads its headers;
//! * `D_open` — from header read to the *first* attempt to open the cache
//!   object, regardless of cache status;
//! * `D_read` — time to produce the chunk's first byte: a RAM read, or —
//!   after the **asynchronous open-read retry timer** (a fixed 10 ms in
//!   ATS, the paper's Finding CDN-1 and its footnote) — a disk read or the
//!   wait for the backend's first byte.
//!
//! The paper's Fig. 5 shows the resulting `D_read` distribution split into
//! two nearly identical halves separated by ~10 ms (RAM vs not-RAM), with
//! total-miss latency an order of magnitude above total-hit (medians 80 ms
//! vs 2 ms).

use serde::{Deserialize, Serialize};
use streamlab_sim::dist::{LogNormal, Sample};
use streamlab_sim::{RngStream, SimDuration};

/// Where a requested object was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheStatus {
    /// Served from the main-memory cache.
    RamHit,
    /// Served from the local disk cache (pays the retry timer + seek).
    DiskHit,
    /// Not cached anywhere; fetched from the backend service.
    Miss,
}

impl CacheStatus {
    /// "Hit" in the paper's sense: served without contacting the backend.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheStatus::Miss)
    }
}

/// Latency parameters of the serve path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtsConfig {
    /// The asynchronous open-read retry timer (ATS default 10 ms).
    pub retry_timer: SimDuration,
    /// Median of the queue-wait distribution under no contention, ms.
    pub wait_median_ms: f64,
    /// Extra queue wait per outstanding request beyond the threadpool, ms.
    pub wait_per_backlog_ms: f64,
    /// Worker threads per server (requests beyond this queue up).
    pub threads: u32,
    /// Median of `D_open`, ms.
    pub open_median_ms: f64,
    /// Median RAM read latency, ms.
    pub ram_read_median_ms: f64,
    /// Median disk read (seek + first block) latency for hot ranks, ms.
    pub disk_read_median_ms: f64,
    /// Disk seek growth with popularity rank: added ms per `ln(rank)`.
    /// Unpopular content sits in colder, more fragmented regions (the
    /// paper's Fig. 6b: median server delay keeps rising with rank even
    /// when misses are excluded).
    pub disk_rank_ms_per_ln: f64,
    /// Log-space sigma shared by the latency components.
    pub sigma: f64,
}

impl Default for AtsConfig {
    fn default() -> Self {
        AtsConfig {
            retry_timer: SimDuration::from_millis(10),
            wait_median_ms: 0.15,
            wait_per_backlog_ms: 0.6,
            threads: 64,
            open_median_ms: 0.2,
            ram_read_median_ms: 1.4,
            disk_read_median_ms: 3.0,
            disk_rank_ms_per_ln: 1.6,
            sigma: 0.45,
        }
    }
}

/// Backend (origin) service latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendConfig {
    /// Median backend first-byte latency (network + service), ms.
    pub median_ms: f64,
    /// Log-space sigma.
    pub sigma: f64,
}

impl Default for BackendConfig {
    fn default() -> Self {
        // Calibrated so total-miss median ≈ 80 ms (paper: 40× the 2 ms hit
        // median, with mean and p95 "ten times more"); the log-normal tail
        // reaches several hundred ms, the range of the paper's Fig. 4
        // x-axis.
        BackendConfig {
            median_ms: 66.0,
            sigma: 0.85,
        }
    }
}

/// The server-side outcome of serving one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// Queue wait before headers were read.
    pub d_wait: SimDuration,
    /// Header read → first open attempt.
    pub d_open: SimDuration,
    /// First open attempt → first byte available at the socket (includes
    /// the retry timer and disk seek, or the backend wait on a miss).
    pub d_read: SimDuration,
    /// Backend latency (zero unless `status == Miss`). Already contained
    /// in `d_read`'s wait; kept separately because the paper reports
    /// `D_CDN` and `D_BE` as distinct instrumented quantities (Eq. 1).
    pub d_backend: SimDuration,
    /// Where the object was found.
    pub status: CacheStatus,
    /// Whether the 10 ms open-read retry timer fired (paper: ~35 % of
    /// chunks).
    pub retry_fired: bool,
}

impl ServeOutcome {
    /// `D_CDN` in the paper's Eq. 1: wait + open + local read path. On a
    /// miss the backend wait is excluded (it is `D_BE`).
    pub fn d_cdn(&self) -> SimDuration {
        self.d_wait + self.d_open + (self.d_read - self.d_backend)
    }

    /// Total server-side latency (`D_CDN + D_BE`): what Fig. 5 plots as
    /// `total-hit` / `total-miss`, and what delays the first byte.
    pub fn total(&self) -> SimDuration {
        self.d_wait + self.d_open + self.d_read
    }
}

/// Samples the latency components for the serve path.
#[derive(Debug)]
pub struct AtsTimings {
    cfg: AtsConfig,
    backend: BackendConfig,
    wait: LogNormal,
    open: LogNormal,
    ram_read: LogNormal,
    disk_read: LogNormal,
    backend_lat: LogNormal,
}

impl AtsTimings {
    /// Build the samplers.
    pub fn new(cfg: AtsConfig, backend: BackendConfig) -> Self {
        AtsTimings {
            wait: LogNormal::from_median(cfg.wait_median_ms, cfg.sigma),
            open: LogNormal::from_median(cfg.open_median_ms, cfg.sigma),
            ram_read: LogNormal::from_median(cfg.ram_read_median_ms, cfg.sigma),
            disk_read: LogNormal::from_median(cfg.disk_read_median_ms, cfg.sigma),
            backend_lat: LogNormal::from_median(backend.median_ms, backend.sigma),
            cfg,
            backend,
        }
    }

    /// The configured retry timer.
    pub fn retry_timer(&self) -> SimDuration {
        self.cfg.retry_timer
    }

    /// Threadpool size.
    pub fn threads(&self) -> u32 {
        self.cfg.threads
    }

    /// Sample `D_wait` given the number of requests concurrently being
    /// handled by this server.
    pub fn sample_wait(&self, concurrent: u32, rng: &mut RngStream) -> SimDuration {
        let base = self.wait.sample(rng);
        let backlog = concurrent.saturating_sub(self.cfg.threads);
        let queued = f64::from(backlog) * self.cfg.wait_per_backlog_ms;
        SimDuration::from_millis_f64(base + queued)
    }

    /// Sample `D_open`.
    pub fn sample_open(&self, rng: &mut RngStream) -> SimDuration {
        SimDuration::from_millis_f64(self.open.sample(rng))
    }

    /// Sample the read path for `status`, given the video's popularity
    /// `rank` (1-based). Returns `(d_read, d_backend, retry_fired)`.
    pub fn sample_read(
        &self,
        status: CacheStatus,
        rank: usize,
        rng: &mut RngStream,
    ) -> (SimDuration, SimDuration, bool) {
        match status {
            CacheStatus::RamHit => {
                let read = SimDuration::from_millis_f64(self.ram_read.sample(rng));
                (read, SimDuration::ZERO, false)
            }
            CacheStatus::DiskHit => {
                // First open attempt fails (not in RAM); the asynchronous
                // retry fires after the fixed timer, then the disk seek
                // pays a popularity penalty: colder content reads slower.
                let seek_extra = self.cfg.disk_rank_ms_per_ln * (1.0 + rank as f64).ln().max(0.0);
                let read = self.cfg.retry_timer
                    + SimDuration::from_millis_f64(self.disk_read.sample(rng) + seek_extra);
                (read, SimDuration::ZERO, true)
            }
            CacheStatus::Miss => {
                // Retry timer fires, then the backend's first byte bounds
                // D_read (delivery is pipelined with the backend fetch).
                let be = SimDuration::from_millis_f64(self.backend_lat.sample(rng));
                (self.cfg.retry_timer + be, be, true)
            }
        }
    }

    /// Backend configuration in use.
    pub fn backend_config(&self) -> BackendConfig {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> AtsTimings {
        AtsTimings::new(AtsConfig::default(), BackendConfig::default())
    }

    fn rng() -> RngStream {
        RngStream::new(1234, "ats-test")
    }

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    }

    #[test]
    fn ram_hit_is_fast_and_timer_free() {
        let t = timings();
        let mut r = rng();
        for _ in 0..100 {
            let (read, be, retry) = t.sample_read(CacheStatus::RamHit, 1, &mut r);
            assert!(!retry);
            assert!(be.is_zero());
            assert!(read < SimDuration::from_millis(30));
        }
    }

    #[test]
    fn disk_hit_pays_the_retry_timer() {
        let t = timings();
        let mut r = rng();
        for _ in 0..100 {
            let (read, be, retry) = t.sample_read(CacheStatus::DiskHit, 100, &mut r);
            assert!(retry);
            assert!(be.is_zero());
            assert!(
                read >= SimDuration::from_millis(10),
                "disk read {read} below the 10 ms timer"
            );
        }
    }

    #[test]
    fn read_is_bimodal_across_ram_and_disk() {
        // Fig. 5: the D_read distribution has "two nearly identical parts,
        // separated by about 10ms".
        let t = timings();
        let mut r = rng();
        let ram: Vec<f64> = (0..2000)
            .map(|_| {
                t.sample_read(CacheStatus::RamHit, 10, &mut r)
                    .0
                    .as_millis_f64()
            })
            .collect();
        let disk: Vec<f64> = (0..2000)
            .map(|_| {
                t.sample_read(CacheStatus::DiskHit, 10, &mut r)
                    .0
                    .as_millis_f64()
            })
            .collect();
        let gap = median(disk) - median(ram);
        assert!((8.0..25.0).contains(&gap), "mode separation = {gap} ms");
    }

    #[test]
    fn miss_latency_an_order_of_magnitude_above_hit() {
        let t = timings();
        let mut r = rng();
        let hit: Vec<f64> = (0..4000)
            .map(|_| {
                let (read, _, _) = t.sample_read(CacheStatus::RamHit, 5, &mut r);
                (t.sample_wait(1, &mut r) + t.sample_open(&mut r) + read).as_millis_f64()
            })
            .collect();
        let miss: Vec<f64> = (0..4000)
            .map(|_| {
                let (read, _, _) = t.sample_read(CacheStatus::Miss, 5, &mut r);
                (t.sample_wait(1, &mut r) + t.sample_open(&mut r) + read).as_millis_f64()
            })
            .collect();
        let (mh, mm) = (median(hit), median(miss));
        // Paper: hit median 2 ms, miss median 80 ms (40×).
        assert!((1.0..4.0).contains(&mh), "hit median = {mh}");
        assert!((55.0..110.0).contains(&mm), "miss median = {mm}");
        assert!(mm / mh > 20.0, "ratio = {}", mm / mh);
    }

    #[test]
    fn disk_seek_grows_with_rank() {
        let t = timings();
        let mut r = rng();
        let hot = median(
            (0..2000)
                .map(|_| {
                    t.sample_read(CacheStatus::DiskHit, 2, &mut r)
                        .0
                        .as_millis_f64()
                })
                .collect(),
        );
        let cold = median(
            (0..2000)
                .map(|_| {
                    t.sample_read(CacheStatus::DiskHit, 6000, &mut r)
                        .0
                        .as_millis_f64()
                })
                .collect(),
        );
        assert!(cold > hot + 5.0, "cold {cold} vs hot {hot}");
    }

    #[test]
    fn wait_grows_only_beyond_threadpool() {
        let t = timings();
        let mut r = rng();
        let idle = median(
            (0..500)
                .map(|_| t.sample_wait(4, &mut r).as_millis_f64())
                .collect(),
        );
        let busy = median(
            (0..500)
                .map(|_| t.sample_wait(t.threads() + 40, &mut r).as_millis_f64())
                .collect(),
        );
        assert!(idle < 1.0, "idle wait median = {idle}");
        assert!(busy > idle + 10.0, "busy wait median = {busy}");
    }

    #[test]
    fn serve_outcome_decomposition() {
        let o = ServeOutcome {
            d_wait: SimDuration::from_millis(1),
            d_open: SimDuration::from_millis(1),
            d_read: SimDuration::from_millis(70),
            d_backend: SimDuration::from_millis(60),
            status: CacheStatus::Miss,
            retry_fired: true,
        };
        assert_eq!(o.total(), SimDuration::from_millis(72));
        assert_eq!(o.d_cdn(), SimDuration::from_millis(12));
        assert!(!o.status.is_hit());
        assert!(CacheStatus::DiskHit.is_hit());
    }
}
