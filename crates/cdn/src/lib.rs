//! # streamlab-cdn
//!
//! The CDN substrate: an Apache-Traffic-Server-like caching HTTP server
//! fleet, reproducing §4.1 of the paper.
//!
//! * [`cache`] — a byte-capacity cache with pluggable eviction (LRU as
//!   deployed; perfect-LFU, GD-Size and FIFO for the §4.1.1 take-away
//!   ablation), composed into a RAM + disk [`cache::TieredCache`].
//! * [`ats`] — the request serve path and its latency anatomy:
//!   `D_wait` (request queue), `D_open` (first open attempt), `D_read`
//!   (RAM/disk read or backend first byte) including the **10 ms
//!   asynchronous open-read retry timer** that bimodalizes `D_read`
//!   (Fig. 5), rank-dependent disk seek latency (Fig. 6b), and the backend
//!   service (`D_BE`) consulted on cache misses.
//! * [`server`] — one CDN machine: tiered cache + ATS timings + a sliding
//!   load window (the §4.1.3 load-vs-performance analysis).
//! * [`fleet`] — 85 servers in 10 PoPs with *cache-focused* client mapping
//!   (nearest PoP, content-hash affinity within the PoP), optional
//!   popular-content partitioning, and prefetching policies
//!   (§4.1.2 take-aways).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ats;
pub mod cache;
pub mod fleet;
pub mod server;

pub use ats::{AtsConfig, BackendConfig, CacheStatus, ServeOutcome};
pub use cache::{
    AdmissionPolicy, ByteCache, EvictionPolicy, ObjectKey, TieredCache, TieredCacheConfig,
    MANIFEST_BYTES,
};
pub use fleet::{CdnFleet, FleetConfig, FleetShard, PrefetchPolicy, ServerPool};
pub use server::{CdnServer, ServerConfig};
