//! The server fleet and the traffic-engineering (client→server mapping)
//! layer.
//!
//! The paper's system "maps clients to CDN nodes using a function of
//! geography, latency, load, cache likelihood, etc. — the system tries to
//! route clients to the server that is likely to have a hot cache" (§4.1).
//! We reproduce that as: nearest PoP by geography, then *content affinity*
//! within the PoP (a stable hash of the video id picks the server), which
//! is exactly what makes some servers accumulate the unpopular tail and
//! show worse latency at lower load (Finding CDN-4 / §4.1.3).

use crate::cache::ObjectKey;
use crate::server::{CdnServer, ServerConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use streamlab_faults::FaultScenario;
use streamlab_sim::{derive_seed, RngStream};
use streamlab_workload::geo::{build_pops, nearest_pop, GeoPoint, Pop};
use streamlab_workload::{Catalog, ChunkIndex, ServerId, SessionId, Video, VideoId};

/// Chunk prefetching policy (§4.1.2 take-aways).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchPolicy {
    /// No prefetching (the deployed baseline).
    #[default]
    None,
    /// After a cache miss, pull the next `n` chunks of the same video and
    /// bitrate into the cache in the background.
    NextChunksOnMiss(u32),
}

impl PrefetchPolicy {
    /// The background-prefetch list for a request under this policy:
    /// subsequent chunks of the same video/bitrate. Pure — depends only on
    /// the policy, the catalog and the requested key — which is what lets
    /// shard workers compute it without any fleet reference.
    pub fn list(self, catalog: &Catalog, key: ObjectKey) -> Vec<(ObjectKey, u64)> {
        match self {
            PrefetchPolicy::None => Vec::new(),
            PrefetchPolicy::NextChunksOnMiss(n) => {
                let video = catalog.video(key.video);
                let total = video.chunk_count();
                (1..=n)
                    .filter_map(|d| {
                        let idx = key.chunk.raw() + d;
                        if idx < total {
                            let k = ObjectKey {
                                video: key.video,
                                chunk: ChunkIndex(idx),
                                bitrate_kbps: key.bitrate_kbps,
                            };
                            Some((k, video.chunk_bytes(ChunkIndex(idx), k.bitrate_kbps)))
                        } else {
                            None
                        }
                    })
                    .collect()
            }
        }
    }
}

/// Fleet configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of servers (the paper's dataset covers 85).
    pub servers: usize,
    /// Per-server configuration.
    pub server: ServerConfig,
    /// Prefetch policy applied fleet-wide.
    pub prefetch: PrefetchPolicy,
    /// Partition the most popular content across all of a PoP's servers
    /// instead of hashing it to one (the §4.1.3 load-balancing take-away).
    pub partition_popular: bool,
    /// "Popular" means rank within this top fraction of the catalog.
    pub popular_top_fraction: f64,
    /// Pin the first chunk of every video in cache at warm-up ("the CDN
    /// server could cache the first few chunks of all videos", §4.1.2).
    pub pin_first_chunks: bool,
    /// Warm caches to steady state before the measurement window.
    pub warm_caches: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            servers: 85,
            server: ServerConfig::default(),
            prefetch: PrefetchPolicy::None,
            partition_popular: false,
            popular_top_fraction: 0.10,
            pin_first_chunks: false,
            warm_caches: true,
        }
    }
}

/// The CDN fleet.
#[derive(Debug)]
pub struct CdnFleet {
    pops: Vec<Pop>,
    servers: Vec<CdnServer>,
    /// Server indices per PoP.
    by_pop: Vec<Vec<usize>>,
    /// Shared immutable configuration: the orchestrator, sweeps and
    /// ablations all hold the same `Arc`, so building a fleet never deep-
    /// copies the config.
    cfg: Arc<FleetConfig>,
    catalog_len: usize,
}

impl CdnFleet {
    /// Build the fleet: `cfg.servers` machines spread round-robin over the
    /// standard PoP set.
    pub fn new(cfg: Arc<FleetConfig>, master_seed: u64) -> Self {
        assert!(cfg.servers >= 1);
        let pops = build_pops();
        let mut servers = Vec::with_capacity(cfg.servers);
        let mut by_pop = vec![Vec::new(); pops.len()];
        for i in 0..cfg.servers {
            let pop = &pops[i % pops.len()];
            by_pop[i % pops.len()].push(i);
            servers.push(CdnServer::new(
                ServerId(i as u64),
                pop.id,
                cfg.server,
                RngStream::new(master_seed, &format!("cdn-server-{i}")),
            ));
        }
        CdnFleet {
            pops,
            servers,
            by_pop,
            cfg,
            catalog_len: 0,
        }
    }

    /// The PoP list.
    pub fn pops(&self) -> &[Pop] {
        &self.pops
    }

    /// All servers.
    pub fn servers(&self) -> &[CdnServer] {
        &self.servers
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the fleet has no servers (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Pick the serving server for `(client location, video, session)`.
    ///
    /// Nearest PoP, then content-hash affinity within the PoP. With
    /// `partition_popular`, head content instead spreads across the PoP's
    /// servers keyed by session (load balancing at no cache cost: the head
    /// is hot everywhere).
    pub fn assign(&self, client: &GeoPoint, video: VideoId, session: SessionId) -> usize {
        let pop_idx = nearest_pop(&self.pops, client);
        let members = &self.by_pop[pop_idx];
        assert!(!members.is_empty(), "PoP without servers");
        let is_popular = self.catalog_len > 0
            && video.rank() as f64 <= self.cfg.popular_top_fraction * self.catalog_len as f64;
        let h = if self.cfg.partition_popular && is_popular {
            derive_seed(video.raw() ^ session.raw().rotate_left(17), "fleet-spread")
        } else {
            derive_seed(video.raw(), "fleet-affinity")
        };
        members[(h % members.len() as u64) as usize]
    }

    /// The PoP a server belongs to.
    pub fn pop_of(&self, server_idx: usize) -> &Pop {
        let pop_id = self.servers[server_idx].pop();
        &self.pops[pop_id.raw() as usize]
    }

    /// Serving distance in km between a client and its assigned server.
    pub fn distance_km(&self, server_idx: usize, client: &GeoPoint) -> f64 {
        self.pop_of(server_idx).location.distance_km(client)
    }

    /// Mutable access to a server (the orchestrator serves chunks through
    /// this).
    pub fn server_mut(&mut self, idx: usize) -> &mut CdnServer {
        &mut self.servers[idx]
    }

    /// Compute the background-prefetch list for a request under the
    /// fleet's policy: subsequent chunks of the same video/bitrate.
    pub fn prefetch_list(&self, catalog: &Catalog, key: ObjectKey) -> Vec<(ObjectKey, u64)> {
        self.cfg.prefetch.list(catalog, key)
    }

    /// Index (into [`CdnFleet::pops`]) of the PoP hosting a server.
    pub fn pop_index_of(&self, server_idx: usize) -> usize {
        self.servers[server_idx].pop().raw() as usize
    }

    /// Global indices of a PoP's member servers, ascending.
    pub fn pop_members(&self, pop_index: usize) -> &[usize] {
        &self.by_pop[pop_index]
    }

    /// Compile and install a fault scenario's per-server timelines
    /// (restarts, server/PoP outages, backend slowdowns). No-op for a
    /// scenario without server-level faults. Call before
    /// [`CdnFleet::split_shards`] so shards carry their timelines along.
    pub fn install_faults(&mut self, scenario: &FaultScenario) {
        if !scenario.has_server_faults() {
            return;
        }
        for idx in 0..self.servers.len() {
            let pop = self.pop_index_of(idx);
            let timeline = scenario.server_timeline(idx, pop);
            if !timeline.is_empty() {
                self.servers[idx].install_fault_timeline(timeline);
            }
        }
    }

    /// Carve the fleet into per-PoP shards, moving every server into the
    /// shard of its PoP. The fleet keeps its configuration and PoP list but
    /// holds no servers until [`CdnFleet::merge_shards`] puts them back;
    /// serving methods ([`CdnFleet::server_mut`], reports) must not be used
    /// in between.
    ///
    /// PoPs with no servers produce no shard. Within a shard, servers keep
    /// their relative (ascending global-index) order.
    pub fn split_shards(&mut self) -> Vec<FleetShard> {
        let coarse = vec![true; self.pops.len()];
        self.split_shards_with(&coarse)
    }

    /// Carve the fleet into mixed-granularity shards: PoPs flagged in
    /// `coarse` become one whole-PoP shard each (sessions there may fail
    /// over between member servers, so the members must stay together);
    /// every other PoP is split one-shard-per-server — the fine
    /// granularity that lets a work-stealing scheduler balance a skewed
    /// session distribution.
    ///
    /// Shards come out in canonical order: ascending PoP index, then
    /// ascending global server index within a split PoP. PoPs with no
    /// servers produce no shard. Same fleet-ownership contract as
    /// [`CdnFleet::split_shards`].
    pub fn split_shards_with(&mut self, coarse: &[bool]) -> Vec<FleetShard> {
        assert_eq!(coarse.len(), self.pops.len(), "one coarseness flag per PoP");
        let mut slots: Vec<Option<CdnServer>> = std::mem::take(&mut self.servers)
            .into_iter()
            .map(Some)
            .collect();
        let mut take = |i: usize| slots[i].take().expect("server split into two shards");
        let mut shards: Vec<FleetShard> = Vec::new();
        for (pop_index, members) in self.by_pop.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            if coarse[pop_index] {
                shards.push(FleetShard {
                    pop_index,
                    server_indices: members.clone(),
                    servers: members.iter().map(|&i| take(i)).collect(),
                });
            } else {
                for &i in members {
                    shards.push(FleetShard {
                        pop_index,
                        server_indices: vec![i],
                        servers: vec![take(i)],
                    });
                }
            }
        }
        shards
    }

    /// Reassemble the fleet from shards produced by
    /// [`CdnFleet::split_shards`], restoring every server to its global
    /// index. Accepts shards in any order; panics if the shard set does not
    /// cover exactly the servers that were split off.
    pub fn merge_shards(&mut self, shards: Vec<FleetShard>) {
        assert!(
            self.servers.is_empty(),
            "merge_shards on a fleet that still owns servers"
        );
        let total: usize = shards.iter().map(|s| s.servers.len()).sum();
        let mut slots: Vec<Option<CdnServer>> = (0..total).map(|_| None).collect();
        for shard in shards {
            for (global_idx, server) in shard.server_indices.into_iter().zip(shard.servers) {
                assert!(
                    slots[global_idx].is_none(),
                    "server {global_idx} appears in two shards"
                );
                slots[global_idx] = Some(server);
            }
        }
        self.servers = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("server {i} missing from shards")))
            .collect();
    }

    /// Warm every server's cache to a plausible steady state.
    ///
    /// Disk tiers are filled with each server's own videos in popularity
    /// order (most popular first) at the ladder rungs ABR traffic
    /// concentrates on, until ~90 % full; then RAM tiers are filled the
    /// same way (most popular content first). Optionally pins first chunks
    /// of all assigned videos.
    ///
    /// Without warming, the measurement window would start against cold
    /// caches and overstate miss rates relative to the paper's
    /// steady-state 2 %.
    pub fn warm(&mut self, catalog: &Catalog) {
        self.warm_parallel(catalog, 1);
    }

    /// [`CdnFleet::warm`] spread across up to `threads` workers.
    ///
    /// Warming is embarrassingly parallel *per server*: every fill, pin
    /// and fullness check touches only the server being warmed, and the
    /// affinity assignment is a pure function of `(video, PoP)`. The
    /// historical videos×PoPs loop is therefore restructured as one pass
    /// per server over that server's assigned videos in ascending catalog
    /// (popularity) order — the exact per-server subsequence of the old
    /// global order — so cache contents and churn counters are
    /// byte-identical at any `threads`, and worker scheduling cannot leak
    /// into the output.
    pub fn warm_parallel(&mut self, catalog: &Catalog, threads: usize) {
        self.catalog_len = catalog.len();
        if !self.cfg.warm_caches && !self.cfg.pin_first_chunks {
            return;
        }
        // Disk warms the full ladder: production caches have seen every
        // rung of the head content. RAM warms only the rungs traffic
        // concentrates on (the ABR's mid-ladder initial pick and the top
        // rung fast links converge to) — what an LRU RAM tier would
        // actually retain at steady state.
        let warm_rungs: Vec<u32> = catalog.ladder().rungs_kbps.clone();
        let ram_rungs: Vec<u32> = vec![
            catalog.ladder().floor_rung(1_200.0),
            catalog.ladder().max_kbps(),
        ];

        // Each PoP warms a video on its affinity server; collect every
        // server's assignment list up front, in catalog order.
        let mut assigned: Vec<Vec<&Video>> = vec![Vec::new(); self.servers.len()];
        for video in catalog.videos() {
            for members in self.by_pop.iter().filter(|m| !m.is_empty()) {
                let h = derive_seed(video.id.raw(), "fleet-affinity");
                assigned[members[(h % members.len() as u64) as usize]].push(video);
            }
        }

        let cfg = &self.cfg;
        let catalog_len = self.catalog_len;
        let warm_one = |server: &mut CdnServer, videos: &[&Video]| {
            if cfg.pin_first_chunks {
                for video in videos {
                    for &rung in &warm_rungs {
                        let k = ObjectKey {
                            video: video.id,
                            chunk: ChunkIndex(0),
                            bitrate_kbps: rung,
                        };
                        let size = video.chunk_bytes(ChunkIndex(0), rung);
                        server.cache_mut().fill(k, size);
                        server.cache_mut().pin(k);
                    }
                }
            }
            if !cfg.warm_caches {
                return;
            }
            // Pass 1: disk, most popular first, until ~90 % full. Pass 2:
            // RAM the same way — so RAM ends up holding the *head* of the
            // popularity distribution, as an LRU in steady state would.
            for ram_pass in [false, true] {
                for video in videos {
                    let cache = server.cache_mut();
                    // Manifests are a few KB and requested by every
                    // session: always warm, in both tiers — even for
                    // videos whose chunks no longer fit.
                    if ram_pass {
                        cache.fill_ram(ObjectKey::manifest(video.id), crate::cache::MANIFEST_BYTES);
                    } else {
                        cache
                            .fill_disk(ObjectKey::manifest(video.id), crate::cache::MANIFEST_BYTES);
                    }
                    let full = if ram_pass {
                        cache.ram().used() as f64 >= 0.9 * cache.ram().capacity() as f64
                    } else {
                        cache.disk().used() as f64 >= 0.9 * cache.disk().capacity() as f64
                    };
                    if full {
                        continue;
                    }
                    let rungs = if ram_pass { &ram_rungs } else { &warm_rungs };
                    // Steady-state caches hold the union of what past
                    // viewers pulled, and viewers abandon mid-video: the
                    // head of the catalog is warmed end-to-end, the tail
                    // only through a watch-prefix. Sessions that outlast
                    // the warmed prefix then mix hits and misses (the
                    // paper's 60 % mean miss ratio within miss sessions).
                    let head = video.id.rank() * 5 <= catalog_len;
                    let warmed_chunks = if head {
                        video.chunk_count()
                    } else {
                        let frac = 0.72
                            + 0.28 * (derive_seed(video.id.raw(), "warm-frac") % 1000) as f64
                                / 1000.0;
                        ((f64::from(video.chunk_count()) * frac).ceil() as u32)
                            .clamp(1, video.chunk_count())
                    };
                    for &rung in rungs {
                        for c in 0..warmed_chunks {
                            let k = ObjectKey {
                                video: video.id,
                                chunk: ChunkIndex(c),
                                bitrate_kbps: rung,
                            };
                            let size = video.chunk_bytes(ChunkIndex(c), rung);
                            if ram_pass {
                                cache.fill_ram(k, size);
                            } else {
                                cache.fill_disk(k, size);
                            }
                        }
                    }
                }
            }
        };

        if threads <= 1 {
            for (idx, server) in self.servers.iter_mut().enumerate() {
                warm_one(server, &assigned[idx]);
            }
        } else {
            // Servers are independent work items; any pickup order yields
            // the same caches, so a plain shared stack suffices.
            let work: Vec<(&mut CdnServer, &[&Video])> = self
                .servers
                .iter_mut()
                .zip(assigned.iter().map(Vec::as_slice))
                .collect();
            let n = work.len();
            let work = std::sync::Mutex::new(work);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(n) {
                    scope.spawn(|| loop {
                        let item = work.lock().unwrap_or_else(|e| e.into_inner()).pop();
                        match item {
                            Some((server, videos)) => warm_one(server, videos),
                            None => break,
                        }
                    });
                }
            });
        }
    }
}

/// A slice of the fleet — a whole PoP's servers, or a single server of a
/// split PoP — detached from the fleet so an independent worker can
/// mutate it.
///
/// This is the unit of parallelism in the sharded simulation engine.
/// Client→server assignment never crosses PoP boundaries (nearest PoP,
/// then affinity *within* the PoP), and a session only leaves its
/// assigned *server* on failover — which the engine's failover-domain
/// analysis rules out for split PoPs — so every session's serve path
/// touches exactly one shard and shards can run concurrently without
/// synchronization.
#[derive(Debug)]
pub struct FleetShard {
    pop_index: usize,
    /// Global fleet indices of `servers`, ascending, parallel to `servers`.
    server_indices: Vec<usize>,
    servers: Vec<CdnServer>,
}

impl FleetShard {
    /// Index of the PoP this shard serves.
    pub fn pop_index(&self) -> usize {
        self.pop_index
    }

    /// Number of servers in the shard.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the shard holds no servers (never produced by
    /// [`CdnFleet::split_shards`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Access a server by its *global* fleet index. Panics if the server
    /// lives in a different shard — a cross-PoP touch would break the
    /// parallelism contract, so it must fail loudly.
    pub fn server_mut(&mut self, global_idx: usize) -> &mut CdnServer {
        let local = self.local_index(global_idx);
        &mut self.servers[local]
    }

    /// Shared access to a server by its *global* fleet index.
    pub fn server(&self, global_idx: usize) -> &CdnServer {
        let local = self.local_index(global_idx);
        &self.servers[local]
    }

    /// Global fleet indices of the shard's servers, ascending — the same
    /// order [`CdnFleet::pop_members`] reports for this PoP.
    pub fn members(&self) -> &[usize] {
        &self.server_indices
    }

    fn local_index(&self, global_idx: usize) -> usize {
        self.server_indices
            .binary_search(&global_idx)
            .unwrap_or_else(|_| {
                panic!(
                    "server {global_idx} is not in the PoP-{} shard",
                    self.pop_index
                )
            })
    }
}

/// Mutable access to servers plus same-PoP membership — the interface the
/// session step drives, implemented by both the whole [`CdnFleet`]
/// (sequential engine) and one [`FleetShard`] (sharded engine).
///
/// Failover never leaves the session's PoP, and both implementations
/// expose a PoP's members in the same ascending global-index order, so
/// retry/failover decisions are bit-identical in both engines — that is
/// the fault layer's thread-invariance argument.
pub trait ServerPool {
    /// Mutable server by global fleet index.
    fn pool_server_mut(&mut self, global_idx: usize) -> &mut CdnServer;

    /// Shared server by global fleet index.
    fn pool_server(&self, global_idx: usize) -> &CdnServer;

    /// Global indices of a PoP's member servers, ascending.
    fn pop_members(&self, pop_index: usize) -> &[usize];
}

impl ServerPool for CdnFleet {
    fn pool_server_mut(&mut self, global_idx: usize) -> &mut CdnServer {
        self.server_mut(global_idx)
    }

    fn pool_server(&self, global_idx: usize) -> &CdnServer {
        &self.servers[global_idx]
    }

    fn pop_members(&self, pop_index: usize) -> &[usize] {
        CdnFleet::pop_members(self, pop_index)
    }
}

impl ServerPool for FleetShard {
    fn pool_server_mut(&mut self, global_idx: usize) -> &mut CdnServer {
        self.server_mut(global_idx)
    }

    fn pool_server(&self, global_idx: usize) -> &CdnServer {
        self.server(global_idx)
    }

    fn pop_members(&self, pop_index: usize) -> &[usize] {
        assert_eq!(
            pop_index, self.pop_index,
            "cross-PoP membership query on a shard"
        );
        // Failover consults this, and failover only fires under faults
        // that force the session's PoP into one whole-PoP (coarse) shard —
        // so when it is consulted, the list is the full PoP membership.
        &self.server_indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_workload::catalog::CatalogConfig;

    fn small_catalog() -> Catalog {
        let mut rng = RngStream::new(3, "fleet-cat");
        Catalog::generate(
            &CatalogConfig {
                videos: 500,
                ..CatalogConfig::default()
            },
            &mut rng,
        )
    }

    fn fleet(cfg: FleetConfig) -> CdnFleet {
        CdnFleet::new(Arc::new(cfg), 42)
    }

    #[test]
    fn eighty_five_servers_across_all_pops() {
        let f = fleet(FleetConfig::default());
        assert_eq!(f.len(), 85);
        for (i, pop_members) in f.by_pop.iter().enumerate() {
            assert!(
                !pop_members.is_empty(),
                "PoP {i} has no servers with 85 machines over 10 PoPs"
            );
        }
    }

    #[test]
    fn assignment_is_stable_and_geo_local() {
        let mut f = fleet(FleetConfig::default());
        let cat = small_catalog();
        f.warm(&cat);
        let seattle = GeoPoint {
            lat: 47.6,
            lon: -122.3,
        };
        let a = f.assign(&seattle, VideoId(7), SessionId(1));
        let b = f.assign(&seattle, VideoId(7), SessionId(999));
        assert_eq!(a, b, "affinity mapping must not depend on session");
        assert_eq!(f.pop_of(a).metro, "Seattle-WA");
        assert!(f.distance_km(a, &seattle) < 50.0);
    }

    #[test]
    fn different_videos_spread_within_pop() {
        let mut f = fleet(FleetConfig::default());
        let cat = small_catalog();
        f.warm(&cat);
        let ny = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        let mut targets = std::collections::HashSet::new();
        for v in 0..100 {
            targets.insert(f.assign(&ny, VideoId(v), SessionId(0)));
        }
        assert!(targets.len() > 1, "content hash should use several servers");
    }

    #[test]
    fn partition_popular_spreads_head_by_session() {
        let mut f = fleet(FleetConfig {
            partition_popular: true,
            ..FleetConfig::default()
        });
        let cat = small_catalog();
        f.warm(&cat);
        let ny = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        let head_video = VideoId(0); // rank 1: within the top 10%
        let mut targets = std::collections::HashSet::new();
        for s in 0..50 {
            targets.insert(f.assign(&ny, head_video, SessionId(s)));
        }
        assert!(
            targets.len() > 1,
            "popular content should spread across the PoP"
        );
        // Tail content stays affinity-mapped.
        let tail_video = VideoId(499);
        let mut tail_targets = std::collections::HashSet::new();
        for s in 0..50 {
            tail_targets.insert(f.assign(&ny, tail_video, SessionId(s)));
        }
        assert_eq!(tail_targets.len(), 1);
    }

    #[test]
    fn warming_includes_manifests() {
        let mut f = fleet(FleetConfig::default());
        let cat = small_catalog();
        f.warm(&cat);
        let ny = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        // Every video's manifest is warm on its affinity server — even the
        // least popular video's.
        for v in [VideoId(0), VideoId(250), VideoId(499)] {
            let idx = f.assign(&ny, v, SessionId(0));
            assert!(
                f.servers()[idx].cache().contains(ObjectKey::manifest(v)),
                "manifest of {v} not warmed"
            );
        }
    }

    #[test]
    fn tail_videos_get_partial_watch_prefix_warm() {
        let mut f = fleet(FleetConfig::default());
        let cat = small_catalog();
        f.warm(&cat);
        let ny = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        // Find a long tail video (rank beyond the head fifth) and check
        // that its early chunks are warmer than its last chunk somewhere.
        let mid_rung = cat.ladder().floor_rung(1_200.0);
        let mut partial_seen = false;
        for v in cat
            .videos()
            .iter()
            .filter(|v| v.id.rank() * 5 > cat.len() && v.chunk_count() >= 10)
        {
            let idx = f.assign(&ny, v.id, SessionId(0));
            let server = &f.servers()[idx];
            let first = ObjectKey {
                video: v.id,
                chunk: ChunkIndex(0),
                bitrate_kbps: mid_rung,
            };
            let last = ObjectKey {
                video: v.id,
                chunk: ChunkIndex(v.chunk_count() - 1),
                bitrate_kbps: mid_rung,
            };
            if server.cache().contains(first) && !server.cache().contains(last) {
                partial_seen = true;
                break;
            }
        }
        assert!(
            partial_seen,
            "no tail video shows the watch-prefix warm pattern"
        );
    }

    #[test]
    fn warming_fills_caches() {
        let mut f = fleet(FleetConfig::default());
        let cat = small_catalog();
        f.warm(&cat);
        let warmed_bytes: u64 = f
            .servers()
            .iter()
            .map(|s| s.cache().ram().used() + s.cache().disk().used())
            .sum();
        assert!(warmed_bytes > 0, "warm() stored nothing");
    }

    #[test]
    fn pinned_first_chunks_always_hit() {
        let mut f = fleet(FleetConfig {
            pin_first_chunks: true,
            warm_caches: false,
            ..FleetConfig::default()
        });
        let cat = small_catalog();
        f.warm(&cat);
        let ladder_mid = cat.ladder().floor_rung(1_200.0);
        let ny = GeoPoint {
            lat: 40.7,
            lon: -74.0,
        };
        // Even the least popular video's first chunk is cached.
        let v = VideoId(499);
        let idx = f.assign(&ny, v, SessionId(0));
        let key = ObjectKey {
            video: v,
            chunk: ChunkIndex(0),
            bitrate_kbps: ladder_mid,
        };
        assert!(f.servers()[idx].cache().contains(key));
    }

    #[test]
    fn prefetch_list_respects_video_end() {
        let f = fleet(FleetConfig {
            prefetch: PrefetchPolicy::NextChunksOnMiss(5),
            ..FleetConfig::default()
        });
        let cat = small_catalog();
        let v = cat.videos().iter().find(|v| v.chunk_count() >= 4).unwrap();
        let near_end = ObjectKey {
            video: v.id,
            chunk: ChunkIndex(v.chunk_count() - 2),
            bitrate_kbps: 1050,
        };
        let list = f.prefetch_list(&cat, near_end);
        assert_eq!(list.len(), 1, "only one chunk remains after {near_end:?}");
        let start = ObjectKey {
            video: v.id,
            chunk: ChunkIndex(0),
            bitrate_kbps: 1050,
        };
        let list = f.prefetch_list(&cat, start);
        assert_eq!(list.len(), 5.min(v.chunk_count() as usize - 1));
    }

    #[test]
    fn split_covers_every_server_and_merge_restores_order() {
        let mut f = fleet(FleetConfig::default());
        let ids_before: Vec<_> = f.servers().iter().map(|s| s.id()).collect();
        let shards = f.split_shards();
        assert!(f.servers().is_empty(), "split must move the servers out");
        // Every shard is a single PoP and shards partition the fleet.
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            assert!(!shard.is_empty());
            for i in 0..shard.len() {
                let global = shard.server_indices[i];
                assert!(seen.insert(global), "server {global} in two shards");
                assert_eq!(shard.server(global).pop().raw() as usize, shard.pop_index());
            }
        }
        assert_eq!(seen.len(), ids_before.len());
        f.merge_shards(shards);
        let ids_after: Vec<_> = f.servers().iter().map(|s| s.id()).collect();
        assert_eq!(ids_before, ids_after, "merge must restore global order");
    }

    #[test]
    fn split_with_mixed_granularity_covers_and_merges() {
        let mut f = fleet(FleetConfig::default());
        let ids_before: Vec<_> = f.servers().iter().map(|s| s.id()).collect();
        // PoPs 0 and 3 stay coarse, every other PoP splits per server.
        let mut coarse = vec![false; f.pops().len()];
        coarse[0] = true;
        coarse[3] = true;
        let shards = f.split_shards_with(&coarse);
        let mut seen = std::collections::HashSet::new();
        let mut last_key = (0usize, 0usize);
        for (i, shard) in shards.iter().enumerate() {
            if coarse[shard.pop_index()] {
                assert!(shard.len() > 1, "85 servers over 10 PoPs: coarse > 1");
            } else {
                assert_eq!(shard.len(), 1, "split PoPs yield singleton shards");
            }
            for &global in shard.members() {
                assert!(seen.insert(global), "server {global} in two shards");
            }
            // Canonical order: ascending (PoP, first server).
            let key = (shard.pop_index(), shard.members()[0]);
            if i > 0 {
                assert!(key > last_key, "shards out of canonical order: {key:?}");
            }
            last_key = key;
        }
        assert_eq!(seen.len(), ids_before.len());
        f.merge_shards(shards);
        let ids_after: Vec<_> = f.servers().iter().map(|s| s.id()).collect();
        assert_eq!(ids_before, ids_after);
    }

    #[test]
    fn all_fine_split_is_one_shard_per_server() {
        let mut f = fleet(FleetConfig::default());
        let n = f.len();
        let coarse = vec![false; f.pops().len()];
        let shards = f.split_shards_with(&coarse);
        assert_eq!(shards.len(), n);
        f.merge_shards(shards);
    }

    #[test]
    fn parallel_warm_matches_sequential_warm() {
        let cat = small_catalog();
        let mut seq = fleet(FleetConfig {
            pin_first_chunks: true,
            ..FleetConfig::default()
        });
        seq.warm(&cat);
        let mut par = fleet(FleetConfig {
            pin_first_chunks: true,
            ..FleetConfig::default()
        });
        par.warm_parallel(&cat, 4);
        for (a, b) in seq.servers().iter().zip(par.servers()) {
            assert_eq!(a.cache().ram().used(), b.cache().ram().used());
            assert_eq!(a.cache().disk().used(), b.cache().disk().used());
            let (ca, cb) = (a.cache().churn(), b.cache().churn());
            assert_eq!(ca.fills, cb.fills);
            assert_eq!(ca.promotions, cb.promotions);
            assert_eq!(ca.demotions, cb.demotions);
            assert_eq!(ca.disk_evictions, cb.disk_evictions);
        }
    }

    #[test]
    fn merge_accepts_shards_in_any_order() {
        let mut f = fleet(FleetConfig::default());
        let ids_before: Vec<_> = f.servers().iter().map(|s| s.id()).collect();
        let mut shards = f.split_shards();
        shards.reverse();
        f.merge_shards(shards);
        let ids_after: Vec<_> = f.servers().iter().map(|s| s.id()).collect();
        assert_eq!(ids_before, ids_after);
    }

    #[test]
    #[should_panic(expected = "is not in the PoP")]
    fn shard_rejects_cross_pop_server_access() {
        let mut f = fleet(FleetConfig::default());
        let mut shards = f.split_shards();
        // Find a server that belongs to a different shard than shards[0].
        let foreign = shards[1].server_indices[0];
        let _ = shards[0].server_mut(foreign);
    }

    #[test]
    fn prefetch_policy_list_matches_fleet_prefetch_list() {
        let f = fleet(FleetConfig {
            prefetch: PrefetchPolicy::NextChunksOnMiss(3),
            ..FleetConfig::default()
        });
        let cat = small_catalog();
        let key = ObjectKey {
            video: VideoId(1),
            chunk: ChunkIndex(0),
            bitrate_kbps: 1050,
        };
        assert_eq!(
            f.prefetch_list(&cat, key),
            PrefetchPolicy::NextChunksOnMiss(3).list(&cat, key)
        );
    }

    #[test]
    fn install_faults_covers_every_pop_member() {
        use streamlab_faults::PopOutage;
        use streamlab_sim::SimTime;
        let mut f = fleet(FleetConfig::default());
        let scenario = FaultScenario {
            pop_outages: vec![PopOutage {
                pop: 2,
                from_s: 100.0,
                until_s: 200.0,
            }],
            ..FaultScenario::default()
        };
        f.install_faults(&scenario);
        let mid = SimTime::from_secs(150);
        for idx in 0..f.len() {
            let out = f.servers()[idx].is_out(mid);
            assert_eq!(
                out,
                f.pop_index_of(idx) == 2,
                "server {idx} outage state wrong"
            );
        }
    }

    #[test]
    fn pool_members_agree_between_fleet_and_shard() {
        let mut f = fleet(FleetConfig::default());
        let fleet_members: Vec<Vec<usize>> = (0..f.pops().len())
            .map(|p| CdnFleet::pop_members(&f, p).to_vec())
            .collect();
        let shards = f.split_shards();
        for shard in &shards {
            assert_eq!(
                ServerPool::pop_members(shard, shard.pop_index()),
                &fleet_members[shard.pop_index()][..],
                "failover order must match between engines"
            );
        }
        f.merge_shards(shards);
    }

    #[test]
    fn no_prefetch_by_default() {
        let f = fleet(FleetConfig::default());
        let cat = small_catalog();
        let key = ObjectKey {
            video: VideoId(0),
            chunk: ChunkIndex(0),
            bitrate_kbps: 1050,
        };
        assert!(f.prefetch_list(&cat, key).is_empty());
    }
}
