//! A byte-capacity cache with pluggable eviction.

use super::{EvictionPolicy, ObjectKey};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone)]
struct Entry {
    size: u64,
    /// Ordering key currently held in `order` (recency counter, frequency,
    /// scaled GD priority, or insertion counter, depending on the policy).
    order_key: (u64, u64),
    pinned: bool,
}

/// A byte-capacity cache over [`ObjectKey`]s.
///
/// All four policies share one representation: a `HashMap` of entries plus
/// a `BTreeSet` of `(order_key, tiebreak)` pairs; the policy only decides
/// how `order_key` evolves on insert/access. Eviction pops the smallest
/// order key, skipping pinned entries.
#[derive(Debug, Clone)]
pub struct ByteCache {
    policy: EvictionPolicy,
    capacity: u64,
    used: u64,
    entries: HashMap<ObjectKey, Entry>,
    order: BTreeSet<((u64, u64), ObjectKey)>,
    /// Monotone counter used for recency / insertion order / ties.
    tick: u64,
    /// Perfect-LFU frequency table (survives eviction).
    freq: HashMap<ObjectKey, u64>,
    /// GD-Size inflation value L (scaled by `GD_SCALE`).
    gd_inflation: u64,
    hits: u64,
    misses: u64,
}

/// GD-Size priorities are fractional; scale into integers for the ordered
/// set. One unit = 1/GD_SCALE of "cost per byte".
const GD_SCALE: f64 = 1.0e12;

impl ByteCache {
    /// An empty cache of `capacity` bytes under `policy`.
    pub fn new(policy: EvictionPolicy, capacity: u64) -> Self {
        ByteCache {
            policy,
            capacity,
            used: 0,
            entries: HashMap::new(),
            order: BTreeSet::new(),
            tick: 0,
            freq: HashMap::new(),
            gd_inflation: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses) counters from `lookup`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn order_key_for(&mut self, key: ObjectKey, size: u64) -> (u64, u64) {
        match self.policy {
            EvictionPolicy::Lru => (self.next_tick(), 0),
            EvictionPolicy::Fifo => {
                // Insertion order only; set once at insert, never on access.
                (self.next_tick(), 0)
            }
            EvictionPolicy::PerfectLfu => {
                let f = *self.freq.get(&key).unwrap_or(&0);
                (f, self.next_tick())
            }
            EvictionPolicy::GdSize => {
                // priority = L + cost/size, with unit cost per object.
                let prio = self.gd_inflation as f64 + GD_SCALE / size.max(1) as f64;
                (prio as u64, self.next_tick())
            }
        }
    }

    fn reorder(&mut self, key: ObjectKey) {
        let Some(entry) = self.entries.get(&key) else {
            return;
        };
        let size = entry.size;
        let old = entry.order_key;
        let new = match self.policy {
            EvictionPolicy::Fifo => return, // FIFO ignores accesses
            _ => self.order_key_for(key, size),
        };
        self.order.remove(&(old, key));
        self.order.insert((new, key));
        if let Some(e) = self.entries.get_mut(&key) {
            e.order_key = new;
        }
    }

    /// Is `key` present? Updates hit/miss stats and recency/frequency.
    pub fn lookup(&mut self, key: ObjectKey) -> bool {
        // Perfect-LFU counts every *request*, hit or miss.
        if self.policy == EvictionPolicy::PerfectLfu {
            *self.freq.entry(key).or_insert(0) += 1;
        }
        if self.entries.contains_key(&key) {
            self.hits += 1;
            self.reorder(key);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Presence check without touching stats or ordering.
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Insert `key` (`size` bytes), evicting until it fits. Returns the
    /// evicted `(key, size)` pairs so callers can demote them to a lower
    /// tier. Objects larger than the whole capacity are not admitted.
    /// Re-inserting an existing key refreshes it.
    pub fn insert(&mut self, key: ObjectKey, size: u64) -> Vec<(ObjectKey, u64)> {
        if size > self.capacity {
            return Vec::new();
        }
        if self.entries.contains_key(&key) {
            self.reorder(key);
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            match self.pop_victim() {
                Some(victim) => evicted.push(victim),
                None => return evicted, // everything pinned; cannot admit
            }
        }
        let order_key = self.order_key_for(key, size);
        self.order.insert((order_key, key));
        self.entries.insert(
            key,
            Entry {
                size,
                order_key,
                pinned: false,
            },
        );
        self.used += size;
        evicted
    }

    /// Drop every entry at once (a process restart losing its in-memory
    /// contents). Lifetime hit/miss stats and the Perfect-LFU frequency
    /// history survive — they model knowledge that outlives a restart —
    /// but pins are lost with the entries that held them.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used = 0;
    }

    /// Pin `key` so it is never evicted (used by the "cache the first chunk
    /// of every video" policy). No-op if absent.
    pub fn pin(&mut self, key: ObjectKey) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.pinned = true;
        }
    }

    /// Remove a specific key (e.g. when promoting between tiers).
    pub fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(e) = self.entries.remove(&key) {
            self.order.remove(&(e.order_key, key));
            self.used -= e.size;
            true
        } else {
            false
        }
    }

    /// Evict the policy's victim, skipping pinned entries.
    fn pop_victim(&mut self) -> Option<(ObjectKey, u64)> {
        let victim = self
            .order
            .iter()
            .find(|(_, k)| !self.entries.get(k).map(|e| e.pinned).unwrap_or(false))
            .map(|&(ok, k)| (ok, k))?;
        let (order_key, key) = victim;
        self.order.remove(&(order_key, key));
        let e = self.entries.remove(&key).expect("order/entries in sync");
        self.used -= e.size;
        if self.policy == EvictionPolicy::GdSize {
            // GD-Size: the evicted priority becomes the new inflation L.
            self.gd_inflation = order_key.0;
        }
        Some((key, e.size))
    }
}
