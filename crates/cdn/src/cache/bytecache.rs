//! A byte-capacity cache with pluggable eviction.

use super::{EvictionPolicy, ObjectKey};
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;

/// Slab sentinel for "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry {
    size: u64,
    /// Ordering key currently held in the `Tree` index (frequency or scaled
    /// GD priority plus tie-break). Unused by `List` policies.
    order_key: (u64, u64),
    /// Slab index of this entry's node in the `List` index. Unused by
    /// `Tree` policies.
    node: u32,
    pinned: bool,
}

/// Intrusive doubly-linked recency list over a slab, for the queue-shaped
/// policies (LRU / FIFO): head = oldest = victim side, tail = newest.
/// Touch, insert and evict are all O(1), versus O(log n) `BTreeSet` churn.
#[derive(Debug, Clone)]
struct OrderList {
    nodes: Vec<ListNode>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

#[derive(Debug, Clone)]
struct ListNode {
    key: ObjectKey,
    prev: u32,
    next: u32,
}

impl OrderList {
    fn new() -> Self {
        OrderList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn push_back(&mut self, key: ObjectKey) -> u32 {
        let node = ListNode {
            key,
            prev: self.tail,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        idx
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(idx);
    }

    fn move_to_back(&mut self, idx: u32) {
        if self.tail == idx {
            return;
        }
        let key = self.nodes[idx as usize].key;
        self.unlink(idx);
        self.free.pop(); // reuse the slot we just freed
        let node = ListNode {
            key,
            prev: self.tail,
            next: NIL,
        };
        self.nodes[idx as usize] = node;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// The eviction-order index. LRU and FIFO only ever need queue order, so
/// they get the O(1) list; Perfect-LFU and GD-Size order by a computed
/// priority and keep the `BTreeSet`. Both indices yield the exact same
/// victim sequence the old all-`BTreeSet` representation produced: for
/// LRU/FIFO the old order key was a strictly monotone counter, so set
/// order ≡ insertion/touch order ≡ list order.
#[derive(Debug, Clone)]
enum OrderIndex {
    Tree(BTreeSet<((u64, u64), ObjectKey)>),
    List(OrderList),
}

/// A byte-capacity cache over [`ObjectKey`]s.
///
/// All four policies share one entry table (an `FxHashMap` — see the
/// determinism note in `rustc-hash`); the policy decides the shape of the
/// eviction-order index (`OrderIndex`). Eviction pops the lowest-priority
/// (or oldest) entry, skipping pinned entries.
#[derive(Debug, Clone)]
pub struct ByteCache {
    policy: EvictionPolicy,
    capacity: u64,
    used: u64,
    entries: FxHashMap<ObjectKey, Entry>,
    order: OrderIndex,
    /// Monotone counter used for priority ties in the `Tree` index.
    tick: u64,
    /// Perfect-LFU frequency table (survives eviction).
    freq: FxHashMap<ObjectKey, u64>,
    /// GD-Size inflation value L (scaled by `GD_SCALE`).
    gd_inflation: u64,
    hits: u64,
    misses: u64,
}

/// GD-Size priorities are fractional; scale into integers for the ordered
/// set. One unit = 1/GD_SCALE of "cost per byte".
const GD_SCALE: f64 = 1.0e12;

impl ByteCache {
    /// An empty cache of `capacity` bytes under `policy`.
    pub fn new(policy: EvictionPolicy, capacity: u64) -> Self {
        let order = match policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => OrderIndex::List(OrderList::new()),
            EvictionPolicy::PerfectLfu | EvictionPolicy::GdSize => {
                OrderIndex::Tree(BTreeSet::new())
            }
        };
        ByteCache {
            policy,
            capacity,
            used: 0,
            entries: FxHashMap::default(),
            order,
            tick: 0,
            freq: FxHashMap::default(),
            gd_inflation: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses) counters from `lookup`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Priority key for the `Tree` index policies.
    fn order_key_for(&mut self, key: ObjectKey, size: u64) -> (u64, u64) {
        match self.policy {
            EvictionPolicy::Lru | EvictionPolicy::Fifo => unreachable!("list policies"),
            EvictionPolicy::PerfectLfu => {
                let f = *self.freq.get(&key).unwrap_or(&0);
                (f, self.next_tick())
            }
            EvictionPolicy::GdSize => {
                // priority = L + cost/size, with unit cost per object.
                let prio = self.gd_inflation as f64 + GD_SCALE / size.max(1) as f64;
                (prio as u64, self.next_tick())
            }
        }
    }

    fn reorder(&mut self, key: ObjectKey) {
        if self.policy == EvictionPolicy::Fifo {
            return; // FIFO ignores accesses
        }
        let Some(entry) = self.entries.get(&key) else {
            return;
        };
        match &mut self.order {
            OrderIndex::List(list) => list.move_to_back(entry.node),
            OrderIndex::Tree(_) => {
                let size = entry.size;
                let old = entry.order_key;
                let new = self.order_key_for(key, size);
                let OrderIndex::Tree(tree) = &mut self.order else {
                    unreachable!()
                };
                tree.remove(&(old, key));
                tree.insert((new, key));
                if let Some(e) = self.entries.get_mut(&key) {
                    e.order_key = new;
                }
            }
        }
    }

    /// Is `key` present? Updates hit/miss stats and recency/frequency.
    pub fn lookup(&mut self, key: ObjectKey) -> bool {
        // Perfect-LFU counts every *request*, hit or miss.
        if self.policy == EvictionPolicy::PerfectLfu {
            *self.freq.entry(key).or_insert(0) += 1;
        }
        if self.entries.contains_key(&key) {
            self.hits += 1;
            self.reorder(key);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Presence check without touching stats or ordering.
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Insert `key` (`size` bytes), evicting until it fits. Returns the
    /// evicted `(key, size)` pairs so callers can demote them to a lower
    /// tier. Objects larger than the whole capacity are not admitted.
    /// Re-inserting an existing key refreshes it.
    pub fn insert(&mut self, key: ObjectKey, size: u64) -> Vec<(ObjectKey, u64)> {
        if size > self.capacity {
            return Vec::new();
        }
        if self.entries.contains_key(&key) {
            self.reorder(key);
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used + size > self.capacity {
            match self.pop_victim() {
                Some(victim) => evicted.push(victim),
                None => return evicted, // everything pinned; cannot admit
            }
        }
        let (order_key, node) = match &mut self.order {
            OrderIndex::List(list) => ((0, 0), list.push_back(key)),
            OrderIndex::Tree(_) => {
                let ok = self.order_key_for(key, size);
                let OrderIndex::Tree(tree) = &mut self.order else {
                    unreachable!()
                };
                tree.insert((ok, key));
                (ok, NIL)
            }
        };
        self.entries.insert(
            key,
            Entry {
                size,
                order_key,
                node,
                pinned: false,
            },
        );
        self.used += size;
        evicted
    }

    /// Drop every entry at once (a process restart losing its in-memory
    /// contents). Lifetime hit/miss stats and the Perfect-LFU frequency
    /// history survive — they model knowledge that outlives a restart —
    /// but pins are lost with the entries that held them.
    pub fn clear(&mut self) {
        self.entries.clear();
        match &mut self.order {
            OrderIndex::List(list) => list.clear(),
            OrderIndex::Tree(tree) => tree.clear(),
        }
        self.used = 0;
    }

    /// Pin `key` so it is never evicted (used by the "cache the first chunk
    /// of every video" policy). No-op if absent.
    pub fn pin(&mut self, key: ObjectKey) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.pinned = true;
        }
    }

    /// Remove a specific key (e.g. when promoting between tiers).
    pub fn remove(&mut self, key: ObjectKey) -> bool {
        if let Some(e) = self.entries.remove(&key) {
            match &mut self.order {
                OrderIndex::List(list) => list.unlink(e.node),
                OrderIndex::Tree(tree) => {
                    tree.remove(&(e.order_key, key));
                }
            }
            self.used -= e.size;
            true
        } else {
            false
        }
    }

    /// Evict the policy's victim, skipping pinned entries.
    fn pop_victim(&mut self) -> Option<(ObjectKey, u64)> {
        let key = match &self.order {
            OrderIndex::List(list) => {
                let mut idx = list.head;
                loop {
                    if idx == NIL {
                        return None;
                    }
                    let k = list.nodes[idx as usize].key;
                    if !self.entries.get(&k).map(|e| e.pinned).unwrap_or(false) {
                        break k;
                    }
                    idx = list.nodes[idx as usize].next;
                }
            }
            OrderIndex::Tree(tree) => {
                let (_, k) = *tree
                    .iter()
                    .find(|(_, k)| !self.entries.get(k).map(|e| e.pinned).unwrap_or(false))?;
                k
            }
        };
        let e = self.entries.remove(&key).expect("order/entries in sync");
        match &mut self.order {
            OrderIndex::List(list) => list.unlink(e.node),
            OrderIndex::Tree(tree) => {
                tree.remove(&(e.order_key, key));
            }
        }
        self.used -= e.size;
        if self.policy == EvictionPolicy::GdSize {
            // GD-Size: the evicted priority becomes the new inflation L.
            self.gd_inflation = e.order_key.0;
        }
        Some((key, e.size))
    }
}
