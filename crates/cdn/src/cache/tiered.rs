//! The ATS-style two-tier (RAM + disk) cache, with admission gating.

use super::{ByteCache, EvictionPolicy, ObjectKey};
use crate::ats::CacheStatus;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Cache admission policy: which backend fills are worth caching at all.
///
/// Under a Zipf workload most of the *distinct* objects are one-hit
/// wonders; admitting them evicts useful content. CDNs commonly gate
/// admission (Bloom-filter second-hit caching, probabilistic admission) —
/// a natural companion ablation to the paper's eviction-policy take-away.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum AdmissionPolicy {
    /// Admit every fill (the deployed baseline).
    #[default]
    Always,
    /// Admit an object only on its second request ("cache on second hit").
    OnSecondRequest,
    /// Admit each fill with this probability.
    Probabilistic(f64),
}

/// Configuration of the two-tier (RAM + disk) cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieredCacheConfig {
    /// RAM cache capacity, bytes.
    pub ram_bytes: u64,
    /// Disk cache capacity, bytes.
    pub disk_bytes: u64,
    /// Eviction policy used by both tiers.
    pub policy: EvictionPolicy,
    /// Admission gate for backend fills.
    pub admission: AdmissionPolicy,
}

impl Default for TieredCacheConfig {
    fn default() -> Self {
        TieredCacheConfig {
            ram_bytes: 2 * 1024 * 1024 * 1024,
            disk_bytes: 24 * 1024 * 1024 * 1024,
            policy: EvictionPolicy::Lru,
            admission: AdmissionPolicy::Always,
        }
    }
}

/// Movement counters for the two-tier cache: how much churn the serve
/// path generated. Deterministic (pure functions of the request stream),
/// aggregated across servers in canonical order by the observability
/// layer. Warming (`fill_disk` / `fill_ram`) is not counted — it happens
/// once before the event loop and is not churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierChurn {
    /// Disk-tier objects promoted to RAM on a disk hit.
    pub promotions: u64,
    /// RAM victims demoted to the disk tier.
    pub demotions: u64,
    /// Backend fills admitted on the serve path.
    pub fills: u64,
    /// Objects evicted from the disk tier outright.
    pub disk_evictions: u64,
}

/// The ATS-style two-tier cache: a RAM cache in front of a disk cache.
///
/// Lookup order is RAM → disk → miss (§4.1: "The server first checks the
/// main memory cache, then tries the disk, and finally sends a request to a
/// backend server"). Disk hits are promoted to RAM; RAM evictions demote to
/// disk (they were recently useful); backend fills land in both tiers.
#[derive(Debug, Clone)]
pub struct TieredCache {
    ram: ByteCache,
    disk: ByteCache,
    admission: AdmissionPolicy,
    /// Request counts for second-hit admission (requests, not hits).
    seen: FxHashMap<ObjectKey, u32>,
    churn: TierChurn,
}

impl TieredCache {
    /// Build from config.
    pub fn new(cfg: TieredCacheConfig) -> Self {
        TieredCache {
            ram: ByteCache::new(cfg.policy, cfg.ram_bytes),
            disk: ByteCache::new(cfg.policy, cfg.disk_bytes),
            admission: cfg.admission,
            seen: FxHashMap::default(),
            churn: TierChurn::default(),
        }
    }

    /// Serve-path movement counters accumulated so far.
    pub fn churn(&self) -> TierChurn {
        self.churn
    }

    /// Should a backend fill of `key` be admitted, per the configured
    /// policy? Second-hit counting is updated by this call, so invoke it
    /// exactly once per miss.
    pub fn should_admit(&mut self, key: ObjectKey, rng: &mut streamlab_sim::RngStream) -> bool {
        match self.admission {
            AdmissionPolicy::Always => true,
            AdmissionPolicy::OnSecondRequest => {
                let c = self.seen.entry(key).or_insert(0);
                *c += 1;
                *c >= 2
            }
            AdmissionPolicy::Probabilistic(p) => rng.chance(p),
        }
    }

    /// The RAM tier.
    pub fn ram(&self) -> &ByteCache {
        &self.ram
    }

    /// The disk tier.
    pub fn disk(&self) -> &ByteCache {
        &self.disk
    }

    /// Look up an object; promotes/demotes/fills as a side effect and
    /// returns where it was found.
    pub fn fetch(&mut self, key: ObjectKey, size: u64) -> CacheStatus {
        if self.ram.lookup(key) {
            return CacheStatus::RamHit;
        }
        if self.disk.lookup(key) {
            // Promote to RAM; demoted RAM victims fall back to disk (they
            // were recently useful, so they deserve a disk slot).
            self.churn.promotions += 1;
            for (victim, vsize) in self.ram.insert(key, size) {
                self.churn.demotions += 1;
                self.churn.disk_evictions += self.disk.insert(victim, vsize).len() as u64;
            }
            return CacheStatus::DiskHit;
        }
        CacheStatus::Miss
    }

    /// Install a backend fill into both tiers; RAM victims demote to disk.
    pub fn fill(&mut self, key: ObjectKey, size: u64) {
        self.churn.fills += 1;
        self.churn.disk_evictions += self.disk.insert(key, size).len() as u64;
        for (victim, vsize) in self.ram.insert(key, size) {
            self.churn.demotions += 1;
            self.churn.disk_evictions += self.disk.insert(victim, vsize).len() as u64;
        }
    }

    /// Install into the disk tier only (cache warming).
    pub fn fill_disk(&mut self, key: ObjectKey, size: u64) {
        self.disk.insert(key, size);
    }

    /// Install into the RAM tier only (cache warming; no demotion churn).
    pub fn fill_ram(&mut self, key: ObjectKey, size: u64) {
        self.ram.insert(key, size);
    }

    /// Wipe the RAM tier (a server restart: memory contents are lost, the
    /// disk tier stays warm). The next requests for the hot working set
    /// fall through to disk or the backend — the paper's §5 churn →
    /// miss-storm mechanism.
    pub fn wipe_ram(&mut self) {
        self.ram.clear();
    }

    /// Pin an object in the disk tier (and RAM if present).
    pub fn pin(&mut self, key: ObjectKey) {
        self.disk.pin(key);
        self.ram.pin(key);
    }

    /// Does either tier hold the object? (No stat/ordering side effects.)
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.ram.contains(key) || self.disk.contains(key)
    }
}
