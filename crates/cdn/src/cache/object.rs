//! The cached-object vocabulary: keys, the manifest sentinel, and the
//! eviction-policy choices.

use serde::{Deserialize, Serialize};
use streamlab_workload::{ChunkIndex, VideoId};

/// The unit of caching: one chunk of one video at one bitrate — or the
/// video's manifest (chunk index `MANIFEST`, bitrate 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectKey {
    /// Which video.
    pub video: VideoId,
    /// Which chunk of the video.
    pub chunk: ChunkIndex,
    /// Encoded bitrate, kbps.
    pub bitrate_kbps: u32,
}

impl ObjectKey {
    /// Sentinel chunk index marking a manifest object.
    pub const MANIFEST: ChunkIndex = ChunkIndex(u32::MAX);

    /// The manifest object of a video (§2: "The session starts with the
    /// player requesting the manifest, which contains a list of chunks in
    /// available bitrates").
    pub fn manifest(video: VideoId) -> ObjectKey {
        ObjectKey {
            video,
            chunk: Self::MANIFEST,
            bitrate_kbps: 0,
        }
    }

    /// True for manifest objects.
    pub fn is_manifest(&self) -> bool {
        self.chunk == Self::MANIFEST
    }
}

/// Size of a manifest document, bytes (a few KB of XML/JSON per rendition
/// list).
pub const MANIFEST_BYTES: u64 = 8 * 1024;

/// Cache replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least-recently-used (the deployed ATS default).
    Lru,
    /// Perfect LFU: evict the least-frequently-accessed object; frequency
    /// counts survive eviction ("perfect").
    PerfectLfu,
    /// GreedyDual-Size: priority = inflation + cost/size, evict the lowest
    /// priority; good for skewed web workloads (Breslau et al.).
    GdSize,
    /// First-in first-out.
    Fifo,
}
