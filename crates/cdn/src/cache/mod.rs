//! Byte-capacity caches with pluggable eviction, and the RAM+disk tier.
//!
//! The production system caches video chunks in "a multi-level and
//! distributed cache (between the main memory and the local disk) ... with
//! an LRU replacement policy" (§2). The §4.1.1 take-away suggests GD-Size
//! or perfect-LFU would fit the popularity-heavy workload better, so those
//! policies are implemented too and exercised by the ablation bench.

mod bytecache;
mod object;
mod tiered;

pub use bytecache::ByteCache;
pub use object::{EvictionPolicy, ObjectKey, MANIFEST_BYTES};
pub use tiered::{AdmissionPolicy, TieredCache, TieredCacheConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ats::CacheStatus;
    use streamlab_workload::{ChunkIndex, VideoId};

    fn key(v: u64, c: u32) -> ObjectKey {
        ObjectKey {
            video: VideoId(v),
            chunk: ChunkIndex(c),
            bitrate_kbps: 1050,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ByteCache::new(EvictionPolicy::Lru, 300);
        c.insert(key(1, 0), 100);
        c.insert(key(2, 0), 100);
        c.insert(key(3, 0), 100);
        assert!(c.lookup(key(1, 0))); // refresh 1
        let evicted = c.insert(key(4, 0), 100);
        assert_eq!(evicted, vec![(key(2, 0), 100)]);
        assert!(c.contains(key(1, 0)));
        assert!(!c.contains(key(2, 0)));
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut c = ByteCache::new(EvictionPolicy::Fifo, 300);
        c.insert(key(1, 0), 100);
        c.insert(key(2, 0), 100);
        c.insert(key(3, 0), 100);
        assert!(c.lookup(key(1, 0))); // access must NOT refresh under FIFO
        let evicted = c.insert(key(4, 0), 100);
        assert_eq!(evicted, vec![(key(1, 0), 100)]);
    }

    #[test]
    fn lfu_keeps_frequent_objects() {
        let mut c = ByteCache::new(EvictionPolicy::PerfectLfu, 300);
        c.insert(key(1, 0), 100);
        c.insert(key(2, 0), 100);
        c.insert(key(3, 0), 100);
        for _ in 0..5 {
            c.lookup(key(1, 0));
            c.lookup(key(3, 0));
        }
        let evicted = c.insert(key(4, 0), 100);
        assert_eq!(evicted, vec![(key(2, 0), 100)]);
    }

    #[test]
    fn perfect_lfu_remembers_across_eviction() {
        let mut c = ByteCache::new(EvictionPolicy::PerfectLfu, 200);
        // Build frequency for key 1 while it is present.
        c.insert(key(1, 0), 100);
        for _ in 0..10 {
            c.lookup(key(1, 0));
        }
        c.insert(key(2, 0), 100);
        // Force key 1 out via explicit remove, then re-insert: its old
        // frequency must still protect it ("perfect" LFU).
        c.remove(key(1, 0));
        c.insert(key(3, 0), 100);
        // Cache now holds {2, 3}, both frequency 0. Re-inserting key 1
        // (remembered frequency 10) evicts the least-frequent, oldest
        // entry — key 2 — and key 1 itself is never the victim.
        c.insert(key(1, 0), 100);
        assert!(c.contains(key(1, 0)));
        assert!(!c.contains(key(2, 0)));
        assert!(c.contains(key(3, 0)));
    }

    #[test]
    fn gdsize_prefers_small_objects_and_inflates() {
        let mut c = ByteCache::new(EvictionPolicy::GdSize, 1000);
        c.insert(key(1, 0), 900); // big ⇒ low priority
        c.insert(key(2, 0), 50); // small ⇒ high priority
        let evicted = c.insert(key(3, 0), 500);
        assert_eq!(evicted, vec![(key(1, 0), 900)]);
        assert!(c.contains(key(2, 0)));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = ByteCache::new(EvictionPolicy::Lru, 1000);
        for i in 0..100 {
            c.insert(key(i, 0), 90 + (i % 7) * 10);
            assert!(c.used() <= c.capacity(), "used {} > cap", c.used());
        }
    }

    #[test]
    fn oversized_objects_are_not_admitted() {
        let mut c = ByteCache::new(EvictionPolicy::Lru, 100);
        let evicted = c.insert(key(1, 0), 500);
        assert!(evicted.is_empty());
        assert!(!c.contains(key(1, 0)));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let mut c = ByteCache::new(EvictionPolicy::Lru, 300);
        c.insert(key(1, 0), 100);
        c.pin(key(1, 0));
        c.insert(key(2, 0), 100);
        c.insert(key(3, 0), 100);
        c.insert(key(4, 0), 100);
        c.insert(key(5, 0), 100);
        assert!(c.contains(key(1, 0)), "pinned entry was evicted");
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ByteCache::new(EvictionPolicy::Lru, 300);
        c.insert(key(1, 0), 100);
        c.insert(key(2, 0), 100);
        c.insert(key(1, 0), 100); // refresh
        assert_eq!(c.len(), 2);
        assert_eq!(c.used(), 200);
        c.insert(key(3, 0), 100);
        let evicted = c.insert(key(4, 0), 100);
        assert_eq!(evicted, vec![(key(2, 0), 100)]); // 1 was refreshed after 2
    }

    #[test]
    fn hit_miss_stats() {
        let mut c = ByteCache::new(EvictionPolicy::Lru, 300);
        c.insert(key(1, 0), 100);
        assert!(c.lookup(key(1, 0)));
        assert!(!c.lookup(key(2, 0)));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn tiered_promotion_and_fill() {
        let mut t = TieredCache::new(TieredCacheConfig {
            ram_bytes: 200,
            disk_bytes: 1000,
            policy: EvictionPolicy::Lru,
            admission: AdmissionPolicy::Always,
        });
        assert_eq!(t.fetch(key(1, 0), 100), CacheStatus::Miss);
        t.fill(key(1, 0), 100);
        assert_eq!(t.fetch(key(1, 0), 100), CacheStatus::RamHit);
        // Push key 1 out of RAM (not disk) with other fills.
        t.fill(key(2, 0), 100);
        t.fill(key(3, 0), 100);
        assert!(!t.ram().contains(key(1, 0)));
        assert!(t.disk().contains(key(1, 0)));
        assert_eq!(t.fetch(key(1, 0), 100), CacheStatus::DiskHit);
        // Promoted back to RAM.
        assert_eq!(t.fetch(key(1, 0), 100), CacheStatus::RamHit);
    }

    #[test]
    fn admission_second_request_gate() {
        use streamlab_sim::RngStream;
        let mut t = TieredCache::new(TieredCacheConfig {
            ram_bytes: 10_000,
            disk_bytes: 10_000,
            policy: EvictionPolicy::Lru,
            admission: AdmissionPolicy::OnSecondRequest,
        });
        let mut rng = RngStream::new(1, "adm");
        assert!(
            !t.should_admit(key(1, 0), &mut rng),
            "first request rejected"
        );
        assert!(
            t.should_admit(key(1, 0), &mut rng),
            "second request admitted"
        );
        assert!(t.should_admit(key(1, 0), &mut rng), "third too");
        assert!(
            !t.should_admit(key(2, 0), &mut rng),
            "other keys independent"
        );
    }

    #[test]
    fn admission_probabilistic_rate() {
        use streamlab_sim::RngStream;
        let mut t = TieredCache::new(TieredCacheConfig {
            ram_bytes: 10_000,
            disk_bytes: 10_000,
            policy: EvictionPolicy::Lru,
            admission: AdmissionPolicy::Probabilistic(0.3),
        });
        let mut rng = RngStream::new(2, "adm");
        let admitted = (0..10_000)
            .filter(|i| t.should_admit(key(i % 97, 0), &mut rng))
            .count() as f64;
        let rate = admitted / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn admission_always_is_default_and_permissive() {
        use streamlab_sim::RngStream;
        let mut t = TieredCache::new(TieredCacheConfig::default());
        let mut rng = RngStream::new(3, "adm");
        for i in 0..100 {
            assert!(t.should_admit(key(i, 0), &mut rng));
        }
    }

    #[test]
    fn lru_beats_fifo_on_zipf_like_reuse() {
        // A popularity-skewed request stream should see better hit rates
        // under LRU than FIFO (recency captures popularity reuse).
        use streamlab_sim::dist::Zipf;
        use streamlab_sim::RngStream;
        let mut rng = RngStream::new(42, "cache-zipf");
        let z = Zipf::new(500, 1.0);
        let mut lru = ByteCache::new(EvictionPolicy::Lru, 50 * 100);
        let mut fifo = ByteCache::new(EvictionPolicy::Fifo, 50 * 100);
        for _ in 0..20_000 {
            let k = key(z.sample_rank(&mut rng) as u64, 0);
            if !lru.lookup(k) {
                lru.insert(k, 100);
            }
            if !fifo.lookup(k) {
                fifo.insert(k, 100);
            }
        }
        let (lh, lm) = lru.stats();
        let (fh, fm) = fifo.stats();
        let lru_rate = lh as f64 / (lh + lm) as f64;
        let fifo_rate = fh as f64 / (fh + fm) as f64;
        assert!(lru_rate > fifo_rate, "lru {lru_rate} vs fifo {fifo_rate}");
    }

    #[test]
    fn lfu_beats_lru_on_zipf_head_retention() {
        use streamlab_sim::dist::Zipf;
        use streamlab_sim::RngStream;
        let mut rng = RngStream::new(43, "cache-zipf2");
        let z = Zipf::new(2_000, 0.9);
        let mut lru = ByteCache::new(EvictionPolicy::Lru, 100 * 100);
        let mut lfu = ByteCache::new(EvictionPolicy::PerfectLfu, 100 * 100);
        for _ in 0..40_000 {
            let k = key(z.sample_rank(&mut rng) as u64, 0);
            if !lru.lookup(k) {
                lru.insert(k, 100);
            }
            if !lfu.lookup(k) {
                lfu.insert(k, 100);
            }
        }
        let (lh, lm) = lru.stats();
        let (fh, fm) = lfu.stats();
        let lru_rate = lh as f64 / (lh + lm) as f64;
        let lfu_rate = fh as f64 / (fh + fm) as f64;
        // §4.1.1 take-away: perfect-LFU suits popularity-heavy workloads.
        assert!(lfu_rate > lru_rate, "lfu {lfu_rate} vs lru {lru_rate}");
    }
}
