//! The problem-localization table: every session in the joined dataset
//! attributed to the CDN server, the network path, the client download
//! stack, the rendering path, or classified healthy.
//!
//! This is the *offline* half of the localization pass. The simulator's
//! recorder applies [`streamlab_obs::diagnose`]'s rules online, per
//! event, and feeds the `loc_*` counters in `SimMetrics`; this module
//! re-derives the same per-session diagnoses from the beacon-side
//! records alone — the vantage point the paper actually had. The two
//! disagree in two structural ways worth knowing when comparing them:
//!
//! * the dataset is proxy-filtered, so the offline table covers fewer
//!   sessions than the online counters;
//! * abort reasons are an engine-side fact that never reaches the beacon
//!   records, so aborted sessions are classified here by their stall and
//!   drop history like any other session.

use serde::{Deserialize, Serialize};
use streamlab_obs::{classify_session, ChunkBreakdown, ProblemClass, RebufferShares};
use streamlab_telemetry::Dataset;

/// One problem class's share of the dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizationRow {
    /// Stable class label (`server`, `network`, `client_stack`,
    /// `rendering`, `healthy`).
    pub class: String,
    /// Sessions diagnosed with this class.
    pub sessions: usize,
    /// Fraction of all dataset sessions.
    pub session_share: f64,
    /// Rebuffer events attributed to this class across all sessions.
    pub rebuffers: u64,
}

/// The localization table: a fixed five-row partition of the dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Localization {
    /// One row per class, in `server, network, client_stack, rendering,
    /// healthy` order. Session counts partition `total_sessions`.
    pub rows: Vec<LocalizationRow>,
    /// Sessions diagnosed (the proxy-filtered dataset).
    pub total_sessions: usize,
    /// Rebuffer events attributed (every stall lands in exactly one of
    /// the first three rows).
    pub total_rebuffers: u64,
}

/// Diagnose every session in the dataset and tabulate the classes.
pub fn localization(ds: &Dataset) -> Localization {
    const CLASSES: [ProblemClass; 5] = [
        ProblemClass::Server,
        ProblemClass::Network,
        ProblemClass::ClientStack,
        ProblemClass::Rendering,
        ProblemClass::Healthy,
    ];
    let slot = |class: ProblemClass| CLASSES.iter().position(|&c| c == class).expect("fixed set");
    let mut sessions = [0usize; 5];
    let mut rebuffers = [0u64; 5];

    for s in &ds.sessions {
        let mut shares = RebufferShares::default();
        let mut frames = 0u64;
        let mut dropped = 0u64;
        for c in &s.chunks {
            // Same partition the recorder uses: server serve time and
            // download-stack residence are measured, the network gets the
            // remainder of D_FB + D_LB.
            let total_ns = (c.player.d_fb + c.player.d_lb).as_nanos();
            let breakdown = ChunkBreakdown::from_phases(
                total_ns,
                c.cdn.server_total().as_nanos(),
                c.player.truth.dds.as_nanos(),
            );
            if c.player.buf_count > 0 {
                shares.add(breakdown.dominant(), u64::from(c.player.buf_count));
            }
            frames += u64::from(c.player.frames);
            dropped += u64::from(c.player.dropped_frames);
        }
        let class = classify_session(&shares, None, frames, dropped);
        sessions[slot(class)] += 1;
        rebuffers[slot(ProblemClass::Server)] += shares.server;
        rebuffers[slot(ProblemClass::Network)] += shares.network;
        rebuffers[slot(ProblemClass::ClientStack)] += shares.stack;
    }

    let total_sessions = ds.sessions.len();
    let total_rebuffers = rebuffers.iter().sum();
    let rows = CLASSES
        .iter()
        .enumerate()
        .map(|(i, class)| LocalizationRow {
            class: class.label().to_owned(),
            sessions: sessions[i],
            session_share: if total_sessions == 0 {
                0.0
            } else {
                sessions[i] as f64 / total_sessions as f64
            },
            rebuffers: rebuffers[i],
        })
        .collect();
    Localization {
        rows,
        total_sessions,
        total_rebuffers,
    }
}

impl Localization {
    /// Render the table as aligned text (the experiment exhibit body).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>10} {:>8} {:>10}\n",
            "class", "sessions", "share", "rebuffers"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>10} {:>7.1}% {:>10}\n",
                r.class,
                r.sessions,
                100.0 * r.session_share,
                r.rebuffers
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>10} {:>8} {:>10}\n",
            "total", self.total_sessions, "", self.total_rebuffers
        ));
        out
    }
}
