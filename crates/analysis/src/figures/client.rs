//! §4.3/§4.4 exhibits: download-stack problems (Figs. 17–18, Table 5) and
//! rendering quality (Figs. 19, 21, 22).

use super::CdfSeries;
use crate::detect::{detect_transient_buffering, estimate_dds_lower_bound};
use crate::stats::{BinnedSeries, Cdf};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamlab_sim::SimDuration;
use streamlab_telemetry::Dataset;
use streamlab_workload::{Browser, Os};

/// Fig. 17 / §4.3.1 output: detector aggregates, validation against
/// simulation ground truth, and one example session to plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17 {
    /// Chunks flagged by the Eq. 4 detector.
    pub flagged_chunks: usize,
    /// All chunks screened.
    pub total_chunks: usize,
    /// Sessions with at least one flagged chunk (paper: 3.1 %).
    pub affected_sessions: usize,
    /// All sessions.
    pub total_sessions: usize,
    /// Detector precision against ground truth (flagged ∧ truly buffered /
    /// flagged) — unavailable to the paper, available to the simulator.
    pub precision: f64,
    /// Detector recall (flagged ∧ truly buffered / truly buffered).
    pub recall: f64,
    /// An example session: per-chunk series for the Fig. 17 panels.
    pub example: Option<Fig17Example>,
}

/// The per-chunk series of the Fig. 17 case-study session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Example {
    /// `D_FB` per chunk, ms (Fig. 17a).
    pub dfb_ms: Vec<f64>,
    /// SRTT per chunk, ms (Fig. 17a).
    pub srtt_ms: Vec<f64>,
    /// Server latency per chunk, ms (Fig. 17a).
    pub server_ms: Vec<f64>,
    /// Connection throughput per chunk from Eq. 3, Mbps (Fig. 17b).
    pub conn_tp_mbps: Vec<f64>,
    /// Instantaneous download throughput per chunk, Mbps (Fig. 17b).
    pub inst_tp_mbps: Vec<f64>,
    /// The flagged chunk's index.
    pub flagged_chunk: u32,
}

/// Run the Eq. 4 detector over the dataset (Fig. 17).
pub fn fig17(ds: &Dataset) -> Fig17 {
    let mut flagged = 0usize;
    let mut total = 0usize;
    let mut affected = 0usize;
    let mut true_pos = 0usize;
    let mut truth_total = 0usize;
    let mut example = None;

    for s in &ds.sessions {
        let flags = detect_transient_buffering(s);
        total += s.chunks.len();
        truth_total += s
            .chunks
            .iter()
            .filter(|c| c.player.truth.transient_buffered)
            .count();
        let mut any = false;
        let mut session_flagged = Vec::new();
        for f in &flags {
            if f.flagged() {
                flagged += 1;
                any = true;
                session_flagged.push(f.chunk);
                if s.chunks[f.chunk as usize].player.truth.transient_buffered {
                    true_pos += 1;
                }
            }
        }
        if any {
            affected += 1;
            // Pick a clean example: exactly one flagged chunk, mid-session.
            if example.is_none() && session_flagged.len() == 1 && s.chunks.len() >= 8 {
                let fc = session_flagged[0];
                if fc > 0 && (fc as usize) < s.chunks.len() - 1 {
                    example = Some(Fig17Example {
                        dfb_ms: s
                            .chunks
                            .iter()
                            .map(|c| c.player.d_fb.as_millis_f64())
                            .collect(),
                        srtt_ms: s
                            .chunks
                            .iter()
                            .map(|c| {
                                c.cdn
                                    .last_tcp()
                                    .map(|t| t.srtt.as_millis_f64())
                                    .unwrap_or(f64::NAN)
                            })
                            .collect(),
                        server_ms: s
                            .chunks
                            .iter()
                            .map(|c| c.cdn.server_total().as_millis_f64())
                            .collect(),
                        conn_tp_mbps: s
                            .chunks
                            .iter()
                            .map(|c| c.cdn.last_tcp().map(|t| t.throughput_mbps()).unwrap_or(0.0))
                            .collect(),
                        inst_tp_mbps: s
                            .chunks
                            .iter()
                            .map(|c| c.player.instantaneous_tp_mbps())
                            .collect(),
                        flagged_chunk: fc,
                    });
                }
            }
        }
    }
    Fig17 {
        flagged_chunks: flagged,
        total_chunks: total,
        affected_sessions: affected,
        total_sessions: ds.sessions.len(),
        precision: if flagged == 0 {
            1.0
        } else {
            true_pos as f64 / flagged as f64
        },
        recall: if truth_total == 0 {
            1.0
        } else {
            true_pos as f64 / truth_total as f64
        },
        example,
    }
}

/// Fig. 18: `D_FB` of first vs other chunks over a performance-equivalent
/// set — no loss, `CWND > 10`, SRTT within a narrow band, fast cache hit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig18 {
    /// CDF of `D_FB` (ms) for first chunks in the equivalence set.
    pub first: CdfSeries,
    /// CDF of `D_FB` (ms) for the other chunks.
    pub other: CdfSeries,
    /// Median gap, ms (paper: ~300 ms).
    pub median_gap_ms: f64,
}

/// Compute Fig. 18. `srtt_band_ms` narrows the set the way the paper's
/// (60 ms, 65 ms) choice does; a wider band trades equivalence for sample
/// count.
pub fn fig18(ds: &Dataset, srtt_band_ms: (f64, f64), points: usize) -> Fig18 {
    let mut first = Vec::new();
    let mut other = Vec::new();
    for (_, c) in ds.chunks() {
        let Some(tcp) = c.cdn.last_tcp() else {
            continue;
        };
        let srtt = tcp.srtt.as_millis_f64();
        let equivalent = c.cdn.retx_segments == 0
            && tcp.cwnd > 10
            && srtt >= srtt_band_ms.0
            && srtt <= srtt_band_ms.1
            && c.cdn.d_cdn() < SimDuration::from_millis(5)
            && c.cdn.cache.is_hit();
        if !equivalent {
            continue;
        }
        let dfb = c.player.d_fb.as_millis_f64();
        if c.chunk().is_first() {
            first.push(dfb);
        } else {
            other.push(dfb);
        }
    }
    let cf = Cdf::new(first);
    let co = Cdf::new(other);
    Fig18 {
        median_gap_ms: cf.median() - co.median(),
        first: CdfSeries::from_cdf("first", &cf, points),
        other: CdfSeries::from_cdf("other", &co, points),
    }
}

/// Fig. 19: % dropped frames vs chunk download rate (plus the GPU bar).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig19 {
    /// Dropped % binned by download rate (s/s), software rendering,
    /// visible chunks.
    pub by_rate: BinnedSeries,
    /// Mean dropped % over hardware-rendered chunks (the figure's first
    /// bar).
    pub hardware_mean_pct: f64,
}

/// Compute Fig. 19.
pub fn fig19(ds: &Dataset) -> Fig19 {
    let mut pairs = Vec::new();
    let mut hw = Vec::new();
    for (meta, c) in ds.chunks() {
        if !c.player.visible {
            continue;
        }
        let drop_pct = 100.0 * c.player.drop_ratio();
        if meta.gpu {
            hw.push(drop_pct);
        } else {
            pairs.push((c.player.download_rate(), drop_pct));
        }
    }
    Fig19 {
        by_rate: BinnedSeries::fixed_width(&pairs, 0.0, 5.0, 20),
        hardware_mean_pct: Cdf::new(hw).mean(),
    }
}

/// One (platform, browser) row of Fig. 21.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig21Row {
    /// Operating system ("platform").
    pub os: Os,
    /// Browser.
    pub browser: Browser,
    /// Share of the platform's chunks served to this browser, percent.
    pub chunk_share_pct: f64,
    /// Mean dropped-frame percentage among those chunks.
    pub dropped_pct: f64,
    /// Chunks observed.
    pub chunks: usize,
}

/// Fig. 21: browser popularity and rendering quality per platform
/// (normalized within each platform like the paper's figure).
pub fn fig21(ds: &Dataset) -> Vec<Fig21Row> {
    let mut acc: HashMap<(Os, Browser), (usize, f64)> = HashMap::new();
    let mut platform_totals: HashMap<Os, usize> = HashMap::new();
    for (meta, c) in ds.chunks() {
        // Hidden players drop frames by design; keep them out of the
        // per-browser quality comparison.
        if !c.player.visible {
            continue;
        }
        let e = acc.entry((meta.os, meta.browser)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += 100.0 * c.player.drop_ratio();
        *platform_totals.entry(meta.os).or_insert(0) += 1;
    }
    let mut rows: Vec<Fig21Row> = acc
        .into_iter()
        .map(|((os, browser), (n, drop_sum))| Fig21Row {
            os,
            browser,
            chunk_share_pct: 100.0 * n as f64 / *platform_totals.get(&os).unwrap_or(&1) as f64,
            dropped_pct: drop_sum / n as f64,
            chunks: n,
        })
        .collect();
    // The share key is coarse (2 decimals) and rows start in HashMap order,
    // so ties need a total tie-break or the output order is nondeterministic
    // per process.
    rows.sort_unstable_by(|a, b| {
        (
            a.os.label(),
            std::cmp::Reverse((a.chunk_share_pct * 100.0) as u64),
            a.browser.label(),
        )
            .cmp(&(
                b.os.label(),
                std::cmp::Reverse((b.chunk_share_pct * 100.0) as u64),
                b.browser.label(),
            ))
    });
    rows
}

/// One row of Fig. 22: an unpopular (browser, OS) pair under *good*
/// conditions (rate ≥ 1.5 s/s, visible) still dropping frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig22Row {
    /// Label, e.g. "Yandex,Windows".
    pub label: String,
    /// Mean dropped %, good conditions only.
    pub dropped_pct: f64,
    /// Chunks observed (the paper requires ≥ 500).
    pub chunks: usize,
}

/// Fig. 22 output: unpopular pairs plus the baseline mean over the rest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig22 {
    /// Unpopular (browser, OS) pairs, sorted by dropped % descending.
    pub rows: Vec<Fig22Row>,
    /// "Average in the rest": mean dropped % over all other chunks under
    /// the same good-condition filter.
    pub rest_avg_pct: f64,
}

/// Compute Fig. 22. `min_chunks` mirrors the paper's ≥ 500-chunk rule
/// (scale it down with the dataset).
pub fn fig22(ds: &Dataset, min_chunks: usize) -> Fig22 {
    let mut acc: HashMap<(Os, Browser), (usize, f64)> = HashMap::new();
    let mut rest_n = 0usize;
    let mut rest_sum = 0.0;
    for (meta, c) in ds.chunks() {
        if !c.player.visible || c.player.download_rate() < 1.5 {
            continue;
        }
        let unpopular = meta.browser.is_unpopular()
            || (meta.browser == Browser::Safari && meta.os != Os::MacOs);
        let drop_pct = 100.0 * c.player.drop_ratio();
        if unpopular {
            let e = acc.entry((meta.os, meta.browser)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += drop_pct;
        } else {
            rest_n += 1;
            rest_sum += drop_pct;
        }
    }
    let mut rows: Vec<Fig22Row> = acc
        .into_iter()
        .filter(|(_, (n, _))| *n >= min_chunks)
        .map(|((os, browser), (n, sum))| Fig22Row {
            label: format!("{},{}", browser.label(), os.label()),
            dropped_pct: sum / n as f64,
            chunks: n,
        })
        .collect();
    rows.sort_unstable_by(|a, b| {
        b.dropped_pct
            .partial_cmp(&a.dropped_pct)
            .unwrap()
            .then_with(|| a.label.cmp(&b.label))
    });
    Fig22 {
        rows,
        rest_avg_pct: if rest_n == 0 {
            0.0
        } else {
            rest_sum / rest_n as f64
        },
    }
}

/// One row of Table 5: a platform's mean estimated download-stack latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab05Row {
    /// Operating system.
    pub os: Os,
    /// Browser.
    pub browser: Browser,
    /// Mean Eq. 5 `D_DS` bound over the platform's non-zero chunks, ms.
    pub mean_ds_ms: f64,
    /// Chunks with a non-zero bound.
    pub nonzero_chunks: usize,
    /// All chunks of the platform.
    pub chunks: usize,
}

/// Table 5 output plus the §4.3.2 headline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab05 {
    /// Platforms sorted by mean `D_DS` descending (min sample rule
    /// applied).
    pub rows: Vec<Tab05Row>,
    /// Fraction of all chunks with a non-zero `D_DS` bound (paper:
    /// 17.6 %).
    pub nonzero_fraction: f64,
}

/// Compute Table 5 via the Eq. 5 estimator.
///
/// Chunks flagged by the Eq. 4 *transient*-buffering detector are excluded
/// first: §4.3.2 characterizes the persistent download-stack latency of a
/// platform, and a handful of multi-second transient holds would otherwise
/// dominate the mean of any high-volume browser.
pub fn tab05(ds: &Dataset, min_chunks: usize) -> Tab05 {
    let mut acc: HashMap<(Os, Browser), (usize, usize, f64)> = HashMap::new();
    let mut nonzero = 0usize;
    let mut total = 0usize;
    for s in &ds.sessions {
        let flags = detect_transient_buffering(s);
        for (i, c) in s.chunks.iter().enumerate() {
            if flags.get(i).map(|f| f.flagged()).unwrap_or(false) {
                continue;
            }
            let est = estimate_dds_lower_bound(c);
            let e = acc
                .entry((s.meta.os, s.meta.browser))
                .or_insert((0, 0, 0.0));
            e.0 += 1;
            total += 1;
            if !est.is_zero() {
                e.1 += 1;
                e.2 += est.as_millis_f64();
                nonzero += 1;
            }
        }
    }
    // A platform needs a meaningful number of non-zero observations for
    // its mean to be a ranking, not noise — and the problem must be
    // *prevalent* on the platform (≥ 5 % of its chunks), or a handful of
    // freak events on a high-volume browser would outrank a platform that
    // is slow on every chunk.
    let min_nonzero = (min_chunks / 2).max(20);
    let mut rows: Vec<Tab05Row> = acc
        .into_iter()
        .filter(|(_, (n, nz, _))| {
            *n >= min_chunks && *nz >= min_nonzero && *nz as f64 >= 0.05 * *n as f64
        })
        .map(|((os, browser), (n, nz, sum))| Tab05Row {
            os,
            browser,
            mean_ds_ms: sum / nz as f64,
            nonzero_chunks: nz,
            chunks: n,
        })
        .collect();
    rows.sort_unstable_by(|a, b| {
        b.mean_ds_ms
            .partial_cmp(&a.mean_ds_ms)
            .unwrap()
            .then_with(|| (a.os.label(), a.browser.label()).cmp(&(b.os.label(), b.browser.label())))
    });
    Tab05 {
        rows,
        nonzero_fraction: nonzero as f64 / total.max(1) as f64,
    }
}

/// §4.3.2's QoE tie-in: mean download-stack latency bucketed by session
/// rebuffering rate. The paper: "among sessions with no re-buffering, the
/// average D_DS is less than 100 ms. In sessions with up to 10 %
/// re-buffering, the average D_DS grows up to 250 ms, and in sessions with
/// more than 10 % re-buffering rate, the average D_DS is more than
/// 500 ms."
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DdsVsRebuffering {
    /// Mean per-chunk *true* D_DS in sessions with no rebuffering, ms.
    pub no_rebuffer_ms: f64,
    /// Mean true D_DS in sessions with 0–10 % rebuffering, ms.
    pub some_rebuffer_ms: f64,
    /// Mean true D_DS in sessions with > 10 % rebuffering, ms.
    pub heavy_rebuffer_ms: f64,
    /// The same buckets using the *Eq. 5 estimate* — what production (and
    /// the paper) can actually measure. The estimate inflates whenever
    /// `D_FB` outruns the RTO (network queueing, spikes), so it couples to
    /// rebuffering through the network even when the true stack latency
    /// does not. Comparing the two columns separates the stack's causal
    /// share from the estimator's network sensitivity.
    pub est_no_rebuffer_ms: f64,
    /// Eq. 5 estimate, 0–10 % bucket.
    pub est_some_rebuffer_ms: f64,
    /// Eq. 5 estimate, > 10 % bucket.
    pub est_heavy_rebuffer_ms: f64,
    /// Session counts per bucket.
    pub counts: [usize; 3],
}

/// Compute the §4.3.2 buckets, with both ground-truth and Eq. 5-estimated
/// per-session mean D_DS.
pub fn dds_vs_rebuffering(ds: &Dataset) -> DdsVsRebuffering {
    let mut truth_sums = [0.0f64; 3];
    let mut est_sums = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for s in &ds.sessions {
        if s.chunks.is_empty() {
            continue;
        }
        let n = s.chunks.len() as f64;
        let mean_truth = s
            .chunks
            .iter()
            .map(|c| c.player.truth.dds.as_millis_f64())
            .sum::<f64>()
            / n;
        let mean_est = s
            .chunks
            .iter()
            .map(|c| estimate_dds_lower_bound(c).as_millis_f64())
            .sum::<f64>()
            / n;
        let rate = s.rebuffer_rate_pct();
        let bucket = if rate <= 0.0 {
            0
        } else if rate <= 10.0 {
            1
        } else {
            2
        };
        truth_sums[bucket] += mean_truth;
        est_sums[bucket] += mean_est;
        counts[bucket] += 1;
    }
    let mean = |sums: &[f64; 3], i: usize| {
        if counts[i] == 0 {
            0.0
        } else {
            sums[i] / counts[i] as f64
        }
    };
    DdsVsRebuffering {
        no_rebuffer_ms: mean(&truth_sums, 0),
        some_rebuffer_ms: mean(&truth_sums, 1),
        heavy_rebuffer_ms: mean(&truth_sums, 2),
        est_no_rebuffer_ms: mean(&est_sums, 0),
        est_some_rebuffer_ms: mean(&est_sums, 1),
        est_heavy_rebuffer_ms: mean(&est_sums, 2),
        counts,
    }
}

/// The §4.4.2 bitrate paradox: "Higher bitrates have better rendered
/// framerate" — despite the higher decode cost — because high bitrates are
/// *selected* by the ABR on connections that are better in every other way
/// (lower RTT variation, lower loss).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BitrateParadox {
    /// Sessions averaging above 1 Mbps.
    pub high_sessions: usize,
    /// Sessions at or below 1 Mbps.
    pub low_sessions: usize,
    /// Mean dropped-frame % in high-bitrate sessions.
    pub high_dropped_pct: f64,
    /// Mean dropped-frame % in low-bitrate sessions.
    pub low_dropped_pct: f64,
    /// Mean RTT variance (SRTTVAR, ms) in high-bitrate sessions — the
    /// paper reports it ~5 ms lower than the rest.
    pub high_srttvar_ms: f64,
    /// Mean SRTTVAR (ms) in low-bitrate sessions.
    pub low_srttvar_ms: f64,
    /// Mean retransmission rate in high-bitrate sessions — the paper
    /// reports it >1 % lower than the rest.
    pub high_retx_rate: f64,
    /// Mean retransmission rate in low-bitrate sessions.
    pub low_retx_rate: f64,
}

/// Compute the §4.4.2 comparison, splitting sessions at 1 Mbps average
/// bitrate (visible sessions only — hidden players drop by design).
pub fn bitrate_paradox(ds: &Dataset) -> BitrateParadox {
    let mut acc = BitrateParadox {
        high_sessions: 0,
        low_sessions: 0,
        high_dropped_pct: 0.0,
        low_dropped_pct: 0.0,
        high_srttvar_ms: 0.0,
        low_srttvar_ms: 0.0,
        high_retx_rate: 0.0,
        low_retx_rate: 0.0,
    };
    for s in &ds.sessions {
        if !s.meta.visible || s.chunks.is_empty() {
            continue;
        }
        let dropped: f64 = 100.0 * s.chunks.iter().map(|c| c.player.drop_ratio()).sum::<f64>()
            / s.chunks.len() as f64;
        let srttvar: f64 = {
            let vals: Vec<f64> = s
                .chunks
                .iter()
                .filter_map(|c| c.cdn.last_tcp().map(|t| t.rttvar.as_millis_f64()))
                .collect();
            if vals.is_empty() {
                continue;
            }
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let retx = s.retx_rate();
        if s.avg_bitrate_kbps() > 1_000.0 {
            acc.high_sessions += 1;
            acc.high_dropped_pct += dropped;
            acc.high_srttvar_ms += srttvar;
            acc.high_retx_rate += retx;
        } else {
            acc.low_sessions += 1;
            acc.low_dropped_pct += dropped;
            acc.low_srttvar_ms += srttvar;
            acc.low_retx_rate += retx;
        }
    }
    if acc.high_sessions > 0 {
        let n = acc.high_sessions as f64;
        acc.high_dropped_pct /= n;
        acc.high_srttvar_ms /= n;
        acc.high_retx_rate /= n;
    }
    if acc.low_sessions > 0 {
        let n = acc.low_sessions as f64;
        acc.low_dropped_pct /= n;
        acc.low_srttvar_ms /= n;
        acc.low_retx_rate /= n;
    }
    acc
}
