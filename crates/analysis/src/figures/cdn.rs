//! §4.1 exhibits: content shape (Fig. 3), server latency and its anatomy
//! (Figs. 4–6), and the headline statistics of §3/§4.1.

use super::CdfSeries;
use crate::stats::{BinnedSeries, Cdf};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamlab_telemetry::records::CacheOutcome;
use streamlab_telemetry::Dataset;
use streamlab_workload::Catalog;

/// Fig. 3a: CCDF of video lengths in the catalog.
pub fn fig03a(catalog: &Catalog, points: usize) -> CdfSeries {
    let cdf = Cdf::new(catalog.videos().iter().map(|v| v.duration_s).collect());
    CdfSeries::from_ccdf("video length (s)", &cdf, points)
}

/// Fig. 3b: normalized rank vs normalized play frequency.
pub fn fig03b(ds: &Dataset) -> Vec<(f64, f64)> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for s in &ds.sessions {
        *counts.entry(s.meta.video.raw()).or_insert(0) += 1;
    }
    let mut freq: Vec<u64> = counts.into_values().collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freq.iter().sum();
    let n = freq.len() as f64;
    freq.iter()
        .enumerate()
        .map(|(i, &f)| ((i + 1) as f64 / n, f as f64 / total as f64))
        .collect()
}

/// Fig. 4: startup time vs the first chunk's total server latency
/// (binned; mean, median, IQR per bin).
pub fn fig04(ds: &Dataset) -> BinnedSeries {
    let pairs: Vec<(f64, f64)> = ds
        .sessions
        .iter()
        .filter_map(|s| {
            let first = s.first_chunk()?;
            let x = first.cdn.server_total().as_millis_f64();
            let y = s.meta.startup_delay_s;
            y.is_finite().then_some((x, y))
        })
        .collect();
    BinnedSeries::fixed_width(&pairs, 0.0, 600.0, 12)
}

/// Fig. 5: the CDN latency breakdown — five CDFs.
pub fn fig05(ds: &Dataset, points: usize) -> Vec<CdfSeries> {
    let mut wait = Vec::new();
    let mut open = Vec::new();
    let mut read = Vec::new();
    let mut total_hit = Vec::new();
    let mut total_miss = Vec::new();
    for (_, c) in ds.chunks() {
        wait.push(c.cdn.d_wait.as_millis_f64());
        open.push(c.cdn.d_open.as_millis_f64());
        read.push(c.cdn.d_read.as_millis_f64());
        let total = c.cdn.server_total().as_millis_f64();
        if c.cdn.cache.is_hit() {
            total_hit.push(total);
        } else {
            total_miss.push(total);
        }
    }
    vec![
        CdfSeries::from_cdf("wait", &Cdf::new(wait), points),
        CdfSeries::from_cdf("open", &Cdf::new(open), points),
        CdfSeries::from_cdf("read", &Cdf::new(read), points),
        CdfSeries::from_cdf("total-hit", &Cdf::new(total_hit), points),
        CdfSeries::from_cdf("total-miss", &Cdf::new(total_miss), points),
    ]
}

/// One threshold row of Fig. 6: statistics over chunks of videos with
/// `rank ≥ min_rank`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig06Row {
    /// Rank threshold (x in "Rank ≥ x").
    pub min_rank: usize,
    /// Cache-miss percentage among those chunks (Fig. 6a).
    pub miss_pct: f64,
    /// Median server latency among *hit* chunks, ms (Fig. 6b).
    pub median_hit_server_ms: f64,
    /// Chunks behind the threshold.
    pub chunks: usize,
}

/// Fig. 6: performance vs popularity, for a ladder of rank thresholds.
pub fn fig06(ds: &Dataset, catalog_len: usize, steps: usize) -> Vec<Fig06Row> {
    let steps = steps.max(1);
    (0..steps)
        .map(|i| {
            let min_rank = i * catalog_len / steps;
            let mut misses = 0usize;
            let mut total = 0usize;
            let mut hit_latencies = Vec::new();
            for (meta, c) in ds.chunks() {
                if meta.video.rank() < min_rank.max(1) {
                    continue;
                }
                total += 1;
                if c.cdn.cache.is_hit() {
                    hit_latencies.push(c.cdn.server_total().as_millis_f64());
                } else {
                    misses += 1;
                }
            }
            Fig06Row {
                min_rank,
                miss_pct: if total == 0 {
                    0.0
                } else {
                    100.0 * misses as f64 / total as f64
                },
                median_hit_server_ms: Cdf::new(hit_latencies).median(),
                chunks: total,
            }
        })
        .collect()
}

/// The headline statistics of §3 and §4.1 (cache behaviour, persistence).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeadlineStats {
    /// Sessions after preprocessing.
    pub sessions: usize,
    /// Chunks after preprocessing.
    pub chunks: usize,
    /// Fraction of raw sessions kept by the proxy filter (paper: 0.77).
    pub retention: f64,
    /// Overall cache-miss rate across chunks (paper: ~2 %).
    pub miss_rate: f64,
    /// RAM-hit rate across chunks.
    pub ram_hit_rate: f64,
    /// Fraction of chunks on which the 10 ms retry timer fired (paper:
    /// 35 %).
    pub retry_fraction: f64,
    /// Median total server latency over hit chunks, ms (paper: 2 ms).
    pub hit_median_ms: f64,
    /// Median total server latency over miss chunks, ms (paper: 80 ms).
    pub miss_median_ms: f64,
    /// Share of playbacks going to the top 10 % of videos (paper: ~66 %).
    pub top_decile_play_share: f64,
    /// Mean per-session miss ratio among sessions with ≥ 1 miss (paper:
    /// 60 %).
    pub mean_miss_ratio_in_miss_sessions: f64,
    /// Mean per-session ratio of high-latency (> 10 ms read) chunks among
    /// sessions with ≥ 1 such chunk (paper: 60 %).
    pub mean_slow_ratio_in_slow_sessions: f64,
    /// Fraction of sessions whose first chunk saw server latency above
    /// 100 ms (a server-side QoE problem; paper: ~5 % of sessions have a
    /// server-related QoE problem).
    pub sessions_with_server_problem: f64,
}

/// Compute the headline statistics.
pub fn headline_stats(ds: &Dataset) -> HeadlineStats {
    let mut misses = 0usize;
    let mut ram = 0usize;
    let mut retry = 0usize;
    let mut chunks = 0usize;
    let mut hit_lat = Vec::new();
    let mut miss_lat = Vec::new();
    let mut play_counts: HashMap<u64, u64> = HashMap::new();

    let mut miss_ratios = Vec::new();
    let mut slow_ratios = Vec::new();
    let mut server_problem_sessions = 0usize;

    for s in &ds.sessions {
        *play_counts.entry(s.meta.video.raw()).or_insert(0) += 1;
        let mut s_miss = 0usize;
        let mut s_slow = 0usize;
        for c in &s.chunks {
            chunks += 1;
            match c.cdn.cache {
                CacheOutcome::Miss => {
                    misses += 1;
                    s_miss += 1;
                    miss_lat.push(c.cdn.server_total().as_millis_f64());
                }
                CacheOutcome::RamHit => {
                    ram += 1;
                    hit_lat.push(c.cdn.server_total().as_millis_f64());
                }
                CacheOutcome::DiskHit => {
                    hit_lat.push(c.cdn.server_total().as_millis_f64());
                }
            }
            if c.cdn.retry_fired {
                retry += 1;
            }
            if c.cdn.d_read > streamlab_sim::SimDuration::from_millis(10) {
                s_slow += 1;
            }
        }
        let n = s.chunks.len().max(1) as f64;
        if s_miss > 0 {
            miss_ratios.push(s_miss as f64 / n);
        }
        if s_slow > 0 {
            slow_ratios.push(s_slow as f64 / n);
        }
        if let Some(first) = s.first_chunk() {
            if first.cdn.server_total() > streamlab_sim::SimDuration::from_millis(100) {
                server_problem_sessions += 1;
            }
        }
    }

    let mut freq: Vec<u64> = play_counts.into_values().collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));
    let total_plays: u64 = freq.iter().sum();
    let head = freq.len().div_ceil(10);
    let head_plays: u64 = freq.iter().take(head).sum();

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let n_sessions = ds.sessions.len().max(1);
    HeadlineStats {
        sessions: ds.sessions.len(),
        chunks,
        retention: ds.retention(),
        miss_rate: misses as f64 / chunks.max(1) as f64,
        ram_hit_rate: ram as f64 / chunks.max(1) as f64,
        retry_fraction: retry as f64 / chunks.max(1) as f64,
        hit_median_ms: Cdf::new(hit_lat).median(),
        miss_median_ms: Cdf::new(miss_lat).median(),
        top_decile_play_share: if total_plays == 0 {
            0.0
        } else {
            head_plays as f64 / total_plays as f64
        },
        mean_miss_ratio_in_miss_sessions: mean(&miss_ratios),
        mean_slow_ratio_in_slow_sessions: mean(&slow_ratios),
        sessions_with_server_problem: server_problem_sessions as f64 / n_sessions as f64,
    }
}
