//! §4.2 exhibits: latency baselines/variability (Figs. 7–10, Table 4) and
//! loss-vs-QoE (Figs. 11–16).

use super::CdfSeries;
use crate::netchar::{
    org_variability, path_cv, prefix_latencies, session_srtt_stats, tail_prefixes, OrgVariability,
};
use crate::stats::{BinnedSeries, Cdf};
use serde::{Deserialize, Serialize};
use streamlab_telemetry::Dataset;

/// Fig. 7: startup delay vs the first chunk's SRTT (binned).
pub fn fig07(ds: &Dataset) -> BinnedSeries {
    let pairs: Vec<(f64, f64)> = ds
        .sessions
        .iter()
        .filter_map(|s| {
            let first = s.first_chunk()?;
            let srtt = first.cdn.last_tcp()?.srtt.as_millis_f64();
            s.meta
                .startup_delay_s
                .is_finite()
                .then_some((srtt, s.meta.startup_delay_s))
        })
        .collect();
    BinnedSeries::fixed_width(&pairs, 0.0, 600.0, 12)
}

/// Fig. 8: CDFs of per-session `srtt_min` and `σ_srtt`.
pub fn fig08(ds: &Dataset, points: usize) -> (CdfSeries, CdfSeries) {
    let stats: Vec<_> = ds.sessions.iter().map(session_srtt_stats).collect();
    let mins = Cdf::new(stats.iter().map(|s| s.srtt_min_ms).collect());
    let sigmas = Cdf::new(stats.iter().map(|s| s.sigma_ms).collect());
    (
        CdfSeries::from_cdf("srtt_min (ms)", &mins, points),
        CdfSeries::from_cdf("sigma_srtt (ms)", &sigmas, points),
    )
}

/// Fig. 9 output: the distance distribution of US tail-latency prefixes,
/// plus the composition statistics quoted in §4.2.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09 {
    /// CDF of mean distance (km) to the serving PoP for US prefixes in the
    /// latency tail.
    pub distance_cdf: CdfSeries,
    /// Total prefixes in the latency tail.
    pub tail_prefixes: usize,
    /// Share of tail prefixes outside the US (paper: 75 %).
    pub non_us_share: f64,
    /// Among *US* tail prefixes that are close to a PoP (< 400 km), the
    /// share owned by enterprises (paper: 90 % within 4 km are
    /// corporations).
    pub close_enterprise_share: f64,
    /// Size of that close-US-tail set (tiny-scale runs may have none).
    pub close_us_prefixes: usize,
}

/// Fig. 9: distance of tail-latency US prefixes from their CDN servers.
pub fn fig09(ds: &Dataset, threshold_ms: f64, points: usize) -> Fig09 {
    let prefixes = prefix_latencies(ds);
    let tail = tail_prefixes(&prefixes, threshold_ms);
    let non_us = tail.iter().filter(|p| !p.is_us).count();
    let us_tail: Vec<_> = tail.iter().filter(|p| p.is_us).collect();
    let close: Vec<_> = us_tail
        .iter()
        .filter(|p| p.mean_distance_km < 400.0)
        .collect();
    let close_enterprise = close.iter().filter(|p| p.enterprise).count();
    let cdf = Cdf::new(us_tail.iter().map(|p| p.mean_distance_km).collect());
    Fig09 {
        close_us_prefixes: close.len(),
        distance_cdf: CdfSeries::from_cdf("distance (km)", &cdf, points),
        tail_prefixes: tail.len(),
        non_us_share: if tail.is_empty() {
            0.0
        } else {
            non_us as f64 / tail.len() as f64
        },
        close_enterprise_share: if close.is_empty() {
            0.0
        } else {
            close_enterprise as f64 / close.len() as f64
        },
    }
}

/// Fig. 10: CDF of CV(srtt) across (prefix, PoP) paths.
pub fn fig10(ds: &Dataset, min_sessions: usize, points: usize) -> CdfSeries {
    let cvs = path_cv(ds, min_sessions);
    let cdf = Cdf::new(cvs.into_iter().map(|(_, cv)| cv).collect());
    CdfSeries::from_cdf("CV(srtt) per (prefix, PoP)", &cdf, points)
}

/// Table 4: organizations ranked by share of CV>1 sessions, plus the
/// residential comparison number quoted in the text (~1 %).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tab04 {
    /// Top organizations by CV>1 share (enterprises expected on top).
    pub top: Vec<OrgVariability>,
    /// Pooled CV>1 share across major residential ISPs, percent.
    pub residential_pct: f64,
}

/// Compute Table 4.
pub fn tab04(ds: &Dataset, min_sessions: usize, top_n: usize) -> Tab04 {
    let all = org_variability(ds, min_sessions);
    let (res_high, res_total) = all
        .iter()
        .filter(|o| o.kind == streamlab_workload::OrgKind::Residential)
        .fold((0usize, 0usize), |(h, t), o| {
            (h + o.high_cv_sessions, t + o.sessions)
        });
    Tab04 {
        top: all.into_iter().take(top_n).collect(),
        residential_pct: if res_total == 0 {
            0.0
        } else {
            100.0 * res_high as f64 / res_total as f64
        },
    }
}

/// Fig. 11: session length, bitrate and rebuffering for sessions with and
/// without loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11 {
    /// CDF of #chunks, loss-free sessions.
    pub len_no_loss: CdfSeries,
    /// CDF of #chunks, sessions with loss.
    pub len_loss: CdfSeries,
    /// CDF of average bitrate (kbps), loss-free.
    pub bitrate_no_loss: CdfSeries,
    /// CDF of average bitrate (kbps), with loss.
    pub bitrate_loss: CdfSeries,
    /// CCDF of rebuffering rate (%), loss-free.
    pub rebuf_no_loss: CdfSeries,
    /// CCDF of rebuffering rate (%), with loss.
    pub rebuf_loss: CdfSeries,
    /// Share of sessions with no retransmissions at all (paper: 40 %).
    pub loss_free_share: f64,
    /// Share of sessions with retx rate below 10 % (paper: > 90 %).
    pub below_10pct_share: f64,
}

/// Compute Fig. 11.
pub fn fig11(ds: &Dataset, points: usize) -> Fig11 {
    let mut len_l = Vec::new();
    let mut len_n = Vec::new();
    let mut br_l = Vec::new();
    let mut br_n = Vec::new();
    let mut rb_l = Vec::new();
    let mut rb_n = Vec::new();
    let mut loss_free = 0usize;
    let mut below10 = 0usize;
    for s in &ds.sessions {
        let rate = s.retx_rate();
        if rate < 0.10 {
            below10 += 1;
        }
        if s.loss_free() {
            loss_free += 1;
            len_n.push(s.chunks.len() as f64);
            br_n.push(s.avg_bitrate_kbps());
            rb_n.push(s.rebuffer_rate_pct());
        } else {
            len_l.push(s.chunks.len() as f64);
            br_l.push(s.avg_bitrate_kbps());
            rb_l.push(s.rebuffer_rate_pct());
        }
    }
    let n = ds.sessions.len().max(1) as f64;
    Fig11 {
        len_no_loss: CdfSeries::from_cdf("no loss", &Cdf::new(len_n), points),
        len_loss: CdfSeries::from_cdf("loss", &Cdf::new(len_l), points),
        bitrate_no_loss: CdfSeries::from_cdf("no loss", &Cdf::new(br_n), points),
        bitrate_loss: CdfSeries::from_cdf("loss", &Cdf::new(br_l), points),
        rebuf_no_loss: CdfSeries::from_ccdf("no loss", &Cdf::new(rb_n), points),
        rebuf_loss: CdfSeries::from_ccdf("loss", &Cdf::new(rb_l), points),
        loss_free_share: loss_free as f64 / n,
        below_10pct_share: below10 as f64 / n,
    }
}

/// Fig. 12: rebuffering rate vs session retransmission rate (binned).
pub fn fig12(ds: &Dataset) -> BinnedSeries {
    let pairs: Vec<(f64, f64)> = ds
        .sessions
        .iter()
        .map(|s| (100.0 * s.retx_rate(), s.rebuffer_rate_pct()))
        .collect();
    BinnedSeries::fixed_width(&pairs, 0.0, 10.0, 10)
}

/// Fig. 13: the early-loss vs late-loss case study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Per-chunk loss rate (%) of the early-loss session.
    pub early_loss_session: Vec<f64>,
    /// Its rebuffering rate, %.
    pub early_rebuffer_pct: f64,
    /// Its session-wide retransmission rate, %.
    pub early_retx_pct: f64,
    /// Per-chunk loss rate (%) of the late-loss session.
    pub late_loss_session: Vec<f64>,
    /// Its rebuffering rate, %.
    pub late_rebuffer_pct: f64,
    /// Its session-wide retransmission rate, %.
    pub late_retx_pct: f64,
}

/// Find a Fig. 13-style pair: one session whose losses concentrate on the
/// first chunk and which rebuffers, and one whose losses come late (first
/// chunks clean) yet plays cleanly despite a *higher* overall loss rate.
pub fn fig13(ds: &Dataset) -> Option<Fig13> {
    let per_chunk_loss = |s: &streamlab_telemetry::SessionData| -> Vec<f64> {
        s.chunks.iter().map(|c| 100.0 * c.cdn.retx_rate()).collect()
    };
    let early = ds.sessions.iter().find(|s| {
        s.chunks.len() >= 8 && s.chunks[0].cdn.retx_segments > 0 && s.rebuffer_rate_pct() > 0.0 && {
            let total: u32 = s.chunks.iter().map(|c| c.cdn.retx_segments).sum();
            f64::from(s.chunks[0].cdn.retx_segments) / f64::from(total.max(1)) > 0.5
        }
    })?;
    let late = ds.sessions.iter().find(|s| {
        s.chunks.len() >= 8
            && s.chunks[..4].iter().all(|c| c.cdn.retx_segments == 0)
            && s.chunks[4..].iter().any(|c| c.cdn.retx_segments > 0)
            && s.rebuffer_rate_pct() == 0.0
            && s.retx_rate() > early.retx_rate()
    })?;
    Some(Fig13 {
        early_loss_session: per_chunk_loss(early),
        early_rebuffer_pct: early.rebuffer_rate_pct(),
        early_retx_pct: 100.0 * early.retx_rate(),
        late_loss_session: per_chunk_loss(late),
        late_rebuffer_pct: late.rebuffer_rate_pct(),
        late_retx_pct: 100.0 * late.retx_rate(),
    })
}

/// One chunk-ID row of Fig. 14.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig14Row {
    /// Chunk ID.
    pub chunk: usize,
    /// `P(rebuffering at chunk = X)`, percent.
    pub p_rebuf: f64,
    /// `P(rebuffering at chunk = X | loss at chunk = X)`, percent.
    pub p_rebuf_given_loss: f64,
    /// Chunks observed at this ID.
    pub n: usize,
}

/// Fig. 14: rebuffering frequency per chunk ID, and conditioned on loss.
pub fn fig14(ds: &Dataset, max_chunk: usize) -> Vec<Fig14Row> {
    let mut rebuf = vec![0usize; max_chunk + 1];
    let mut rebuf_and_loss = vec![0usize; max_chunk + 1];
    let mut loss = vec![0usize; max_chunk + 1];
    let mut n = vec![0usize; max_chunk + 1];
    for (_, c) in ds.chunks() {
        let id = c.chunk().raw() as usize;
        if id > max_chunk {
            continue;
        }
        n[id] += 1;
        let lost = c.cdn.retx_segments > 0;
        let stalled = c.player.buf_count > 0;
        if lost {
            loss[id] += 1;
        }
        if stalled {
            rebuf[id] += 1;
        }
        if lost && stalled {
            rebuf_and_loss[id] += 1;
        }
    }
    (0..=max_chunk)
        .filter(|&i| n[i] > 0)
        .map(|i| Fig14Row {
            chunk: i,
            p_rebuf: 100.0 * rebuf[i] as f64 / n[i] as f64,
            p_rebuf_given_loss: if loss[i] == 0 {
                0.0
            } else {
                100.0 * rebuf_and_loss[i] as f64 / loss[i] as f64
            },
            n: n[i],
        })
        .collect()
}

/// Fig. 15: average retransmission rate per chunk ID.
pub fn fig15(ds: &Dataset, max_chunk: usize) -> BinnedSeries {
    let pairs: Vec<(usize, f64)> = ds
        .chunks()
        .map(|(_, c)| (c.chunk().raw() as usize, 100.0 * c.cdn.retx_rate()))
        .collect();
    BinnedSeries::by_integer(&pairs, max_chunk)
}

/// Fig. 16: latency share, `D_FB` and `D_LB` split by performance score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16 {
    /// CDF of latency share `D_FB/(D_FB+D_LB)` for good chunks (score>1).
    pub share_good: CdfSeries,
    /// Same for bad chunks (score < 1).
    pub share_bad: CdfSeries,
    /// CDF of `D_FB` (ms), good chunks.
    pub dfb_good: CdfSeries,
    /// CDF of `D_FB` (ms), bad chunks.
    pub dfb_bad: CdfSeries,
    /// CDF of `D_LB` (ms), good chunks.
    pub dlb_good: CdfSeries,
    /// CDF of `D_LB` (ms), bad chunks.
    pub dlb_bad: CdfSeries,
    /// Share of chunks that are bad (score < 1).
    pub bad_share: f64,
}

/// Compute Fig. 16.
pub fn fig16(ds: &Dataset, points: usize) -> Fig16 {
    let mut share_g = Vec::new();
    let mut share_b = Vec::new();
    let mut dfb_g = Vec::new();
    let mut dfb_b = Vec::new();
    let mut dlb_g = Vec::new();
    let mut dlb_b = Vec::new();
    let mut bad = 0usize;
    let mut total = 0usize;
    for (_, c) in ds.chunks() {
        let dfb = c.player.d_fb.as_millis_f64();
        let dlb = c.player.d_lb.as_millis_f64();
        let share = dfb / (dfb + dlb).max(1e-9);
        total += 1;
        if c.player.perf_score() < 1.0 {
            bad += 1;
            share_b.push(share);
            dfb_b.push(dfb);
            dlb_b.push(dlb);
        } else {
            share_g.push(share);
            dfb_g.push(dfb);
            dlb_g.push(dlb);
        }
    }
    Fig16 {
        share_good: CdfSeries::from_cdf("perfscore>1", &Cdf::new(share_g), points),
        share_bad: CdfSeries::from_cdf("perfscore<1", &Cdf::new(share_b), points),
        dfb_good: CdfSeries::from_cdf("perfscore>1", &Cdf::new(dfb_g), points),
        dfb_bad: CdfSeries::from_cdf("perfscore<1", &Cdf::new(dfb_b), points),
        dlb_good: CdfSeries::from_cdf("perfscore>1", &Cdf::new(dlb_g), points),
        dlb_bad: CdfSeries::from_cdf("perfscore<1", &Cdf::new(dlb_b), points),
        bad_share: bad as f64 / total.max(1) as f64,
    }
}

/// Monotone trend strengths (Spearman rank correlations) behind the
/// paper's scatter/error-bar figures — one number per trend.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrendStrengths {
    /// Startup delay vs first-chunk total server latency (Fig. 4).
    pub startup_vs_server: f64,
    /// Startup delay vs first-chunk SRTT (Fig. 7).
    pub startup_vs_srtt: f64,
    /// Session rebuffering rate vs retransmission rate (Fig. 12).
    pub rebuffer_vs_retx: f64,
    /// Chunk dropped-frame share vs download rate, over the informative
    /// sub-knee region (rate < 1.5 s/s; Fig. 19 is flat beyond it).
    /// Negative: faster chunks drop less.
    pub drops_vs_rate: f64,
}

/// Compute the trend strengths.
pub fn trend_strengths(ds: &Dataset) -> TrendStrengths {
    use crate::stats::spearman;
    let mut srv = (Vec::new(), Vec::new());
    let mut srtt = (Vec::new(), Vec::new());
    let mut rr = (Vec::new(), Vec::new());
    let mut dr = (Vec::new(), Vec::new());
    for s in &ds.sessions {
        if let (Some(first), true) = (s.first_chunk(), s.meta.startup_delay_s.is_finite()) {
            srv.0.push(first.cdn.server_total().as_millis_f64());
            srv.1.push(s.meta.startup_delay_s);
            if let Some(t) = first.cdn.last_tcp() {
                srtt.0.push(t.srtt.as_millis_f64());
                srtt.1.push(s.meta.startup_delay_s);
            }
        }
        rr.0.push(s.retx_rate());
        rr.1.push(s.rebuffer_rate_pct());
        for c in &s.chunks {
            // Only the sub-knee region is informative (Fig. 19 flattens
            // at 1.5 s/s), and only software rendering responds to it.
            let rate = c.player.download_rate();
            if s.meta.visible && !s.meta.gpu && rate < 1.5 {
                dr.0.push(rate);
                dr.1.push(c.player.drop_ratio());
            }
        }
    }
    TrendStrengths {
        startup_vs_server: spearman(&srv.0, &srv.1),
        startup_vs_srtt: spearman(&srtt.0, &srtt.1),
        rebuffer_vs_retx: spearman(&rr.0, &rr.1),
        drops_vs_rate: spearman(&dr.0, &dr.1),
    }
}
