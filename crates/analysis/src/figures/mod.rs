//! One function per paper exhibit (figure or table).
//!
//! Every function consumes the joined [`Dataset`] (plus the catalog where
//! the exhibit is about the content itself) and returns typed rows — the
//! same rows the paper plots — ready for printing or JSON export. The
//! bench harness (`streamlab-bench`) regenerates each exhibit from these.
//!
//! [`Dataset`]: streamlab_telemetry::Dataset

pub mod cdn;
pub mod client;
pub mod localization;
pub mod network;

use serde::{Deserialize, Serialize};

/// A labelled CDF/CCDF curve: `(x, probability)` points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfSeries {
    /// Legend label (e.g. `"total-miss"`).
    pub label: String,
    /// `(x, F(x))` or `(x, 1−F(x))` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl CdfSeries {
    /// Build from a [`crate::stats::Cdf`].
    pub fn from_cdf(label: &str, cdf: &crate::stats::Cdf, n: usize) -> Self {
        CdfSeries {
            label: label.to_owned(),
            points: cdf.points(n),
        }
    }

    /// CCDF variant.
    pub fn from_ccdf(label: &str, cdf: &crate::stats::Cdf, n: usize) -> Self {
        CdfSeries {
            label: label.to_owned(),
            points: cdf.ccdf_points(n),
        }
    }

    /// x value at which the curve first reaches probability ≥ `p`
    /// (a quantile read off the plotted curve).
    pub fn x_at(&self, p: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, f)| f >= p).map(|&(x, _)| x)
    }
}
