//! # streamlab-analysis
//!
//! The measurement-analysis library: everything §4 of the paper does to
//! the joined dataset, as reusable, tested functions.
//!
//! * [`stats`] — empirical CDF/CCDF, quantiles, IQR, coefficient of
//!   variation, binned series (the mean/median-with-IQR curves the paper
//!   plots), correlation.
//! * [`netchar`] — §4.2 network characterization: per-session baseline
//!   (`srtt_min`) and variability (`σ_srtt`, CV) from kernel snapshots,
//!   `rtt₀` estimation from Eq. 1's residual, prefix aggregation, the
//!   tail-latency prefix analysis behind Fig. 9 and the per-organization
//!   CV ranking of Table 4.
//! * [`detect`] — §4.3 download-stack analyses: the Eq. 4 transient
//!   buffering outlier detector, the Eq. 5 RTO-based persistent `D_DS`
//!   lower bound, both validated against simulation ground truth.
//! * [`figures`] — one function per paper exhibit (Figs. 3–22, Tables 4–5,
//!   headline statistics), each returning typed rows ready to print or
//!   serialize.
//! * [`validate`] — the paper's estimators measured against simulation
//!   ground truth (a check the production system could never run).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod detect;
pub mod figures;
pub mod netchar;
pub mod qoe;
pub mod stats;
pub mod validate;

pub use detect::{detect_transient_buffering, estimate_dds_lower_bound, Eq4Flags};
pub use netchar::{session_srtt_stats, SessionSrtt};
pub use stats::{BinnedSeries, Cdf};
