//! Empirical statistics: CDFs, quantiles, binned series, correlation.

use serde::{Deserialize, Serialize};

/// An empirical distribution over f64 samples (non-finite samples are
/// dropped at construction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1), by nearest-rank; NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Population standard deviation; NaN when empty.
    pub fn std(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let m = self.mean();
        (self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.sorted.len() as f64)
            .sqrt()
    }

    /// Coefficient of variation (σ/μ); NaN when the mean is zero or empty.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if !m.is_finite() || m == 0.0 {
            return f64::NAN;
        }
        self.std() / m
    }

    /// Interquartile range `(q25, q75)`.
    pub fn iqr(&self) -> (f64, f64) {
        (self.quantile(0.25), self.quantile(0.75))
    }

    /// `P(X ≤ x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `n` evenly spaced (by rank) `(x, F(x))` points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let n = n.min(self.sorted.len());
        (1..=n)
            .map(|i| {
                let f = i as f64 / n as f64;
                (self.quantile(f), f)
            })
            .collect()
    }

    /// `n` `(x, 1 − F(x))` points (CCDF, as in Figs. 3a / 11c).
    pub fn ccdf_points(&self, n: usize) -> Vec<(f64, f64)> {
        self.points(n)
            .into_iter()
            .map(|(x, f)| (x, (1.0 - f).max(0.0)))
            .collect()
    }

    /// Raw sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// One bin of a binned series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bin {
    /// Center of the bin on the x-axis.
    pub x_center: f64,
    /// Samples that fell into the bin.
    pub count: usize,
    /// Mean of y.
    pub mean: f64,
    /// Median of y.
    pub median: f64,
    /// 25th percentile of y.
    pub q25: f64,
    /// 75th percentile of y.
    pub q75: f64,
}

/// A "y versus binned x" series — the mean/median-with-IQR-error-bars plot
/// the paper uses for Figs. 4, 7, 12, 15 and 19.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedSeries {
    /// The populated bins, in x order.
    pub bins: Vec<Bin>,
}

impl BinnedSeries {
    /// Bin `(x, y)` pairs into fixed-width bins covering `[lo, hi)`.
    /// Pairs outside the range and non-finite pairs are dropped; empty
    /// bins are omitted.
    pub fn fixed_width(pairs: &[(f64, f64)], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo);
        let width = (hi - lo) / bins as f64;
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); bins];
        for &(x, y) in pairs {
            if !x.is_finite() || !y.is_finite() || x < lo || x >= hi {
                continue;
            }
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            buckets[idx].push(y);
        }
        let bins = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, ys)| !ys.is_empty())
            .map(|(i, ys)| {
                let cdf = Cdf::new(ys);
                Bin {
                    x_center: lo + width * (i as f64 + 0.5),
                    count: cdf.len(),
                    mean: cdf.mean(),
                    median: cdf.median(),
                    q25: cdf.quantile(0.25),
                    q75: cdf.quantile(0.75),
                }
            })
            .collect();
        BinnedSeries { bins }
    }

    /// Bin by integer x (e.g. chunk ID), covering `0..=max_x`.
    pub fn by_integer(pairs: &[(usize, f64)], max_x: usize) -> Self {
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); max_x + 1];
        for &(x, y) in pairs {
            if x <= max_x && y.is_finite() {
                buckets[x].push(y);
            }
        }
        let bins = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, ys)| !ys.is_empty())
            .map(|(i, ys)| {
                let cdf = Cdf::new(ys);
                Bin {
                    x_center: i as f64,
                    count: cdf.len(),
                    mean: cdf.mean(),
                    median: cdf.median(),
                    q25: cdf.quantile(0.25),
                    q75: cdf.quantile(0.75),
                }
            })
            .collect();
        BinnedSeries { bins }
    }
}

/// Fixed-width histogram over `[lo, hi)`; out-of-range samples are
/// clipped into the edge bins (so counts are conserved).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build from samples (non-finite samples dropped).
    pub fn new(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo);
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f64;
        for &x in samples {
            if !x.is_finite() {
                continue;
            }
            let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Histogram { lo, hi, counts }
    }

    /// Total samples counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Spearman rank correlation: Pearson over the rank transforms. Robust to
/// monotone nonlinearity (e.g. the latency/startup relationships of
/// Figs. 4/7, which are monotone but not linear).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    fn ranks(v: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_unstable_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
        let mut out = vec![0.0; v.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks over ties.
            let mut j = i;
            while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Pearson correlation coefficient; NaN for degenerate inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let c = Cdf::new((1..=100).map(f64::from).collect());
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert!((c.median() - 50.0).abs() <= 1.0);
        assert!((c.mean() - 50.5).abs() < 1e-9);
        let (q1, q3) = c.iqr();
        assert!((q1 - 26.0).abs() <= 1.0 && (q3 - 75.0).abs() <= 1.0);
    }

    #[test]
    fn cdf_at_is_monotone_fraction() {
        let c = Cdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(10.0), 1.0);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let c = Cdf::new(vec![1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_cdf_is_nan_not_panic() {
        let c = Cdf::new(vec![]);
        assert!(c.median().is_nan());
        assert!(c.mean().is_nan());
        assert!(c.cv().is_nan());
        assert!(c.points(10).is_empty());
    }

    #[test]
    fn cv_matches_definition() {
        let c = Cdf::new(vec![10.0, 10.0, 10.0]);
        assert!(c.cv().abs() < 1e-12);
        let d = Cdf::new(vec![0.0, 20.0]);
        assert!((d.cv() - 1.0).abs() < 1e-12); // σ=10, μ=10
    }

    #[test]
    fn points_are_monotone() {
        let c = Cdf::new(vec![5.0, 1.0, 9.0, 3.0, 7.0]);
        let pts = c.points(5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        let ccdf = c.ccdf_points(5);
        assert!((ccdf.last().unwrap().1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn binned_series_means() {
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = f64::from(i);
                (x, if x < 50.0 { 1.0 } else { 3.0 })
            })
            .collect();
        let s = BinnedSeries::fixed_width(&pairs, 0.0, 100.0, 2);
        assert_eq!(s.bins.len(), 2);
        assert!((s.bins[0].mean - 1.0).abs() < 1e-9);
        assert!((s.bins[1].mean - 3.0).abs() < 1e-9);
        assert_eq!(s.bins[0].count, 50);
        assert!((s.bins[0].x_center - 25.0).abs() < 1e-9);
    }

    #[test]
    fn binned_series_drops_out_of_range() {
        let pairs = vec![(-1.0, 5.0), (0.5, 1.0), (99.0, f64::NAN), (150.0, 2.0)];
        let s = BinnedSeries::fixed_width(&pairs, 0.0, 100.0, 10);
        let total: usize = s.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn integer_binning() {
        let pairs = vec![(0, 1.0), (0, 3.0), (2, 10.0)];
        let s = BinnedSeries::by_integer(&pairs, 5);
        assert_eq!(s.bins.len(), 2);
        assert!((s.bins[0].mean - 2.0).abs() < 1e-9);
        assert_eq!(s.bins[1].x_center, 2.0);
    }

    #[test]
    fn histogram_conserves_and_clips() {
        let h = Histogram::new(&[-5.0, 0.5, 1.5, 1.6, 99.0, f64::NAN], 0.0, 2.0, 2);
        assert_eq!(h.total(), 5); // NaN dropped, edges clipped
        assert_eq!(h.counts, vec![2, 3]); // -5→bin0, 0.5→bin0; 1.5,1.6,99→bin1
        assert_eq!(h.mode_bin(), 1);
        let centers = h.centers();
        assert!((centers[0].0 - 0.5).abs() < 1e-12);
        assert!((centers[1].0 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear() {
        let xs: Vec<f64> = (1..60).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        // Pearson is depressed by the nonlinearity; Spearman is exactly 1.
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
        let inv: Vec<f64> = xs.iter().map(|x| -x * x).collect();
        assert!((spearman(&xs, &inv) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_known_values() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0]).is_nan());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
    }
}
