//! Variability rankings: Table 4's per-organization CV shares and
//! Fig. 10's per-(prefix, PoP) path fluctuation.

use super::session::session_srtt_stats;
use crate::stats::Cdf;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamlab_telemetry::dataset::Dataset;
use streamlab_workload::{OrgKind, PopId, PrefixId};

/// Per-organization share of high-variability sessions (Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrgVariability {
    /// Organization name.
    pub org: String,
    /// Residential or enterprise.
    pub kind: OrgKind,
    /// Sessions with CV(SRTT) > 1.
    pub high_cv_sessions: usize,
    /// All sessions of the organization.
    pub sessions: usize,
}

impl OrgVariability {
    /// Percentage of sessions with CV > 1.
    pub fn pct(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            100.0 * self.high_cv_sessions as f64 / self.sessions as f64
        }
    }
}

/// Rank organizations by their share of CV>1 sessions, considering only
/// organizations with at least `min_sessions` (the paper uses 50).
pub fn org_variability(ds: &Dataset, min_sessions: usize) -> Vec<OrgVariability> {
    let mut by_org: HashMap<&str, (OrgKind, usize, usize)> = HashMap::new();
    for s in &ds.sessions {
        let st = session_srtt_stats(s);
        let e = by_org
            .entry(s.meta.org.as_str())
            .or_insert((s.meta.org_kind, 0, 0));
        e.2 += 1;
        if st.cv > 1.0 {
            e.1 += 1;
        }
    }
    let mut out: Vec<OrgVariability> = by_org
        .into_iter()
        .filter(|(_, (_, _, n))| *n >= min_sessions)
        .map(|(org, (kind, high, n))| OrgVariability {
            org: org.to_owned(),
            kind,
            high_cv_sessions: high,
            sessions: n,
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.pct()
            .partial_cmp(&a.pct())
            .unwrap()
            .then(a.org.cmp(&b.org))
    });
    out
}

/// Per-path (prefix, PoP) latency-fluctuation statistics (Fig. 10): the CV
/// of *session-mean* SRTTs across the sessions sharing a path.
pub fn path_cv(ds: &Dataset, min_sessions: usize) -> Vec<((PrefixId, PopId), f64)> {
    let mut by_path: HashMap<(PrefixId, PopId), Vec<f64>> = HashMap::new();
    for s in &ds.sessions {
        let st = session_srtt_stats(s);
        if st.mean_ms.is_finite() {
            by_path
                .entry((s.meta.prefix, s.meta.pop))
                .or_default()
                .push(st.mean_ms);
        }
    }
    let mut out: Vec<((PrefixId, PopId), f64)> = by_path
        .into_iter()
        .filter(|(_, v)| v.len() >= min_sessions)
        .map(|(k, v)| (k, Cdf::new(v).cv()))
        .filter(|(_, cv)| cv.is_finite())
        .collect();
    out.sort_unstable_by_key(|&((p, pop), _)| (p, pop));
    out
}
