//! Prefix-level aggregation: baselines, tails, multi-day recurrence
//! (§4.2.1).

use super::session::session_srtt_stats;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamlab_telemetry::dataset::Dataset;
use streamlab_workload::{OrgKind, PrefixId};

/// Per-prefix aggregation of session baselines (§4.2.1 aggregates into /24
/// prefixes to shed last-mile noise).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixLatency {
    /// The prefix.
    pub prefix: PrefixId,
    /// Sessions observed.
    pub sessions: usize,
    /// Minimum baseline over the prefix's sessions, ms.
    pub baseline_ms: f64,
    /// Mean distance to the serving PoP, km.
    pub mean_distance_km: f64,
    /// Whether the prefix is in the US.
    pub is_us: bool,
    /// Whether the prefix belongs to an enterprise.
    pub enterprise: bool,
}

/// Aggregate the dataset by prefix.
pub fn prefix_latencies(ds: &Dataset) -> Vec<PrefixLatency> {
    struct Acc {
        sessions: usize,
        baseline: f64,
        dist_sum: f64,
        is_us: bool,
        enterprise: bool,
    }
    let mut by_prefix: HashMap<PrefixId, Acc> = HashMap::new();
    for s in &ds.sessions {
        let st = session_srtt_stats(s);
        let e = by_prefix.entry(s.meta.prefix).or_insert(Acc {
            sessions: 0,
            baseline: f64::INFINITY,
            dist_sum: 0.0,
            is_us: s.meta.region.is_us(),
            enterprise: s.meta.org_kind == OrgKind::Enterprise,
        });
        e.sessions += 1;
        e.baseline = e.baseline.min(st.baseline_ms);
        e.dist_sum += s.meta.distance_km;
    }
    let mut out: Vec<PrefixLatency> = by_prefix
        .into_iter()
        .map(|(prefix, a)| PrefixLatency {
            prefix,
            sessions: a.sessions,
            baseline_ms: a.baseline,
            mean_distance_km: a.dist_sum / a.sessions as f64,
            is_us: a.is_us,
            enterprise: a.enterprise,
        })
        .collect();
    out.sort_unstable_by_key(|p| p.prefix);
    out
}

/// Prefixes in the latency tail (`baseline > threshold_ms`), the Fig. 9
/// input set. The paper uses 100 ms, "a high latency for cable/broadband
/// connections".
pub fn tail_prefixes(prefixes: &[PrefixLatency], threshold_ms: f64) -> Vec<&PrefixLatency> {
    prefixes
        .iter()
        .filter(|p| p.baseline_ms > threshold_ms)
        .collect()
}

/// Tail-recurrence of a prefix across a multi-day study (§4.2.1): the
/// paper repeats the tail-latency analysis "for every day in our dataset"
/// and scores each prefix by `#days prefix in tail / #days`, taking the
/// top 10 % most recurrent as the *persistently* slow prefixes of Fig. 9.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefixRecurrence {
    /// The prefix.
    pub prefix: PrefixId,
    /// Days the prefix appeared in the latency tail.
    pub days_in_tail: usize,
    /// Days the prefix was observed at all.
    pub days_observed: usize,
    /// Whether the prefix is in the US (any day's observation).
    pub is_us: bool,
    /// Whether the prefix belongs to an enterprise.
    pub enterprise: bool,
    /// Mean distance to the serving PoP, km (averaged over days).
    pub mean_distance_km: f64,
}

impl PrefixRecurrence {
    /// The paper's recurrence frequency: `#days in tail / #days`.
    pub fn frequency(&self) -> f64 {
        if self.days_observed == 0 {
            0.0
        } else {
            self.days_in_tail as f64 / self.days_observed as f64
        }
    }
}

/// Combine per-day prefix aggregations into recurrence scores.
///
/// `daily` holds one [`prefix_latencies`] result per observed day;
/// `threshold_ms` is the tail cut (the paper uses 100 ms).
pub fn tail_recurrence(daily: &[Vec<PrefixLatency>], threshold_ms: f64) -> Vec<PrefixRecurrence> {
    let mut acc: HashMap<PrefixId, PrefixRecurrence> = HashMap::new();
    for day in daily {
        for p in day {
            let e = acc.entry(p.prefix).or_insert(PrefixRecurrence {
                prefix: p.prefix,
                days_in_tail: 0,
                days_observed: 0,
                is_us: p.is_us,
                enterprise: p.enterprise,
                mean_distance_km: 0.0,
            });
            e.days_observed += 1;
            e.mean_distance_km += p.mean_distance_km;
            if p.baseline_ms > threshold_ms {
                e.days_in_tail += 1;
            }
        }
    }
    let mut out: Vec<PrefixRecurrence> = acc
        .into_values()
        .map(|mut p| {
            p.mean_distance_km /= p.days_observed.max(1) as f64;
            p
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.frequency()
            .partial_cmp(&a.frequency())
            .unwrap()
            .then(a.prefix.cmp(&b.prefix))
    });
    out
}

/// The persistently-slow prefix set: the top `top_fraction` (the paper
/// uses 10 %) of prefixes by recurrence frequency, among those that were
/// ever in the tail.
pub fn persistent_tail(
    recurrence: &[PrefixRecurrence],
    top_fraction: f64,
) -> Vec<&PrefixRecurrence> {
    let ever: Vec<&PrefixRecurrence> = recurrence.iter().filter(|p| p.days_in_tail > 0).collect();
    let keep = ((ever.len() as f64 * top_fraction).ceil() as usize)
        .max(1)
        .min(ever.len());
    ever.into_iter().take(keep).collect()
}
