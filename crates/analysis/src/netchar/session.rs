//! Per-session SRTT statistics: baseline, variability, CV.

use crate::stats::Cdf;
use serde::{Deserialize, Serialize};
use streamlab_telemetry::dataset::SessionData;

/// Per-session SRTT statistics from the kernel snapshots.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionSrtt {
    /// Number of SRTT samples.
    pub samples: usize,
    /// Minimum SRTT seen, ms. An EWMA minimum — biased above the true
    /// minimum RTT, as the paper notes in §4.2 footnote 4.
    pub srtt_min_ms: f64,
    /// Mean SRTT, ms.
    pub mean_ms: f64,
    /// Standard deviation of SRTT samples, ms (`σ_srtt`, Fig. 8).
    pub sigma_ms: f64,
    /// Coefficient of variation (σ/μ, the Table 4 quantity).
    pub cv: f64,
    /// The session-level baseline estimate: `min(srtt_min, min rtt₀̂)`
    /// where `rtt₀̂ = D_FB − (D_CDN + D_BE)` per chunk (§4.2.1 filters
    /// self-loaded SRTT samples this way).
    pub baseline_ms: f64,
}

/// Compute per-session SRTT statistics (over per-chunk SRTT samples, so
/// slow chunks do not dominate the sample set by wall-clock share).
pub fn session_srtt_stats(s: &SessionData) -> SessionSrtt {
    let samples = s.srtt_per_chunk_ms();
    let cdf = Cdf::new(samples.clone());
    let srtt_min = cdf.quantile(0.0);
    // Per-chunk rtt₀ upper-bound estimates (Eq. 1 residual includes D_DS,
    // so it stays an upper bound; the min over chunks tightens it).
    let rtt0_min = s
        .chunks
        .iter()
        .map(|c| c.fb_residual().as_millis_f64())
        .fold(f64::INFINITY, f64::min);
    let baseline = srtt_min.min(rtt0_min);
    SessionSrtt {
        samples: cdf.len(),
        srtt_min_ms: srtt_min,
        mean_ms: cdf.mean(),
        sigma_ms: cdf.std(),
        cv: cdf.cv(),
        baseline_ms: baseline,
    }
}
