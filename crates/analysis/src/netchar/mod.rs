//! §4.2 network characterization: baselines, variability, prefixes.

mod prefix;
mod session;
mod variability;

pub use prefix::{
    persistent_tail, prefix_latencies, tail_prefixes, tail_recurrence, PrefixLatency,
    PrefixRecurrence,
};
pub use session::{session_srtt_stats, SessionSrtt};
pub use variability::{org_variability, path_cv, OrgVariability};

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_net::TcpInfo;
    use streamlab_sim::{SimDuration, SimTime};
    use streamlab_telemetry::dataset::{Dataset, SessionData};
    use streamlab_telemetry::records::{
        CacheOutcome, CdnChunkRecord, ChunkRecord, ChunkTruth, PlayerChunkRecord, SessionMeta,
    };
    use streamlab_workload::{
        AccessClass, Browser, ChunkIndex, GeoPoint, Os, Region, ServerId, SessionId, VideoId,
    };
    use streamlab_workload::{OrgKind, PopId, PrefixId};

    fn tcp(at_ms: u64, srtt_ms: u64) -> TcpInfo {
        TcpInfo {
            at: SimTime::from_millis(at_ms),
            srtt: SimDuration::from_millis(srtt_ms),
            rttvar: SimDuration::from_millis(5),
            cwnd: 50,
            retx_total: 0,
            segs_out_total: 1000,
            mss: 1460,
        }
    }

    fn session(id: u64, srtts: &[u64], org: &str, kind: OrgKind) -> SessionData {
        let meta = SessionMeta {
            session: SessionId(id),
            prefix: PrefixId(id % 4),
            video: VideoId(0),
            video_secs: 60.0,
            os: Os::Windows,
            browser: Browser::Chrome,
            org: org.into(),
            org_kind: kind,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint {
                lat: 40.0,
                lon: -75.0,
            },
            pop: PopId(0),
            server: ServerId(0),
            distance_km: 100.0,
            arrival: SimTime::ZERO,
            startup_delay_s: 1.0,
            proxied: false,
            ua_mismatch: false,
            gpu: true,
            visible: true,
        };
        let chunks = srtts
            .iter()
            .enumerate()
            .map(|(i, &srtt)| ChunkRecord {
                player: PlayerChunkRecord {
                    session: SessionId(id),
                    chunk: ChunkIndex(i as u32),
                    bitrate_kbps: 1050,
                    requested_at: SimTime::from_millis(6000 * i as u64),
                    d_fb: SimDuration::from_millis(srtt + 4),
                    d_lb: SimDuration::from_millis(800),
                    chunk_secs: 6.0,
                    buf_count: 0,
                    buf_dur: SimDuration::ZERO,
                    visible: true,
                    avg_fps: 30.0,
                    dropped_frames: 0,
                    frames: 180,
                    truth: ChunkTruth::default(),
                },
                cdn: CdnChunkRecord {
                    session: SessionId(id),
                    chunk: ChunkIndex(i as u32),
                    d_wait: SimDuration::from_millis(1),
                    d_open: SimDuration::from_millis(1),
                    d_read: SimDuration::from_millis(2),
                    d_backend: SimDuration::ZERO,
                    cache: CacheOutcome::RamHit,
                    retry_fired: false,
                    size_bytes: 787_500,
                    served_at: SimTime::from_millis(6000 * i as u64),
                    segments: 540,
                    retx_segments: 0,
                    tcp: vec![tcp(6000 * i as u64 + 500, srtt)],
                },
            })
            .collect();
        SessionData { meta, chunks }
    }

    fn dataset(sessions: Vec<SessionData>) -> Dataset {
        let raw = sessions.len();
        Dataset {
            sessions,
            filtered_proxy_sessions: 0,
            raw_sessions: raw,
        }
    }

    #[test]
    fn srtt_stats_basics() {
        let s = session(
            0,
            &[50, 60, 55, 52],
            "Residential-ISP-0",
            OrgKind::Residential,
        );
        let st = session_srtt_stats(&s);
        assert_eq!(st.samples, 4);
        assert_eq!(st.srtt_min_ms, 50.0);
        assert!((st.mean_ms - 54.25).abs() < 1e-9);
        assert!(st.cv < 0.2);
        // Baseline is min(srtt_min, rtt0̂): D_FB−server = srtt, so min 50.
        assert!((st.baseline_ms - 50.0).abs() < 1.0);
    }

    #[test]
    fn baseline_filters_self_loading() {
        // SRTT samples are inflated (self-loading) but the Eq. 1 residual
        // reveals the true ~30 ms baseline.
        let mut s = session(
            0,
            &[200, 220, 210],
            "Residential-ISP-0",
            OrgKind::Residential,
        );
        for c in &mut s.chunks {
            c.player.d_fb = SimDuration::from_millis(34);
        }
        let st = session_srtt_stats(&s);
        assert_eq!(st.srtt_min_ms, 200.0);
        assert!((st.baseline_ms - 30.0).abs() < 1.0);
    }

    #[test]
    fn high_cv_session_detected() {
        let spiky = session(
            0,
            &[30, 32, 31, 400, 380, 30, 29, 350],
            "Enterprise-1",
            OrgKind::Enterprise,
        );
        let st = session_srtt_stats(&spiky);
        assert!(st.cv > 1.0, "cv = {}", st.cv);
    }

    #[test]
    fn prefix_aggregation_takes_min_baseline() {
        let ds = dataset(vec![
            session(0, &[80, 90], "Residential-ISP-0", OrgKind::Residential),
            session(4, &[40, 45], "Residential-ISP-0", OrgKind::Residential), // same prefix 0
        ]);
        let prefixes = prefix_latencies(&ds);
        assert_eq!(prefixes.len(), 1);
        assert!((prefixes[0].baseline_ms - 40.0).abs() < 1.5);
        assert_eq!(prefixes[0].sessions, 2);
    }

    #[test]
    fn tail_prefix_selection() {
        let ds = dataset(vec![
            session(0, &[150, 160], "Enterprise-1", OrgKind::Enterprise),
            session(1, &[30, 35], "Residential-ISP-0", OrgKind::Residential),
        ]);
        let prefixes = prefix_latencies(&ds);
        let tail = tail_prefixes(&prefixes, 100.0);
        assert_eq!(tail.len(), 1);
        assert!(tail[0].enterprise);
    }

    #[test]
    fn org_variability_ranks_enterprises_first() {
        let mut sessions = Vec::new();
        let mut id = 0;
        // 60 enterprise sessions, half spiky.
        for i in 0..60 {
            let srtts: &[u64] = if i % 2 == 0 {
                &[30, 31, 400, 380, 29]
            } else {
                &[30, 31, 32, 30, 31]
            };
            sessions.push(session(id, srtts, "Enterprise-1", OrgKind::Enterprise));
            id += 1;
        }
        // 60 residential sessions, all calm.
        for _ in 0..60 {
            sessions.push(session(
                id,
                &[25, 26, 27, 25, 26],
                "Residential-ISP-0",
                OrgKind::Residential,
            ));
            id += 1;
        }
        let ds = dataset(sessions);
        let orgs = org_variability(&ds, 50);
        assert_eq!(orgs.len(), 2);
        assert_eq!(orgs[0].org, "Enterprise-1");
        assert!((orgs[0].pct() - 50.0).abs() < 1.0);
        assert!(orgs[1].pct() < 5.0);
    }

    #[test]
    fn org_variability_respects_min_sessions() {
        let ds = dataset(vec![session(
            0,
            &[30, 400],
            "Enterprise-2",
            OrgKind::Enterprise,
        )]);
        assert!(org_variability(&ds, 50).is_empty());
    }

    #[test]
    fn recurrence_counts_days_correctly() {
        let day = |entries: Vec<(u64, f64)>| -> Vec<PrefixLatency> {
            entries
                .into_iter()
                .map(|(id, baseline)| PrefixLatency {
                    prefix: PrefixId(id),
                    sessions: 3,
                    baseline_ms: baseline,
                    mean_distance_km: 100.0 * (id + 1) as f64,
                    is_us: id != 2,
                    enterprise: id == 0,
                })
                .collect()
        };
        // Prefix 0: in tail all 3 days. Prefix 1: 1 of 3. Prefix 2: never.
        let daily = vec![
            day(vec![(0, 150.0), (1, 150.0), (2, 20.0)]),
            day(vec![(0, 180.0), (1, 30.0), (2, 25.0)]),
            day(vec![(0, 120.0), (1, 40.0), (2, 22.0)]),
        ];
        let rec = tail_recurrence(&daily, 100.0);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec[0].prefix, PrefixId(0));
        assert!((rec[0].frequency() - 1.0).abs() < 1e-12);
        assert_eq!(rec[0].days_observed, 3);
        assert!(rec[0].enterprise && rec[0].is_us);
        assert!((rec[0].mean_distance_km - 100.0).abs() < 1e-9);
        let p1 = rec.iter().find(|p| p.prefix == PrefixId(1)).unwrap();
        assert!((p1.frequency() - 1.0 / 3.0).abs() < 1e-12);
        let p2 = rec.iter().find(|p| p.prefix == PrefixId(2)).unwrap();
        assert_eq!(p2.days_in_tail, 0);

        // The persistent set: top 10% of ever-in-tail (2 prefixes → 1).
        let persistent = persistent_tail(&rec, 0.10);
        assert_eq!(persistent.len(), 1);
        assert_eq!(persistent[0].prefix, PrefixId(0));
        // A 100% fraction keeps both ever-in-tail prefixes, never prefix 2.
        let all = persistent_tail(&rec, 1.0);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|p| p.days_in_tail > 0));
    }

    #[test]
    fn path_cv_groups_by_prefix_and_pop() {
        let ds = dataset(vec![
            session(0, &[30, 30], "R", OrgKind::Residential), // prefix 0
            session(4, &[300, 300], "R", OrgKind::Residential), // prefix 0
            session(1, &[50, 50], "R", OrgKind::Residential), // prefix 1 (solo)
        ]);
        let cvs = path_cv(&ds, 2);
        assert_eq!(cvs.len(), 1, "only prefix 0 has >= 2 sessions");
        // Means 30 vs 300 → CV ≈ 135/165 ≈ 0.82.
        assert!((cvs[0].1 - 0.8181).abs() < 0.01, "cv = {}", cvs[0].1);
    }
}
