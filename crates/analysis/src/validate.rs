//! Estimator validation against simulation ground truth.
//!
//! The paper must *argue* that its estimators are sound (Eq. 5's RTO bound
//! is "conservative", Eq. 4's screen isolates the download stack); the
//! simulator can *measure* it, because every chunk record carries a
//! [`ChunkTruth`] block with the true download-stack latency, the true
//! `rtt₀`, and whether the chunk really was transiently buffered.
//!
//! [`ChunkTruth`]: streamlab_telemetry::records::ChunkTruth

use crate::detect::{detect_transient_buffering, estimate_dds_lower_bound};
use serde::{Deserialize, Serialize};
use streamlab_telemetry::Dataset;

/// Validation of the Eq. 5 download-stack lower bound.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Eq5Validation {
    /// Chunks checked.
    pub chunks: usize,
    /// Chunks where the "lower bound" exceeded the true D_DS — possible
    /// when an RTT spike blows past the RTO estimate (the paper's
    /// conservativeness argument assumes `rtt₀ ≤ RTO`).
    pub violations: usize,
    /// Chunks with substantial true D_DS (> 500 ms).
    pub big_dds_chunks: usize,
    /// Of those, the share the estimator surfaced (non-zero bound) — the
    /// bound's *power* against real problems.
    pub big_dds_detected: usize,
    /// Mean slack `truth − estimate` over surfaced chunks, ms (how much
    /// the bound undershoots).
    pub mean_slack_ms: f64,
}

impl Eq5Validation {
    /// Violation rate (want ≈ 0).
    pub fn violation_rate(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.violations as f64 / self.chunks as f64
        }
    }

    /// Detection power on chunks with large true D_DS.
    pub fn power(&self) -> f64 {
        if self.big_dds_chunks == 0 {
            1.0
        } else {
            self.big_dds_detected as f64 / self.big_dds_chunks as f64
        }
    }
}

/// Validate Eq. 5 over a dataset.
pub fn validate_eq5(ds: &Dataset) -> Eq5Validation {
    let mut v = Eq5Validation {
        chunks: 0,
        violations: 0,
        big_dds_chunks: 0,
        big_dds_detected: 0,
        mean_slack_ms: 0.0,
    };
    let mut slack_sum = 0.0;
    let mut slack_n = 0usize;
    for (_, c) in ds.chunks() {
        v.chunks += 1;
        let est = estimate_dds_lower_bound(c).as_millis_f64();
        let truth = c.player.truth.dds.as_millis_f64();
        if est > truth + 1.0 {
            v.violations += 1;
        }
        if truth > 500.0 {
            v.big_dds_chunks += 1;
            if est > 0.0 {
                v.big_dds_detected += 1;
            }
        }
        if est > 0.0 {
            slack_sum += (truth - est).max(0.0);
            slack_n += 1;
        }
    }
    if slack_n > 0 {
        v.mean_slack_ms = slack_sum / slack_n as f64;
    }
    v
}

/// Validation of the Eq. 4 transient-buffering detector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Eq4Validation {
    /// Chunks screened.
    pub chunks: usize,
    /// Chunks flagged.
    pub flagged: usize,
    /// True transient-buffering events in the dataset.
    pub truth_events: usize,
    /// Flagged ∧ true.
    pub true_positives: usize,
}

impl Eq4Validation {
    /// Precision (want high: a flag should mean a real event).
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.flagged as f64
        }
    }

    /// Recall (the screen is conservative by design; moderate is expected).
    pub fn recall(&self) -> f64 {
        if self.truth_events == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.truth_events as f64
        }
    }
}

/// Validate Eq. 4 over a dataset.
pub fn validate_eq4(ds: &Dataset) -> Eq4Validation {
    let mut v = Eq4Validation {
        chunks: 0,
        flagged: 0,
        truth_events: 0,
        true_positives: 0,
    };
    for s in &ds.sessions {
        let flags = detect_transient_buffering(s);
        v.chunks += s.chunks.len();
        for (i, c) in s.chunks.iter().enumerate() {
            let truth = c.player.truth.transient_buffered;
            let flagged = flags.get(i).map(|f| f.flagged()).unwrap_or(false);
            if truth {
                v.truth_events += 1;
            }
            if flagged {
                v.flagged += 1;
                if truth {
                    v.true_positives += 1;
                }
            }
        }
    }
    v
}

/// Validation of the Eq. 1 residual as an `rtt₀` upper bound.
///
/// The residual is `(rtt₀ + rtt_first_round)/2 + D_DS`: the GET rides one
/// RTT draw out, the first response byte another one back, so per-round
/// jitter can push the residual *slightly* below the recorded `rtt₀`
/// sample. The bound therefore holds up to one jitter swing; violations
/// are counted beyond a `max(10 ms, 20 %)` tolerance, where real
/// accounting bugs — not jitter — would show.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Rtt0Validation {
    /// Chunks checked.
    pub chunks: usize,
    /// Chunks where the residual undershot `rtt₀` beyond the jitter
    /// tolerance (must be ~0).
    pub violations: usize,
    /// Chunks where the residual sat below `rtt₀` at all (jitter-level
    /// undershoot; tens of percent is expected and harmless — the §4.2.1
    /// analyses take minima over many chunks).
    pub jitter_undershoots: usize,
    /// Mean overestimate `residual − rtt₀`, ms (the D_DS contamination the
    /// paper's §4.2.1 accepts when using it as an upper bound).
    pub mean_over_ms: f64,
}

/// Validate the Eq. 1 residual over a dataset.
pub fn validate_rtt0(ds: &Dataset) -> Rtt0Validation {
    let mut v = Rtt0Validation {
        chunks: 0,
        violations: 0,
        jitter_undershoots: 0,
        mean_over_ms: 0.0,
    };
    let mut over_sum = 0.0;
    for (_, c) in ds.chunks() {
        v.chunks += 1;
        let residual = c.fb_residual().as_millis_f64();
        let truth = c.player.truth.rtt0.as_millis_f64();
        if residual < truth {
            v.jitter_undershoots += 1;
        }
        let tolerance = (0.2 * truth).max(10.0);
        if residual + tolerance < truth {
            v.violations += 1;
        }
        over_sum += (residual - truth).max(0.0);
    }
    if v.chunks > 0 {
        v.mean_over_ms = over_sum / v.chunks as f64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_net::TcpInfo;
    use streamlab_sim::{SimDuration, SimTime};
    use streamlab_telemetry::records::{
        CacheOutcome, CdnChunkRecord, ChunkRecord, ChunkTruth, PlayerChunkRecord, SessionMeta,
    };
    use streamlab_telemetry::{Dataset, SessionData};
    use streamlab_workload::{
        AccessClass, Browser, ChunkIndex, GeoPoint, OrgKind, Os, PopId, PrefixId, Region, ServerId,
        SessionId, VideoId,
    };

    fn synthetic_session(n: u32, dds_ms: u64, transient_at: Option<u32>) -> SessionData {
        let meta = SessionMeta {
            session: SessionId(0),
            prefix: PrefixId(0),
            video: VideoId(0),
            video_secs: 120.0,
            os: Os::Windows,
            browser: Browser::Firefox,
            org: "R".into(),
            org_kind: OrgKind::Residential,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint {
                lat: 40.0,
                lon: -75.0,
            },
            pop: PopId(0),
            server: ServerId(0),
            distance_km: 50.0,
            arrival: SimTime::ZERO,
            startup_delay_s: 1.0,
            proxied: false,
            ua_mismatch: false,
            gpu: false,
            visible: true,
        };
        let chunks = (0..n)
            .map(|i| {
                let transient = transient_at == Some(i);
                let rtt0 = SimDuration::from_millis(50 + u64::from(i % 3) * 4);
                let dds = if transient {
                    SimDuration::from_millis(2_000)
                } else {
                    SimDuration::from_millis(dds_ms)
                };
                let server = SimDuration::from_millis(2);
                ChunkRecord {
                    player: PlayerChunkRecord {
                        session: SessionId(0),
                        chunk: ChunkIndex(i),
                        bitrate_kbps: 1050,
                        requested_at: SimTime::from_secs(u64::from(i) * 6),
                        d_fb: rtt0 + server + dds,
                        d_lb: if transient {
                            SimDuration::from_millis(30)
                        } else {
                            SimDuration::from_millis(850 + u64::from(i % 5) * 20)
                        },
                        chunk_secs: 6.0,
                        buf_count: 0,
                        buf_dur: SimDuration::ZERO,
                        visible: true,
                        avg_fps: 30.0,
                        dropped_frames: 0,
                        frames: 180,
                        truth: ChunkTruth {
                            dds,
                            rtt0,
                            transient_buffered: transient,
                        },
                    },
                    cdn: CdnChunkRecord {
                        session: SessionId(0),
                        chunk: ChunkIndex(i),
                        d_wait: SimDuration::from_micros(200),
                        d_open: SimDuration::from_micros(200),
                        d_read: SimDuration::from_millis(2),
                        d_backend: SimDuration::ZERO,
                        cache: CacheOutcome::RamHit,
                        retry_fired: false,
                        size_bytes: 787_500,
                        served_at: SimTime::ZERO,
                        segments: 540,
                        retx_segments: 0,
                        tcp: vec![TcpInfo {
                            at: SimTime::from_secs(u64::from(i) * 6),
                            srtt: SimDuration::from_millis(52),
                            rttvar: SimDuration::from_millis(5),
                            cwnd: 60 + i % 3,
                            retx_total: 0,
                            segs_out_total: 1000,
                            mss: 1460,
                        }],
                    },
                }
            })
            .collect();
        SessionData { meta, chunks }
    }

    fn dataset(sessions: Vec<SessionData>) -> Dataset {
        let raw = sessions.len();
        Dataset {
            sessions,
            filtered_proxy_sessions: 0,
            raw_sessions: raw,
        }
    }

    #[test]
    fn eq5_is_a_true_lower_bound_on_synthetic_data() {
        let ds = dataset(vec![synthetic_session(20, 900, None)]);
        let v = validate_eq5(&ds);
        assert_eq!(v.violations, 0);
        // 900 ms true D_DS vs RTO ≈ 272 ms: every chunk surfaces.
        assert_eq!(v.big_dds_chunks, 20);
        assert_eq!(v.big_dds_detected, 20);
        assert!(v.mean_slack_ms > 100.0, "slack = {}", v.mean_slack_ms);
        assert!((v.power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eq5_misses_small_dds_without_violating() {
        // 100 ms persistent D_DS hides under the RTO slack: zero power,
        // but also zero violations — exactly "conservative".
        let ds = dataset(vec![synthetic_session(20, 100, None)]);
        let v = validate_eq5(&ds);
        assert_eq!(v.violations, 0);
        assert_eq!(v.big_dds_chunks, 0);
    }

    #[test]
    fn eq4_flags_the_synthetic_transient() {
        let ds = dataset(vec![synthetic_session(20, 0, Some(9))]);
        let v = validate_eq4(&ds);
        assert_eq!(v.truth_events, 1);
        assert_eq!(v.true_positives, 1, "the planted event must be flagged");
        assert!((v.precision() - 1.0).abs() < 1e-9);
        assert!((v.recall() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rtt0_residual_is_an_upper_bound() {
        let ds = dataset(vec![
            synthetic_session(15, 0, None),
            synthetic_session(15, 300, None),
        ]);
        let v = validate_rtt0(&ds);
        assert_eq!(v.violations, 0);
        // With D_DS = 300 ms in one session, the mean overestimate is
        // roughly half that across the two sessions.
        assert!(v.mean_over_ms > 100.0, "over = {}", v.mean_over_ms);
    }
}
