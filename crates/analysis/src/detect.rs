//! §4.3 download-stack detection: the Eq. 4 transient-buffering outlier
//! screen and the Eq. 5 RTO-based persistent-`D_DS` lower bound.

use serde::{Deserialize, Serialize};
use streamlab_sim::SimDuration;
use streamlab_telemetry::dataset::SessionData;
use streamlab_telemetry::records::ChunkRecord;

/// Eq. 4 evaluation for one chunk within its session.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Eq4Flags {
    /// Chunk index within the session.
    pub chunk: u32,
    /// `D_FB > μ + 2σ` over the session's chunks.
    pub dfb_outlier: bool,
    /// `TP_inst > μ + 2σ`.
    pub tp_outlier: bool,
    /// SRTT, server latency and CWND all within `μ + σ` (i.e. the network
    /// and server do *not* explain the anomaly).
    pub network_normal: bool,
}

impl Eq4Flags {
    /// The Eq. 4 verdict: flagged as a transient download-stack buffering
    /// event.
    pub fn flagged(&self) -> bool {
        self.dfb_outlier && self.tp_outlier && self.network_normal
    }
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Run the paper's Eq. 4 detector over one session's chunks.
///
/// A chunk is flagged when, relative to the session's own distribution:
/// `D_FB` and the instantaneous throughput are both `> μ + 2σ` while SRTT,
/// server latency and CWND are all `< μ + σ` — the only remaining
/// explanation for a late-but-then-instant delivery is buffering inside
/// the client's download stack.
///
/// Returns one entry per chunk; sessions with fewer than 4 chunks return
/// an empty vector (no meaningful distribution to screen against).
pub fn detect_transient_buffering(s: &SessionData) -> Vec<Eq4Flags> {
    if s.chunks.len() < 4 {
        return Vec::new();
    }
    let dfb: Vec<f64> = s
        .chunks
        .iter()
        .map(|c| c.player.d_fb.as_millis_f64())
        .collect();
    let tp: Vec<f64> = s
        .chunks
        .iter()
        .map(|c| c.player.instantaneous_tp_mbps())
        .collect();
    let srtt: Vec<f64> = s
        .chunks
        .iter()
        .map(|c| {
            c.cdn
                .last_tcp()
                .map(|t| t.srtt.as_millis_f64())
                .unwrap_or(f64::NAN)
        })
        .collect();
    let server: Vec<f64> = s
        .chunks
        .iter()
        .map(|c| c.cdn.server_total().as_millis_f64())
        .collect();
    let cwnd: Vec<f64> = s
        .chunks
        .iter()
        .map(|c| {
            c.cdn
                .last_tcp()
                .map(|t| f64::from(t.cwnd))
                .unwrap_or(f64::NAN)
        })
        .collect();

    let (m_dfb, s_dfb) = mean_std(&dfb);
    let (m_tp, s_tp) = mean_std(&tp);
    let (m_srtt, s_srtt) = mean_std(&srtt);
    let (m_server, s_server) = mean_std(&server);
    let (m_cwnd, s_cwnd) = mean_std(&cwnd);

    s.chunks
        .iter()
        .enumerate()
        .map(|(i, c)| Eq4Flags {
            chunk: c.chunk().raw(),
            dfb_outlier: dfb[i] > m_dfb + 2.0 * s_dfb,
            tp_outlier: tp[i] > m_tp + 2.0 * s_tp,
            // "within one σ of the mean"; the small relative epsilon keeps
            // zero-variance metrics (σ = 0) from failing their own mean.
            network_normal: srtt[i] <= m_srtt + s_srtt + 0.01 * m_srtt.abs()
                && server[i] <= m_server + s_server + 0.01 * m_server.abs()
                && cwnd[i] <= m_cwnd + s_cwnd + 0.01 * m_cwnd.abs(),
        })
        .collect()
}

/// Eq. 5: a conservative per-chunk lower bound on the download-stack
/// latency, using the kernel's RTO as an upper bound on `rtt₀`:
///
/// `D_DS ≥ D_FB − D_CDN − D_BE − RTO`, with
/// `RTO = 200 ms + srtt + 4·srttvar` (Linux per RFC 2988, §4.3.2).
///
/// Returns zero when the bound is not positive (no evidence of stack
/// latency at this conservatism level).
pub fn estimate_dds_lower_bound(c: &ChunkRecord) -> SimDuration {
    let Some(tcp) = c.cdn.last_tcp() else {
        return SimDuration::ZERO;
    };
    let rto = SimDuration::from_millis(200) + tcp.srtt + tcp.rttvar * 4;
    c.player
        .d_fb
        .saturating_sub(c.cdn.d_cdn() + c.cdn.d_backend + rto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_net::TcpInfo;
    use streamlab_sim::{SimDuration, SimTime};
    use streamlab_telemetry::records::{
        CacheOutcome, CdnChunkRecord, ChunkTruth, PlayerChunkRecord, SessionMeta,
    };
    use streamlab_telemetry::SessionData;
    use streamlab_workload::{
        AccessClass, Browser, ChunkIndex, GeoPoint, OrgKind, Os, PopId, PrefixId, Region, ServerId,
        SessionId, VideoId,
    };

    /// A session of `n` well-behaved chunks; caller then perturbs one.
    fn base_session(n: u32) -> SessionData {
        let meta = SessionMeta {
            session: SessionId(0),
            prefix: PrefixId(0),
            video: VideoId(0),
            video_secs: 120.0,
            os: Os::Windows,
            browser: Browser::Firefox,
            org: "Residential-ISP-0".into(),
            org_kind: OrgKind::Residential,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint {
                lat: 40.0,
                lon: -75.0,
            },
            pop: PopId(0),
            server: ServerId(0),
            distance_km: 50.0,
            arrival: SimTime::ZERO,
            startup_delay_s: 1.0,
            proxied: false,
            ua_mismatch: false,
            gpu: false,
            visible: true,
        };
        let chunks = (0..n)
            .map(|i| {
                // Mild deterministic variation so σ > 0.
                let wiggle = u64::from(i % 3) * 5;
                ChunkRecord {
                    player: PlayerChunkRecord {
                        session: SessionId(0),
                        chunk: ChunkIndex(i),
                        bitrate_kbps: 1050,
                        requested_at: SimTime::from_secs(u64::from(i) * 6),
                        d_fb: SimDuration::from_millis(120 + wiggle),
                        d_lb: SimDuration::from_millis(900 + wiggle * 10),
                        chunk_secs: 6.0,
                        buf_count: 0,
                        buf_dur: SimDuration::ZERO,
                        visible: true,
                        avg_fps: 30.0,
                        dropped_frames: 0,
                        frames: 180,
                        truth: ChunkTruth::default(),
                    },
                    cdn: CdnChunkRecord {
                        session: SessionId(0),
                        chunk: ChunkIndex(i),
                        d_wait: SimDuration::from_micros(300),
                        d_open: SimDuration::from_micros(300),
                        d_read: SimDuration::from_millis(2),
                        d_backend: SimDuration::ZERO,
                        cache: CacheOutcome::RamHit,
                        retry_fired: false,
                        size_bytes: 787_500,
                        served_at: SimTime::from_secs(u64::from(i) * 6),
                        segments: 540,
                        retx_segments: 0,
                        tcp: vec![TcpInfo {
                            at: SimTime::from_secs(u64::from(i) * 6),
                            srtt: SimDuration::from_millis(60 + wiggle),
                            rttvar: SimDuration::from_millis(6),
                            cwnd: 80 + i % 3,
                            retx_total: 0,
                            segs_out_total: 5000,
                            mss: 1460,
                        }],
                    },
                }
            })
            .collect();
        SessionData { meta, chunks }
    }

    #[test]
    fn clean_session_has_no_flags() {
        let s = base_session(15);
        let flags = detect_transient_buffering(&s);
        assert_eq!(flags.len(), 15);
        assert!(flags.iter().all(|f| !f.flagged()));
    }

    #[test]
    fn fig17_chunk_is_flagged() {
        let mut s = base_session(15);
        // Chunk 7: stack-buffered. Huge D_FB, tiny D_LB (=> huge TP_inst),
        // normal network/server metrics.
        s.chunks[7].player.d_fb = SimDuration::from_millis(2600);
        s.chunks[7].player.d_lb = SimDuration::from_millis(40);
        let flags = detect_transient_buffering(&s);
        assert!(flags[7].flagged(), "{:?}", flags[7]);
        assert_eq!(flags.iter().filter(|f| f.flagged()).count(), 1);
    }

    #[test]
    fn network_spike_is_not_blamed_on_the_stack() {
        let mut s = base_session(15);
        // Chunk 7 is slow because the *network* got slow: SRTT spiked too.
        s.chunks[7].player.d_fb = SimDuration::from_millis(2600);
        s.chunks[7].player.d_lb = SimDuration::from_millis(40);
        s.chunks[7].cdn.tcp[0].srtt = SimDuration::from_millis(900);
        let flags = detect_transient_buffering(&s);
        assert!(!flags[7].flagged(), "SRTT explains it; must not flag");
    }

    #[test]
    fn server_miss_is_not_blamed_on_the_stack() {
        let mut s = base_session(15);
        // Chunk 7 is slow because of a cache miss at the server.
        s.chunks[7].player.d_fb = SimDuration::from_millis(2600);
        s.chunks[7].player.d_lb = SimDuration::from_millis(40);
        s.chunks[7].cdn.d_read = SimDuration::from_millis(2400);
        s.chunks[7].cdn.d_backend = SimDuration::from_millis(2380);
        s.chunks[7].cdn.cache = CacheOutcome::Miss;
        let flags = detect_transient_buffering(&s);
        assert!(!flags[7].flagged(), "server latency explains it");
    }

    #[test]
    fn short_sessions_are_skipped() {
        let s = base_session(3);
        assert!(detect_transient_buffering(&s).is_empty());
    }

    #[test]
    fn eq5_bound_is_conservative_but_positive_for_big_dds() {
        let mut s = base_session(5);
        // srtt 60–70, rttvar 6 → RTO ≈ 284–294 ms. D_CDN ≈ 2.6 ms.
        // A 1.5 s D_FB therefore leaves a positive D_DS bound ≈ 1.2 s.
        s.chunks[2].player.d_fb = SimDuration::from_millis(1500);
        let est = estimate_dds_lower_bound(&s.chunks[2]);
        assert!(
            est > SimDuration::from_millis(1000),
            "bound too weak: {est}"
        );
        assert!(
            est < SimDuration::from_millis(1500),
            "bound must stay a lower bound"
        );
        // Clean chunks bound to zero.
        let clean = estimate_dds_lower_bound(&s.chunks[0]);
        assert!(clean.is_zero());
    }

    #[test]
    fn eq5_underestimates_truth_never_overestimates() {
        // Ground truth: dds = 800 ms on a chunk whose D_FB = rtt0 + server
        // + dds. The estimator must return ≤ 800 ms.
        let mut s = base_session(5);
        let truth_dds = SimDuration::from_millis(800);
        s.chunks[1].player.truth = ChunkTruth {
            dds: truth_dds,
            rtt0: SimDuration::from_millis(60),
            transient_buffered: false,
        };
        s.chunks[1].player.d_fb =
            SimDuration::from_millis(60) + s.chunks[1].cdn.server_total() + truth_dds;
        let est = estimate_dds_lower_bound(&s.chunks[1]);
        assert!(est <= truth_dds, "est {est} exceeds truth {truth_dds}");
        assert!(
            est > SimDuration::from_millis(300),
            "est {est} uselessly weak"
        );
    }
}
