//! Session-level QoE summaries.
//!
//! §4 of the paper opens: "Prior work has showed that important factors
//! affecting QoE are startup delay, re-buffering ratio, average bitrate,
//! and the rendering quality." This module extracts those four factors per
//! session and summarizes them — the view a content provider's QoE
//! dashboard would show — plus a simple engagement estimate in the spirit
//! of the QoE literature the paper builds on (Dobrian et al.: rebuffering
//! is the strongest engagement killer).

use crate::stats::Cdf;
use serde::{Deserialize, Serialize};
use streamlab_telemetry::dataset::{Dataset, SessionData};

/// The four QoE factors of one session.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionQoe {
    /// Startup delay, seconds (`NaN` if playback never started).
    pub startup_s: f64,
    /// Rebuffering ratio, percent of (stalled + played) time.
    pub rebuffer_pct: f64,
    /// Average requested bitrate, kbps.
    pub avg_bitrate_kbps: f64,
    /// Mean dropped-frame percentage across the session's chunks.
    pub dropped_pct: f64,
}

impl SessionQoe {
    /// Extract the factors from a session.
    pub fn of(s: &SessionData) -> SessionQoe {
        let n = s.chunks.len().max(1) as f64;
        SessionQoe {
            startup_s: s.meta.startup_delay_s,
            rebuffer_pct: s.rebuffer_rate_pct(),
            avg_bitrate_kbps: s.avg_bitrate_kbps(),
            dropped_pct: 100.0 * s.chunks.iter().map(|c| c.player.drop_ratio()).sum::<f64>() / n,
        }
    }

    /// A coarse "is this session's experience acceptable" predicate:
    /// startup under 5 s, rebuffering under 2 %, rendering losing under
    /// 10 % of frames.
    pub fn acceptable(&self) -> bool {
        (self.startup_s.is_finite() && self.startup_s < 5.0)
            && self.rebuffer_pct < 2.0
            && self.dropped_pct < 10.0
    }
}

/// Distribution summary of one QoE factor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FactorSummary {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Mean.
    pub mean: f64,
}

impl FactorSummary {
    fn from(values: Vec<f64>) -> FactorSummary {
        let cdf = Cdf::new(values);
        FactorSummary {
            p50: cdf.median(),
            p90: cdf.quantile(0.90),
            p99: cdf.quantile(0.99),
            mean: cdf.mean(),
        }
    }
}

/// Dataset-wide QoE summary.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QoeSummary {
    /// Sessions summarized.
    pub sessions: usize,
    /// Startup delay, seconds.
    pub startup_s: FactorSummary,
    /// Rebuffering ratio, percent.
    pub rebuffer_pct: FactorSummary,
    /// Average bitrate, kbps.
    pub bitrate_kbps: FactorSummary,
    /// Dropped frames, percent.
    pub dropped_pct: FactorSummary,
    /// Share of sessions that rebuffered at all.
    pub any_rebuffer_share: f64,
    /// Share of sessions passing the `acceptable` predicate.
    pub acceptable_share: f64,
}

/// Summarize QoE across the dataset.
pub fn summarize(ds: &Dataset) -> QoeSummary {
    let qoes: Vec<SessionQoe> = ds.sessions.iter().map(SessionQoe::of).collect();
    let n = qoes.len().max(1) as f64;
    QoeSummary {
        sessions: qoes.len(),
        startup_s: FactorSummary::from(qoes.iter().map(|q| q.startup_s).collect()),
        rebuffer_pct: FactorSummary::from(qoes.iter().map(|q| q.rebuffer_pct).collect()),
        bitrate_kbps: FactorSummary::from(qoes.iter().map(|q| q.avg_bitrate_kbps).collect()),
        dropped_pct: FactorSummary::from(qoes.iter().map(|q| q.dropped_pct).collect()),
        any_rebuffer_share: qoes.iter().filter(|q| q.rebuffer_pct > 0.0).count() as f64 / n,
        acceptable_share: qoes.iter().filter(|q| q.acceptable()).count() as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_net::TcpInfo;
    use streamlab_sim::{SimDuration, SimTime};
    use streamlab_telemetry::records::{
        CacheOutcome, CdnChunkRecord, ChunkRecord, ChunkTruth, PlayerChunkRecord, SessionMeta,
    };
    use streamlab_telemetry::SessionData;
    use streamlab_workload::{
        AccessClass, Browser, ChunkIndex, GeoPoint, OrgKind, Os, PopId, PrefixId, Region, ServerId,
        SessionId, VideoId,
    };

    fn session(id: u64, startup: f64, stall_s: f64, dropped: u32) -> SessionData {
        let meta = SessionMeta {
            session: SessionId(id),
            prefix: PrefixId(0),
            video: VideoId(0),
            video_secs: 60.0,
            os: Os::Windows,
            browser: Browser::Chrome,
            org: "R".into(),
            org_kind: OrgKind::Residential,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint {
                lat: 40.0,
                lon: -75.0,
            },
            pop: PopId(0),
            server: ServerId(0),
            distance_km: 10.0,
            arrival: SimTime::ZERO,
            startup_delay_s: startup,
            proxied: false,
            ua_mismatch: false,
            gpu: true,
            visible: true,
        };
        let chunks = (0..10u32)
            .map(|i| ChunkRecord {
                player: PlayerChunkRecord {
                    session: SessionId(id),
                    chunk: ChunkIndex(i),
                    bitrate_kbps: 1750,
                    requested_at: SimTime::from_secs(u64::from(i) * 6),
                    d_fb: SimDuration::from_millis(100),
                    d_lb: SimDuration::from_millis(900),
                    chunk_secs: 6.0,
                    buf_count: u32::from(i == 3 && stall_s > 0.0),
                    buf_dur: if i == 3 {
                        SimDuration::from_secs_f64(stall_s)
                    } else {
                        SimDuration::ZERO
                    },
                    visible: true,
                    avg_fps: 30.0,
                    dropped_frames: dropped,
                    frames: 180,
                    truth: ChunkTruth::default(),
                },
                cdn: CdnChunkRecord {
                    session: SessionId(id),
                    chunk: ChunkIndex(i),
                    d_wait: SimDuration::from_micros(200),
                    d_open: SimDuration::from_micros(200),
                    d_read: SimDuration::from_millis(2),
                    d_backend: SimDuration::ZERO,
                    cache: CacheOutcome::RamHit,
                    retry_fired: false,
                    size_bytes: 1_312_500,
                    served_at: SimTime::ZERO,
                    segments: 899,
                    retx_segments: 0,
                    tcp: vec![TcpInfo {
                        at: SimTime::ZERO,
                        srtt: SimDuration::from_millis(40),
                        rttvar: SimDuration::from_millis(4),
                        cwnd: 100,
                        retx_total: 0,
                        segs_out_total: 10_000,
                        mss: 1460,
                    }],
                },
            })
            .collect();
        SessionData { meta, chunks }
    }

    fn dataset(sessions: Vec<SessionData>) -> Dataset {
        let raw = sessions.len();
        Dataset {
            sessions,
            filtered_proxy_sessions: 0,
            raw_sessions: raw,
        }
    }

    #[test]
    fn factors_extracted_correctly() {
        let s = session(0, 1.2, 3.0, 9);
        let q = SessionQoe::of(&s);
        assert!((q.startup_s - 1.2).abs() < 1e-12);
        // 3 s stalled over 60 s played: 3/63.
        assert!((q.rebuffer_pct - 100.0 * 3.0 / 63.0).abs() < 1e-9);
        assert!((q.avg_bitrate_kbps - 1750.0).abs() < 1e-9);
        assert!((q.dropped_pct - 5.0).abs() < 1e-9);
        assert!(!q.acceptable(), "rebuffering 4.8% is not acceptable");
    }

    #[test]
    fn acceptable_predicate_boundaries() {
        let good = SessionQoe {
            startup_s: 1.0,
            rebuffer_pct: 0.0,
            avg_bitrate_kbps: 3000.0,
            dropped_pct: 1.0,
        };
        assert!(good.acceptable());
        assert!(!SessionQoe {
            startup_s: 6.0,
            ..good
        }
        .acceptable());
        assert!(!SessionQoe {
            rebuffer_pct: 3.0,
            ..good
        }
        .acceptable());
        assert!(!SessionQoe {
            dropped_pct: 20.0,
            ..good
        }
        .acceptable());
        assert!(!SessionQoe {
            startup_s: f64::NAN,
            ..good
        }
        .acceptable());
    }

    #[test]
    fn summary_aggregates() {
        let ds = dataset(vec![
            session(0, 0.5, 0.0, 0),
            session(1, 1.0, 0.0, 0),
            session(2, 2.0, 6.0, 60),
        ]);
        let q = summarize(&ds);
        assert_eq!(q.sessions, 3);
        assert!((q.any_rebuffer_share - 1.0 / 3.0).abs() < 1e-9);
        assert!((q.acceptable_share - 2.0 / 3.0).abs() < 1e-9);
        assert!((q.startup_s.p50 - 1.0).abs() < 1e-9);
        assert!(q.dropped_pct.mean > 0.0);
    }
}
