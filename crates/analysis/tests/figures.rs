//! Direct tests of the figure reproductions against hand-built datasets
//! with known answers (the end-to-end shapes are covered by the workspace
//! integration tests; these pin the *arithmetic*).

use streamlab_analysis::figures::{cdn, client, network};
use streamlab_net::TcpInfo;
use streamlab_sim::{SimDuration, SimTime};
use streamlab_telemetry::records::{
    CacheOutcome, CdnChunkRecord, ChunkRecord, ChunkTruth, PlayerChunkRecord, SessionMeta,
};
use streamlab_telemetry::{Dataset, SessionData};
use streamlab_workload::{
    AccessClass, Browser, ChunkIndex, GeoPoint, OrgKind, Os, PopId, PrefixId, Region, ServerId,
    SessionId, VideoId,
};

/// Builder for hand-crafted sessions.
struct SessionBuilder {
    id: u64,
    video: u64,
    os: Os,
    browser: Browser,
    gpu: bool,
    visible: bool,
    startup_s: f64,
    chunks: Vec<ChunkSpec>,
}

#[derive(Clone, Copy)]
struct ChunkSpec {
    bitrate: u32,
    d_fb_ms: u64,
    d_lb_ms: u64,
    cache: CacheOutcome,
    retx: u32,
    buf_count: u32,
    buf_dur_s: f64,
    dropped: u32,
    srtt_ms: u64,
}

impl Default for ChunkSpec {
    fn default() -> Self {
        ChunkSpec {
            bitrate: 1750,
            d_fb_ms: 100,
            d_lb_ms: 900,
            cache: CacheOutcome::RamHit,
            retx: 0,
            buf_count: 0,
            buf_dur_s: 0.0,
            dropped: 0,
            srtt_ms: 50,
        }
    }
}

impl SessionBuilder {
    fn new(id: u64) -> Self {
        SessionBuilder {
            id,
            video: 0,
            os: Os::Windows,
            browser: Browser::Chrome,
            gpu: false,
            visible: true,
            startup_s: 1.0,
            chunks: Vec::new(),
        }
    }

    fn video(mut self, v: u64) -> Self {
        self.video = v;
        self
    }

    fn platform(mut self, os: Os, browser: Browser) -> Self {
        self.os = os;
        self.browser = browser;
        self
    }

    fn startup(mut self, s: f64) -> Self {
        self.startup_s = s;
        self
    }

    fn chunk(mut self, spec: ChunkSpec) -> Self {
        self.chunks.push(spec);
        self
    }

    fn chunks(mut self, n: usize, spec: ChunkSpec) -> Self {
        for _ in 0..n {
            self.chunks.push(spec);
        }
        self
    }

    fn build(self) -> SessionData {
        let meta = SessionMeta {
            session: SessionId(self.id),
            prefix: PrefixId(self.id % 7),
            video: VideoId(self.video),
            video_secs: self.chunks.len() as f64 * 6.0,
            os: self.os,
            browser: self.browser,
            org: "Residential-ISP-0".into(),
            org_kind: OrgKind::Residential,
            access: AccessClass::Cable,
            region: Region::UnitedStates,
            location: GeoPoint {
                lat: 40.0,
                lon: -75.0,
            },
            pop: PopId(0),
            server: ServerId(0),
            distance_km: 25.0,
            arrival: SimTime::from_secs(self.id * 100),
            startup_delay_s: self.startup_s,
            proxied: false,
            ua_mismatch: false,
            gpu: self.gpu,
            visible: self.visible,
        };
        let chunks = self
            .chunks
            .iter()
            .enumerate()
            .map(|(i, c)| ChunkRecord {
                player: PlayerChunkRecord {
                    session: SessionId(self.id),
                    chunk: ChunkIndex(i as u32),
                    bitrate_kbps: c.bitrate,
                    requested_at: SimTime::from_secs(self.id * 100 + i as u64 * 6),
                    d_fb: SimDuration::from_millis(c.d_fb_ms),
                    d_lb: SimDuration::from_millis(c.d_lb_ms),
                    chunk_secs: 6.0,
                    buf_count: c.buf_count,
                    buf_dur: SimDuration::from_secs_f64(c.buf_dur_s),
                    visible: self.visible,
                    avg_fps: 30.0 * (1.0 - f64::from(c.dropped) / 180.0),
                    dropped_frames: c.dropped,
                    frames: 180,
                    truth: ChunkTruth::default(),
                },
                cdn: CdnChunkRecord {
                    session: SessionId(self.id),
                    chunk: ChunkIndex(i as u32),
                    d_wait: SimDuration::from_micros(200),
                    d_open: SimDuration::from_micros(200),
                    d_read: match c.cache {
                        CacheOutcome::RamHit => SimDuration::from_millis(2),
                        CacheOutcome::DiskHit => SimDuration::from_millis(15),
                        CacheOutcome::Miss => SimDuration::from_millis(76),
                    },
                    d_backend: if c.cache == CacheOutcome::Miss {
                        SimDuration::from_millis(66)
                    } else {
                        SimDuration::ZERO
                    },
                    cache: c.cache,
                    retry_fired: c.cache != CacheOutcome::RamHit,
                    size_bytes: u64::from(c.bitrate) * 750,
                    served_at: SimTime::from_secs(self.id * 100 + i as u64 * 6),
                    segments: 900,
                    retx_segments: c.retx,
                    tcp: vec![TcpInfo {
                        at: SimTime::from_secs(self.id * 100 + i as u64 * 6),
                        srtt: SimDuration::from_millis(c.srtt_ms),
                        rttvar: SimDuration::from_millis(5),
                        cwnd: 60,
                        retx_total: 0,
                        segs_out_total: 10_000,
                        mss: 1460,
                    }],
                },
            })
            .collect();
        SessionData { meta, chunks }
    }
}

fn dataset(sessions: Vec<SessionData>) -> Dataset {
    let raw = sessions.len();
    Dataset {
        sessions,
        filtered_proxy_sessions: 0,
        raw_sessions: raw,
    }
}

#[test]
fn fig04_bins_startup_by_server_latency() {
    // Two sessions with known first-chunk server latencies and startups.
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .startup(0.5)
            .chunks(3, ChunkSpec::default()) // hit: ~2.4 ms server total
            .build(),
        SessionBuilder::new(1)
            .startup(2.5)
            .chunk(ChunkSpec {
                cache: CacheOutcome::Miss, // ~76.4 ms server total
                ..ChunkSpec::default()
            })
            .chunks(2, ChunkSpec::default())
            .build(),
    ]);
    let series = cdn::fig04(&ds);
    assert_eq!(series.bins.len(), 2, "two distinct latency bins");
    assert!((series.bins[0].mean - 0.5).abs() < 1e-9);
    assert!((series.bins[1].mean - 2.5).abs() < 1e-9);
}

#[test]
fn fig03b_normalizes_rank_and_frequency() {
    // Video 0 played 3x, video 1 played 1x.
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .video(0)
            .chunks(2, ChunkSpec::default())
            .build(),
        SessionBuilder::new(1)
            .video(0)
            .chunks(2, ChunkSpec::default())
            .build(),
        SessionBuilder::new(2)
            .video(0)
            .chunks(2, ChunkSpec::default())
            .build(),
        SessionBuilder::new(3)
            .video(1)
            .chunks(2, ChunkSpec::default())
            .build(),
    ]);
    let rows = cdn::fig03b(&ds);
    assert_eq!(rows.len(), 2);
    assert!((rows[0].0 - 0.5).abs() < 1e-12); // rank 1 of 2
    assert!((rows[0].1 - 0.75).abs() < 1e-12); // 3 of 4 plays
    assert!((rows[1].1 - 0.25).abs() < 1e-12);
}

#[test]
fn fig05_separates_hit_and_miss_totals() {
    let ds = dataset(vec![SessionBuilder::new(0)
        .chunks(5, ChunkSpec::default())
        .chunk(ChunkSpec {
            cache: CacheOutcome::Miss,
            ..ChunkSpec::default()
        })
        .build()]);
    let series = cdn::fig05(&ds, 50);
    let hit = &series[3];
    let miss = &series[4];
    assert_eq!(hit.label, "total-hit");
    assert_eq!(miss.label, "total-miss");
    // Known constants: hit total ≈ 2.4 ms, miss ≈ 76.4 ms.
    assert!((hit.x_at(0.5).unwrap() - 2.4).abs() < 0.1);
    assert!((miss.x_at(0.5).unwrap() - 76.4).abs() < 0.1);
}

#[test]
fn fig06_rank_thresholds_partition_chunks() {
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .video(0)
            .chunks(4, ChunkSpec::default())
            .build(),
        SessionBuilder::new(1)
            .video(90)
            .chunks(
                4,
                ChunkSpec {
                    cache: CacheOutcome::Miss,
                    ..ChunkSpec::default()
                },
            )
            .build(),
    ]);
    let rows = cdn::fig06(&ds, 100, 2);
    assert_eq!(rows.len(), 2);
    // Threshold 0: all 8 chunks, 50% miss. Threshold 50: only the tail
    // video's 4 chunks, 100% miss.
    assert_eq!(rows[0].chunks, 8);
    assert!((rows[0].miss_pct - 50.0).abs() < 1e-9);
    assert_eq!(rows[1].min_rank, 50);
    assert_eq!(rows[1].chunks, 4);
    assert!((rows[1].miss_pct - 100.0).abs() < 1e-9);
}

#[test]
fn fig11_splits_by_loss_and_computes_shares() {
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .chunks(10, ChunkSpec::default())
            .build(),
        SessionBuilder::new(1)
            .chunks(
                10,
                ChunkSpec {
                    retx: 90, // 10% retx rate per chunk
                    ..ChunkSpec::default()
                },
            )
            .build(),
        SessionBuilder::new(2)
            .chunk(ChunkSpec {
                retx: 9,
                ..ChunkSpec::default()
            })
            .chunks(9, ChunkSpec::default())
            .build(),
    ]);
    let f = network::fig11(&ds, 20);
    assert!((f.loss_free_share - 1.0 / 3.0).abs() < 1e-9);
    // Session 1 has exactly 10% retx: NOT below 10%.
    assert!((f.below_10pct_share - 2.0 / 3.0).abs() < 1e-9);
}

#[test]
fn fig14_conditional_probability() {
    // 10 sessions; chunk 1 always stalls when it lost.
    let mut sessions = Vec::new();
    for id in 0..10 {
        let lossy = id < 4;
        sessions.push(
            SessionBuilder::new(id)
                .chunk(ChunkSpec::default())
                .chunk(ChunkSpec {
                    retx: u32::from(lossy) * 50,
                    buf_count: u32::from(lossy),
                    buf_dur_s: if lossy { 2.0 } else { 0.0 },
                    ..ChunkSpec::default()
                })
                .chunks(3, ChunkSpec::default())
                .build(),
        );
    }
    let rows = network::fig14(&ds_ref(sessions), 4);
    let r1 = rows.iter().find(|r| r.chunk == 1).unwrap();
    assert!((r1.p_rebuf - 40.0).abs() < 1e-9);
    assert!((r1.p_rebuf_given_loss - 100.0).abs() < 1e-9);
    let r0 = rows.iter().find(|r| r.chunk == 0).unwrap();
    assert_eq!(r0.p_rebuf, 0.0);
}

fn ds_ref(sessions: Vec<SessionData>) -> Dataset {
    dataset(sessions)
}

#[test]
fn fig15_per_chunk_means() {
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .chunk(ChunkSpec {
                retx: 90,
                ..ChunkSpec::default()
            }) // 10%
            .chunk(ChunkSpec::default())
            .build(),
        SessionBuilder::new(1)
            .chunk(ChunkSpec {
                retx: 18,
                ..ChunkSpec::default()
            }) // 2%
            .chunk(ChunkSpec::default())
            .build(),
    ]);
    let series = network::fig15(&ds, 3);
    assert!(
        (series.bins[0].mean - 6.0).abs() < 1e-9,
        "mean of 10% and 2%"
    );
    assert!((series.bins[1].mean - 0.0).abs() < 1e-9);
}

#[test]
fn fig16_classifies_by_perf_score() {
    let ds = dataset(vec![SessionBuilder::new(0)
        .chunk(ChunkSpec {
            d_fb_ms: 500,
            d_lb_ms: 1000, // 6 / 1.5 = score 4: good
            ..ChunkSpec::default()
        })
        .chunk(ChunkSpec {
            d_fb_ms: 2_000,
            d_lb_ms: 10_000, // 6 / 12 = 0.5: bad
            ..ChunkSpec::default()
        })
        .build()]);
    let f = network::fig16(&ds, 10);
    assert!((f.bad_share - 0.5).abs() < 1e-9);
    // The bad chunk's latency share: 2/12 ≈ 0.167.
    assert!((f.share_bad.points[0].0 - 2.0 / 12.0).abs() < 1e-9);
    assert!((f.dlb_bad.points[0].0 - 10_000.0).abs() < 1e-6);
}

#[test]
fn fig19_uses_visible_software_chunks_only() {
    let mut hw = SessionBuilder::new(0).chunks(
        5,
        ChunkSpec {
            dropped: 0,
            ..ChunkSpec::default()
        },
    );
    hw.gpu = true;
    let sw = SessionBuilder::new(1).chunks(
        5,
        ChunkSpec {
            dropped: 18, // 10%
            d_fb_ms: 1000,
            d_lb_ms: 2000, // rate = 2.0
            ..ChunkSpec::default()
        },
    );
    let ds = dataset(vec![hw.build(), sw.build()]);
    let f = client::fig19(&ds);
    assert!((f.hardware_mean_pct - 0.0).abs() < 1e-9);
    let total_binned: usize = f.by_rate.bins.iter().map(|b| b.count).sum();
    assert_eq!(total_binned, 5, "only the software session's chunks bin");
    let bin = f.by_rate.bins.iter().find(|b| b.count > 0).unwrap();
    assert!((bin.mean - 10.0).abs() < 1e-9);
}

#[test]
fn fig21_normalizes_within_platform_and_skips_hidden() {
    let mut hidden = SessionBuilder::new(2).chunks(4, ChunkSpec::default());
    hidden.visible = false;
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .platform(Os::Windows, Browser::Chrome)
            .chunks(
                6,
                ChunkSpec {
                    dropped: 9,
                    ..ChunkSpec::default()
                },
            )
            .build(),
        SessionBuilder::new(1)
            .platform(Os::Windows, Browser::Firefox)
            .chunks(
                2,
                ChunkSpec {
                    dropped: 36,
                    ..ChunkSpec::default()
                },
            )
            .build(),
        hidden.build(),
    ]);
    let rows = client::fig21(&ds);
    assert_eq!(rows.len(), 2, "hidden session excluded entirely");
    let chrome = rows.iter().find(|r| r.browser == Browser::Chrome).unwrap();
    let firefox = rows.iter().find(|r| r.browser == Browser::Firefox).unwrap();
    assert!((chrome.chunk_share_pct - 75.0).abs() < 1e-9);
    assert!((firefox.chunk_share_pct - 25.0).abs() < 1e-9);
    assert!((chrome.dropped_pct - 5.0).abs() < 1e-9);
    assert!((firefox.dropped_pct - 20.0).abs() < 1e-9);
}

#[test]
fn fig22_filters_by_rate_visibility_and_popularity() {
    let fast = ChunkSpec {
        d_fb_ms: 1000,
        d_lb_ms: 2000, // rate 2.0 ≥ 1.5
        dropped: 36,   // 20%
        ..ChunkSpec::default()
    };
    let slow = ChunkSpec {
        d_fb_ms: 3000,
        d_lb_ms: 5000, // rate 0.75 < 1.5: excluded
        dropped: 90,
        ..ChunkSpec::default()
    };
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .platform(Os::Windows, Browser::Yandex)
            .chunks(30, fast)
            .chunks(10, slow)
            .build(),
        SessionBuilder::new(1)
            .platform(Os::Windows, Browser::Chrome)
            .chunks(
                30,
                ChunkSpec {
                    dropped: 2,
                    d_fb_ms: 1000,
                    d_lb_ms: 2000,
                    ..ChunkSpec::default()
                },
            )
            .build(),
    ]);
    let f = client::fig22(&ds, 10);
    assert_eq!(f.rows.len(), 1);
    assert_eq!(f.rows[0].label, "Yandex,Windows");
    assert_eq!(f.rows[0].chunks, 30, "slow chunks excluded");
    assert!((f.rows[0].dropped_pct - 20.0).abs() < 1e-9);
    assert!((f.rest_avg_pct - 100.0 * 2.0 / 180.0).abs() < 1e-9);
}

#[test]
fn headline_stats_on_known_mixture() {
    let ds = dataset(vec![
        SessionBuilder::new(0)
            .video(0)
            .chunks(8, ChunkSpec::default())
            .chunks(
                2,
                ChunkSpec {
                    cache: CacheOutcome::Miss,
                    ..ChunkSpec::default()
                },
            )
            .build(),
        SessionBuilder::new(1)
            .video(0)
            .chunks(10, ChunkSpec::default())
            .build(),
    ]);
    let s = cdn::headline_stats(&ds);
    assert_eq!(s.sessions, 2);
    assert_eq!(s.chunks, 20);
    assert!((s.miss_rate - 0.1).abs() < 1e-9);
    assert!((s.ram_hit_rate - 0.9).abs() < 1e-9);
    // Session 0: 2 misses of 10 chunks ⇒ in-miss-session ratio 20%.
    assert!((s.mean_miss_ratio_in_miss_sessions - 0.2).abs() < 1e-9);
    assert!((s.hit_median_ms - 2.4).abs() < 0.01);
    assert!((s.miss_median_ms - 76.4).abs() < 0.01);
}

#[test]
fn dds_rebuffering_buckets_use_ground_truth() {
    use streamlab_analysis::figures::client::dds_vs_rebuffering;
    let mut calm = SessionBuilder::new(0)
        .chunks(10, ChunkSpec::default())
        .build();
    for c in &mut calm.chunks {
        c.player.truth.dds = SimDuration::from_millis(50);
    }
    let mut stally = SessionBuilder::new(1)
        .chunks(9, ChunkSpec::default())
        .chunk(ChunkSpec {
            buf_count: 1,
            buf_dur_s: 20.0, // 20 s stalled vs 60 s played: 25% rate
            ..ChunkSpec::default()
        })
        .build();
    for c in &mut stally.chunks {
        c.player.truth.dds = SimDuration::from_millis(700);
    }
    let ds = dataset(vec![calm, stally]);
    let b = dds_vs_rebuffering(&ds);
    assert_eq!(b.counts, [1, 0, 1]);
    assert!((b.no_rebuffer_ms - 50.0).abs() < 1e-9);
    assert!((b.heavy_rebuffer_ms - 700.0).abs() < 1e-9);
    // Estimated columns exist and are conservative (≤ truth here, since
    // the synthetic D_FB never outruns RTO by more than the true D_DS).
    assert!(b.est_heavy_rebuffer_ms <= b.heavy_rebuffer_ms + 1e-9);
}
