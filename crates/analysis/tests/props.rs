//! Property-based tests for the statistics layer.

use proptest::prelude::*;
use streamlab_analysis::stats::{pearson, BinnedSeries, Cdf};

proptest! {
    #[test]
    fn cdf_quantiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(-1.0e9f64..1.0e9, 1..400)
    ) {
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let cdf = Cdf::new(samples);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev);
            prop_assert!(q >= lo && q <= hi);
            prev = q;
        }
        prop_assert!(cdf.mean() >= lo && cdf.mean() <= hi);
        prop_assert!(cdf.std() >= 0.0);
    }

    #[test]
    fn cdf_at_is_a_distribution_function(
        samples in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200),
        probes in proptest::collection::vec(-1.0e6f64..1.0e6, 1..20)
    ) {
        let cdf = Cdf::new(samples);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted_probes {
            let p = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn cdf_points_partition_mass(
        samples in proptest::collection::vec(0.0f64..1.0e6, 1..300),
        n in 1usize..50
    ) {
        let cdf = Cdf::new(samples);
        let pts = cdf.points(n);
        prop_assert!(!pts.is_empty());
        let mut prev_x = f64::NEG_INFINITY;
        let mut prev_f = 0.0;
        for &(x, f) in &pts {
            prop_assert!(x >= prev_x);
            prop_assert!(f > prev_f);
            prop_assert!(f <= 1.0 + 1e-12);
            prev_x = x;
            prev_f = f;
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        // CCDF is the mirror image.
        for ((_, f), (_, s)) in pts.iter().zip(cdf.ccdf_points(n)) {
            prop_assert!((f + s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn binned_series_conserves_in_range_count(
        pairs in proptest::collection::vec((0.0f64..100.0, -50.0f64..50.0), 0..300),
        bins in 1usize..30
    ) {
        let series = BinnedSeries::fixed_width(&pairs, 0.0, 100.0, bins);
        let total: usize = series.bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, pairs.len());
        for b in &series.bins {
            prop_assert!(b.count > 0);
            prop_assert!(b.q25 <= b.median && b.median <= b.q75);
            prop_assert!(b.x_center >= 0.0 && b.x_center <= 100.0);
        }
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in proptest::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3), 2..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        if r.is_finite() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&ys, &xs);
            prop_assert!((r - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_perfect_on_affine(
        xs in proptest::collection::vec(-1.0e3f64..1.0e3, 3..50),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0
    ) {
        // Guard against degenerate x (all equal).
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1.0);
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
    }
}
