//! Property-based tests for the client substrate.

use proptest::prelude::*;
use streamlab_client::abr::{Abr, AbrAlgorithm, AbrContext};
use streamlab_client::{DownloadStack, PlaybackBuffer, PlayerConfig, RenderPath, StackConfig};
use streamlab_sim::{RngStream, SimDuration, SimTime};
use streamlab_workload::{BitrateLadder, Browser, ChunkIndex, Os};

fn any_os() -> impl Strategy<Value = Os> {
    prop_oneof![Just(Os::Windows), Just(Os::MacOs), Just(Os::Linux)]
}

fn any_browser() -> impl Strategy<Value = Browser> {
    prop_oneof![
        Just(Browser::Chrome),
        Just(Browser::Firefox),
        Just(Browser::InternetExplorer),
        Just(Browser::Edge),
        Just(Browser::Safari),
        Just(Browser::Opera),
        Just(Browser::Yandex),
        Just(Browser::Vivaldi),
        Just(Browser::SeaMonkey),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stack_preserves_byte_ordering(
        os in any_os(),
        browser in any_browser(),
        seed in any::<u64>(),
        chunks in proptest::collection::vec((1u64..10_000, 1u64..20_000), 1..30)
    ) {
        let mut stack = DownloadStack::new(os, browser, StackConfig::default(),
            RngStream::new(seed, "prop-stack"));
        let mut t = SimTime::ZERO;
        for (i, (gap_ms, spread_ms)) in chunks.into_iter().enumerate() {
            let first = t + SimDuration::from_millis(gap_ms);
            let last = first + SimDuration::from_millis(spread_ms);
            let d = stack.deliver(ChunkIndex(i as u32), first, last);
            prop_assert!(d.player_first_byte < d.player_last_byte);
            // The stack can only delay, never time-travel.
            prop_assert!(d.player_first_byte >= first);
            prop_assert!(d.player_last_byte >= first);
            t = last;
        }
    }

    #[test]
    fn render_outcome_is_well_formed(
        os in any_os(),
        browser in any_browser(),
        gpu in any::<bool>(),
        cores in 1u8..16,
        load in 0.0f64..1.0,
        seed in any::<u64>(),
        rate in 0.0f64..10.0,
        bitrate in 100u32..5_000,
        visible in any::<bool>(),
        buffer in 0.0f64..40.0,
    ) {
        let mut r = RenderPath::new(os, browser, gpu, cores, load,
            RngStream::new(seed, "prop-render"));
        let o = r.render_chunk(6.0, bitrate, rate, visible, buffer);
        prop_assert!(o.dropped <= o.frames);
        prop_assert!(o.frames > 0);
        prop_assert!((0.0..=30.0 + 1e-9).contains(&o.avg_fps));
        prop_assert!((o.avg_fps - 30.0 * (1.0 - o.drop_ratio())).abs() < 1e-6);
    }

    #[test]
    fn abr_always_picks_a_ladder_rung(
        tputs in proptest::collection::vec(0.1f64..1.0e6, 0..30),
        buffer in 0.0f64..60.0,
        next_chunk in 0u32..100,
    ) {
        let ladder = BitrateLadder::default();
        for algo in [
            AbrAlgorithm::RateBased { window: 5 },
            AbrAlgorithm::RobustRate { window: 5 },
            AbrAlgorithm::BufferBased { reservoir_s: 5.0, cushion_s: 20.0 },
            AbrAlgorithm::Hybrid { window: 5 },
        ] {
            let abr = Abr::new(algo, &ladder);
            let pick = abr.choose(&AbrContext {
                ladder: &ladder,
                throughput_kbps: &tputs,
                buffer_s: buffer,
                next_chunk,
            });
            prop_assert!(ladder.rung_index(pick).is_some(), "{pick} off-ladder");
        }
    }

    #[test]
    fn playback_buffer_conservation(
        arrivals in proptest::collection::vec((1u64..20_000, 0.5f64..6.0), 1..50)
    ) {
        // Video in = video played + video buffered, and stall time only
        // grows. Holds for any arrival pattern.
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), SimTime::ZERO);
        let mut t = SimTime::ZERO;
        let mut fed = 0.0;
        let mut last_stall = SimDuration::ZERO;
        for (gap_ms, secs) in arrivals {
            t += SimDuration::from_millis(gap_ms);
            b.add_chunk(t, secs);
            fed += secs;
            prop_assert!(b.level_s() >= -1e-9);
            prop_assert!(b.played_s() >= -1e-9);
            prop_assert!((b.level_s() + b.played_s() - fed).abs() < 1e-6,
                "conservation violated: level {} + played {} != fed {}",
                b.level_s(), b.played_s(), fed);
            prop_assert!(b.rebuffer_total() >= last_stall);
            last_stall = b.rebuffer_total();
            prop_assert!((0.0..=1.0).contains(&b.rebuffer_rate()));
        }
        // Startup, once it happened, is fixed and non-negative.
        if let Some(d) = b.startup_delay() {
            prop_assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn playback_never_stalls_with_generous_lead(
        n in 2u32..40,
    ) {
        // All chunks delivered instantly at t=0: playout through the whole
        // content (the buffer does not model end-of-video; the orchestrator
        // stops advancing at the last chunk's playout) can never stall.
        let mut b = PlaybackBuffer::new(PlayerConfig {
            max_buffer_s: f64::INFINITY,
            ..PlayerConfig::default()
        }, SimTime::ZERO);
        for _ in 0..n {
            b.add_chunk(SimTime::ZERO, 6.0);
        }
        b.advance_to(SimTime::from_secs(u64::from(n) * 6));
        prop_assert_eq!(b.rebuffer_count(), 0);
        prop_assert!(b.rebuffer_total().is_zero());
        prop_assert!((b.played_s() - f64::from(n) * 6.0).abs() < 1e-6);
    }
}
