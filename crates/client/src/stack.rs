//! The client download stack: OS → browser → Flash runtime → player.
//!
//! The paper's §4.3 findings, all reproduced by this model:
//!
//! 1. *Transient buffering*: occasionally a chunk's bytes are held inside
//!    the stack and released to the player late and all at once, so the
//!    player sees a hugely inflated first-byte delay together with an
//!    impossible instantaneous throughput (Fig. 17). Detected by Eq. 4.
//! 2. *Persistent stack latency*: some OS/browser combinations add hundreds
//!    of ms to every chunk (Table 5: Safari outside OS X ≈ 1 s, Firefox on
//!    Windows ≈ 280 ms, ...). 17.6 % of chunks show a non-zero `D_DS`.
//! 3. *First-chunk overhead*: the Flash `ProgressEvent` listener and data
//!    path are initialized on the first chunk, adding ~300 ms at the median
//!    even under equivalent network/server conditions (Fig. 18).

use serde::{Deserialize, Serialize};
use streamlab_sim::dist::{LogNormal, Sample};
use streamlab_sim::{RngStream, SimDuration, SimTime};
use streamlab_workload::{Browser, ChunkIndex, Os};

/// Tunables for the download-stack model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// Probability that any given chunk is transiently buffered inside the
    /// stack (paper: 0.32 % of chunks; 3.1 % of sessions have ≥ 1).
    pub transient_prob: f64,
    /// Minimum / maximum hold time of a transient buffering event, ms.
    pub transient_hold_ms: (f64, f64),
    /// Median of the first-chunk initialization overhead, ms (Fig. 18
    /// shows a ~300 ms median gap).
    pub first_chunk_median_ms: f64,
    /// Log-sigma of the first-chunk overhead.
    pub first_chunk_sigma: f64,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            transient_prob: 0.0032,
            transient_hold_ms: (400.0, 3000.0),
            first_chunk_median_ms: 300.0,
            first_chunk_sigma: 0.5,
        }
    }
}

/// Per-platform persistent stack behaviour: `(probability the session is
/// affected, median per-chunk D_DS when affected in ms)`.
///
/// Calibrated against Table 5's per-platform means and the 17.6 %
/// chunks-with-nonzero-D_DS headline.
fn platform_params(os: Os, browser: Browser) -> (f64, f64) {
    use Browser::*;
    use Os::*;
    match (os, browser) {
        // Safari outside OS X runs an ancient, unmaintained port.
        (Windows, Safari) => (0.55, 900.0),
        (Linux, Safari) => (0.55, 920.0),
        (MacOs, Safari) => (0.06, 60.0), // native HLS: clean path
        // Firefox runs Flash in a protected-mode subprocess: extra copies.
        (Windows, Firefox) => (0.32, 300.0),
        (MacOs, Firefox) => (0.30, 290.0),
        (Linux, Firefox) => (0.30, 290.0),
        // Chrome ships its own pepper-Flash: the cleanest plugin path.
        (_, Chrome) => (0.08, 70.0),
        (_, InternetExplorer) => (0.22, 180.0),
        (_, Edge) => (0.12, 110.0),
        // The unpopular tail: Yandex and SeaMonkey called out in §4.3.2.
        (_, Yandex) => (0.5, 360.0),
        (_, SeaMonkey) => (0.48, 340.0),
        (_, Vivaldi) => (0.38, 280.0),
        (_, Opera) => (0.35, 250.0),
    }
}

/// What the player observes for one chunk after the stack is applied.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackDelivery {
    /// First byte reaches the *player* (NIC arrival + D_DS).
    pub player_first_byte: SimTime,
    /// Last byte reaches the player.
    pub player_last_byte: SimTime,
    /// The download-stack latency added to the first byte (the true D_DS,
    /// which production instrumentation can only estimate via Eq. 5).
    pub dds: SimDuration,
    /// True when this chunk was transiently buffered and flushed at once
    /// (the Fig. 17 signature: huge D_FB, tiny D_LB).
    pub transient_buffered: bool,
}

/// The download stack of one session.
#[derive(Debug)]
pub struct DownloadStack {
    cfg: StackConfig,
    rng: RngStream,
    /// Per-chunk persistent D_DS sampler; `None` for unaffected sessions.
    persistent: Option<LogNormal>,
    first_chunk_extra: LogNormal,
    /// Stats: chunks seen / transiently buffered.
    chunks: u64,
    transient_events: u64,
}

impl DownloadStack {
    /// Build the stack model for a session on the given platform.
    pub fn new(os: Os, browser: Browser, cfg: StackConfig, mut rng: RngStream) -> Self {
        let (p_affected, median_ms) = platform_params(os, browser);
        let persistent = if rng.chance(p_affected) {
            // Session-level severity varies around the platform median.
            let severity = median_ms * rng.uniform_range(0.6, 1.6);
            Some(LogNormal::from_median(severity, 0.5))
        } else {
            None
        };
        DownloadStack {
            first_chunk_extra: LogNormal::from_median(
                cfg.first_chunk_median_ms,
                cfg.first_chunk_sigma,
            ),
            cfg,
            rng,
            persistent,
            chunks: 0,
            transient_events: 0,
        }
    }

    /// True when this session carries a persistent stack problem.
    pub fn is_persistent(&self) -> bool {
        self.persistent.is_some()
    }

    /// `(chunks processed, transient buffering events)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.chunks, self.transient_events)
    }

    /// Pass one chunk through the stack. `nic_first` / `nic_last` are the
    /// network-level byte arrival times.
    pub fn deliver(
        &mut self,
        chunk: ChunkIndex,
        nic_first: SimTime,
        nic_last: SimTime,
    ) -> StackDelivery {
        self.chunks += 1;
        let mut dds = if let Some(p) = &self.persistent {
            SimDuration::from_millis_f64(p.sample(&mut self.rng))
        } else {
            // Healthy sessions still pay a small per-chunk handling cost,
            // well under a millisecond — effectively "zero D_DS" at the
            // paper's measurement resolution.
            SimDuration::from_micros(self.rng.uniform_range(50.0, 400.0) as u64)
        };
        if chunk.is_first() {
            // Event-listener registration and data-path setup (§4.3.3).
            dds += SimDuration::from_millis_f64(self.first_chunk_extra.sample(&mut self.rng));
        }

        if self.rng.chance(self.cfg.transient_prob) {
            // The whole chunk is held in the stack and flushed at once:
            // the player's first byte waits for the NIC's *last* byte plus
            // the hold, then the data arrives almost instantaneously.
            self.transient_events += 1;
            let (lo, hi) = self.cfg.transient_hold_ms;
            let hold = SimDuration::from_millis_f64(self.rng.uniform_range(lo, hi));
            let flush = SimDuration::from_millis_f64(self.rng.uniform_range(10.0, 80.0));
            let first = nic_last + hold;
            return StackDelivery {
                player_first_byte: first,
                player_last_byte: first + flush,
                dds: first.duration_since(nic_first),
                transient_buffered: true,
            };
        }

        // Constant stack latency is a pipeline delay: every byte passes
        // through the same path, so the whole delivery window shifts and
        // D_LB is preserved. (Collapsing D_LB is the signature of the
        // *transient* buffering event above, not of persistent latency.)
        let first = nic_first + dds;
        let last = (nic_last + dds).max(first + SimDuration::from_micros(100));
        StackDelivery {
            player_first_byte: first,
            player_last_byte: last,
            dds,
            transient_buffered: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> RngStream {
        RngStream::new(seed, "stack-test")
    }

    fn deliver_n(stack: &mut DownloadStack, n: u32) -> Vec<StackDelivery> {
        (0..n)
            .map(|i| {
                let t0 = SimTime::from_secs(u64::from(i) * 6);
                stack.deliver(
                    ChunkIndex(i),
                    t0 + SimDuration::from_millis(50),
                    t0 + SimDuration::from_millis(600),
                )
            })
            .collect()
    }

    #[test]
    fn ordering_invariants_hold() {
        for seed in 0..30 {
            let mut s = DownloadStack::new(
                Os::Windows,
                Browser::Safari,
                StackConfig::default(),
                rng(seed),
            );
            for d in deliver_n(&mut s, 20) {
                assert!(d.player_first_byte < d.player_last_byte);
            }
        }
    }

    #[test]
    fn first_chunk_has_extra_latency() {
        // Aggregate over many sessions: median first-chunk D_DS should be
        // ~300 ms above the others (Fig. 18).
        let mut firsts = Vec::new();
        let mut others = Vec::new();
        for seed in 0..400 {
            let mut s = DownloadStack::new(
                Os::Windows,
                Browser::Chrome,
                StackConfig {
                    transient_prob: 0.0,
                    ..StackConfig::default()
                },
                rng(seed),
            );
            let ds = deliver_n(&mut s, 5);
            firsts.push(ds[0].dds.as_millis_f64());
            others.extend(ds[1..].iter().map(|d| d.dds.as_millis_f64()));
        }
        firsts.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        others.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let gap = firsts[firsts.len() / 2] - others[others.len() / 2];
        assert!((150.0..600.0).contains(&gap), "median gap = {gap} ms");
    }

    #[test]
    fn transient_buffering_has_fig17_signature() {
        let mut s = DownloadStack::new(
            Os::Windows,
            Browser::Firefox,
            StackConfig {
                transient_prob: 1.0, // force the event
                ..StackConfig::default()
            },
            rng(7),
        );
        let nic_first = SimTime::from_millis(100);
        let nic_last = SimTime::from_millis(700);
        let d = s.deliver(ChunkIndex(3), nic_first, nic_last);
        assert!(d.transient_buffered);
        // First byte waits past the NIC's last byte...
        assert!(d.player_first_byte > nic_last);
        // ...and the flush is near-instant (player-side D_LB tiny).
        let flush = d.player_last_byte.duration_since(d.player_first_byte);
        assert!(flush < SimDuration::from_millis(100), "flush = {flush}");
    }

    #[test]
    fn transient_rate_matches_config() {
        let mut events = 0u64;
        let mut chunks = 0u64;
        for seed in 0..200 {
            let mut s = DownloadStack::new(
                Os::Windows,
                Browser::Chrome,
                StackConfig::default(),
                rng(seed),
            );
            deliver_n(&mut s, 25);
            let (c, e) = s.stats();
            chunks += c;
            events += e;
        }
        let rate = events as f64 / chunks as f64;
        assert!(
            (0.001..0.007).contains(&rate),
            "transient rate = {rate} (target ~0.0032)"
        );
    }

    #[test]
    fn safari_on_windows_is_much_worse_than_chrome() {
        // Table 5 ordering: Safari/Windows ≈ 1 s vs Chrome tens of ms.
        let mean_dds = |os, browser| {
            let mut total = 0.0;
            let mut n = 0u32;
            for seed in 0..300 {
                let mut s = DownloadStack::new(
                    os,
                    browser,
                    StackConfig {
                        transient_prob: 0.0,
                        first_chunk_median_ms: 0.001,
                        ..StackConfig::default()
                    },
                    rng(seed),
                );
                for d in deliver_n(&mut s, 10) {
                    total += d.dds.as_millis_f64();
                    n += 1;
                }
            }
            total / f64::from(n)
        };
        let safari_win = mean_dds(Os::Windows, Browser::Safari);
        let ff_win = mean_dds(Os::Windows, Browser::Firefox);
        let chrome_win = mean_dds(Os::Windows, Browser::Chrome);
        assert!(
            safari_win > 2.5 * ff_win,
            "safari {safari_win} vs firefox {ff_win}"
        );
        assert!(
            ff_win > 2.0 * chrome_win,
            "ff {ff_win} vs chrome {chrome_win}"
        );
    }

    #[test]
    fn healthy_sessions_have_sub_ms_dds() {
        let mut s = DownloadStack::new(
            Os::Windows,
            Browser::Chrome,
            StackConfig {
                transient_prob: 0.0,
                ..StackConfig::default()
            },
            rng(12345), // seed chosen so the 8% persistent draw misses
        );
        if s.is_persistent() {
            return; // persistent session: not the case under test
        }
        for d in deliver_n(&mut s, 10).iter().skip(1) {
            assert!(d.dds < SimDuration::from_millis(1), "dds = {}", d.dds);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s =
                DownloadStack::new(Os::MacOs, Browser::Firefox, StackConfig::default(), rng(9));
            deliver_n(&mut s, 15)
                .iter()
                .map(|d| d.dds.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
