//! The rendering path: demux → decode → render, with frame drops.
//!
//! §4.4 of the paper: without hardware (GPU) rendering, frames are decoded
//! and rendered by the CPU, making quality sensitive to CPU utilization;
//! a chunk arriving slower than **1.5 seconds of video per second** leaves
//! too little slack for the processing pipeline and frames drop (Fig. 19);
//! beyond 1.5 s/s the framerate stops improving. Browsers differ in how
//! efficiently they move frames (internal Flash and native HLS beat
//! subprocess Flash; unpopular browsers are worst — Figs. 21/22); hidden
//! players drop frames *by design* to save CPU.

use serde::{Deserialize, Serialize};
use streamlab_sim::RngStream;
use streamlab_workload::{Browser, Os};

/// Encoded frames per second of the content.
pub const CONTENT_FPS: f64 = 30.0;

/// Relative CPU cost multiplier of the browser's rendering path.
///
/// 1.0 = Chrome's internal (pepper) Flash. Orderings follow Figs. 21/22:
/// Chrome and Safari-on-Mac best, Firefox's protected-mode subprocess
/// middling, the unpopular tail (Yandex, Vivaldi, Opera, Safari-on-Windows)
/// worst.
pub fn browser_efficiency(os: Os, browser: Browser) -> f64 {
    use Browser::*;
    use Os::*;
    match (os, browser) {
        (MacOs, Safari) => 0.95, // native HLS path
        (_, Chrome) => 1.0,
        (_, Edge) => 1.12,
        (_, InternetExplorer) => 1.18,
        (_, Firefox) => 1.3,
        (_, Opera) => 1.65,
        (_, Vivaldi) => 1.8,
        (Windows, Safari) => 1.95,
        (Linux, Safari) => 2.0,
        (_, Yandex) => 2.05,
        (_, SeaMonkey) => 1.9,
    }
}

/// The rendering result for one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenderOutcome {
    /// Frames the chunk carries.
    pub frames: u32,
    /// Frames dropped (`dropfr` in Table 2).
    pub dropped: u32,
    /// Average rendered framerate (`avgfr`).
    pub avg_fps: f64,
}

impl RenderOutcome {
    /// Fraction of frames dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            f64::from(self.dropped) / f64::from(self.frames)
        }
    }
}

/// The rendering path of one session.
#[derive(Debug)]
pub struct RenderPath {
    /// Hardware rendering available (GPU decode + composite).
    gpu: bool,
    /// Client core count.
    cores: u8,
    /// Background CPU utilization, fraction of the whole machine.
    background_load: f64,
    /// Browser/OS cost multiplier.
    efficiency: f64,
    rng: RngStream,
    /// Cumulative frames rendered across all chunks of the session.
    frames_total: u64,
    /// Cumulative frames dropped across all chunks of the session.
    dropped_total: u64,
}

impl RenderPath {
    /// Build the rendering path for a session.
    pub fn new(
        os: Os,
        browser: Browser,
        gpu: bool,
        cores: u8,
        background_load: f64,
        rng: RngStream,
    ) -> Self {
        RenderPath {
            gpu,
            cores: cores.max(1),
            background_load: background_load.clamp(0.0, 1.0),
            efficiency: browser_efficiency(os, browser),
            rng,
            frames_total: 0,
            dropped_total: 0,
        }
    }

    /// True when hardware rendering is in use.
    pub fn uses_gpu(&self) -> bool {
        self.gpu
    }

    /// Total frames this session's chunks carried so far.
    pub fn frames_total(&self) -> u64 {
        self.frames_total
    }

    /// Total frames dropped so far.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Render one chunk.
    ///
    /// * `chunk_secs` — seconds of video in the chunk;
    /// * `bitrate_kbps` — encoded bitrate (decode cost scales with it);
    /// * `download_rate` — seconds-of-video per wall-second for this chunk,
    ///   `τ / (D_FB + D_LB)` (the Fig. 19 x-axis);
    /// * `visible` — the `vis` flag; hidden players drop frames by design;
    /// * `buffer_s` — playback-buffer level when the chunk starts playing;
    ///   buffered frames mask a slow arrival (the paper's 5.7 % of chunks
    ///   with low rate but good rendering).
    pub fn render_chunk(
        &mut self,
        chunk_secs: f64,
        bitrate_kbps: u32,
        download_rate: f64,
        visible: bool,
        buffer_s: f64,
    ) -> RenderOutcome {
        let frames = (chunk_secs * CONTENT_FPS).round().max(1.0) as u32;

        if !visible {
            // Hidden tab / minimized window: frames dropped to save CPU.
            let ratio = self.rng.uniform_range(0.6, 0.95);
            return self.outcome(frames, ratio);
        }
        if self.gpu {
            // Hardware rendering: near-zero drops (Fig. 20, first bar).
            let ratio = self.rng.uniform_range(0.0, 0.01);
            return self.outcome(frames, ratio);
        }

        // --- software rendering ---
        // Demand: demux+decode+render of this bitrate on this browser,
        // expressed in cores. 1050 kbps on Chrome ≈ 0.56 cores.
        let demand = self.efficiency * (0.35 + 0.6 * f64::from(bitrate_kbps) / 3000.0);
        // Supply: the player's fair share against the background threads
        // (a preemptive scheduler never starves it completely), capped at
        // 1.2 cores — the Flash rendering path is essentially
        // single-threaded.
        let cores = f64::from(self.cores);
        let busy = cores * self.background_load;
        let fair_share = cores * demand / (demand + busy);
        let supply = fair_share.min(1.2);
        let cpu_shortfall = if supply >= demand {
            0.0
        } else {
            (demand - supply) / demand
        };
        // Scheduling interference grows with machine load even before the
        // player's share is squeezed (cache pressure, context switches) —
        // the gradual rise of Fig. 20.
        let contention = 0.04 * self.background_load * self.background_load;

        // Late arrival: below 1.5 s/s the pipeline has no slack; the
        // shortfall grows toward 1 as the rate approaches 0 (Fig. 19).
        // A full playback buffer hides it (frames already decoded ahead).
        let late_shortfall = if download_rate >= 1.5 || buffer_s > 12.0 {
            0.0
        } else {
            ((1.5 - download_rate.max(0.0)) / 1.5).clamp(0.0, 1.0) * 0.55
        };

        // Small irreducible software-rendering jitter.
        let base = self.rng.uniform_range(0.0, 0.02);
        let ratio = (base + contention + cpu_shortfall.max(late_shortfall)).clamp(0.0, 1.0);
        self.outcome(frames, ratio)
    }

    fn outcome(&mut self, frames: u32, drop_ratio: f64) -> RenderOutcome {
        // Binomial-ish realization of the drop ratio with mild noise.
        let noisy = (drop_ratio * self.rng.uniform_range(0.85, 1.15)).clamp(0.0, 1.0);
        let dropped = (f64::from(frames) * noisy).round() as u32;
        let dropped = dropped.min(frames);
        self.frames_total += u64::from(frames);
        self.dropped_total += u64::from(dropped);
        RenderOutcome {
            frames,
            dropped,
            avg_fps: CONTENT_FPS * (1.0 - f64::from(dropped) / f64::from(frames)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(gpu: bool, cores: u8, load: f64, seed: u64) -> RenderPath {
        RenderPath::new(
            Os::Windows,
            Browser::Chrome,
            gpu,
            cores,
            load,
            RngStream::new(seed, "render-test"),
        )
    }

    fn mean_drop(path: &mut RenderPath, rate: f64, bitrate: u32, n: u32) -> f64 {
        (0..n)
            .map(|_| {
                path.render_chunk(6.0, bitrate, rate, true, 0.0)
                    .drop_ratio()
            })
            .sum::<f64>()
            / f64::from(n)
    }

    #[test]
    fn gpu_renders_almost_everything() {
        let mut p = path(true, 2, 0.9, 1);
        let d = mean_drop(&mut p, 0.5, 3000, 200);
        assert!(d < 0.02, "gpu drop = {d}");
    }

    #[test]
    fn hidden_player_drops_by_design() {
        let mut p = path(true, 8, 0.0, 2);
        let o = p.render_chunk(6.0, 1050, 3.0, false, 30.0);
        assert!(o.drop_ratio() > 0.5);
        assert!(o.avg_fps < 15.0);
    }

    #[test]
    fn fig19_knee_at_one_point_five() {
        // Software rendering, idle CPU: drops fall as the download rate
        // rises, flattening at 1.5 s/s (Fig. 19).
        let mut p = path(false, 8, 0.0, 3);
        let slow = mean_drop(&mut p, 0.5, 1050, 300);
        let near = mean_drop(&mut p, 1.0, 1050, 300);
        let at_knee = mean_drop(&mut p, 1.5, 1050, 300);
        let fast = mean_drop(&mut p, 4.0, 1050, 300);
        assert!(slow > near && near > at_knee, "{slow} > {near} > {at_knee}");
        assert!(slow > 0.2, "slow-rate drops should be heavy: {slow}");
        // Beyond the knee there is nothing left to gain.
        assert!(
            (at_knee - fast).abs() < 0.02,
            "knee {at_knee} vs fast {fast}"
        );
        assert!(at_knee < 0.05);
    }

    #[test]
    fn buffered_frames_mask_slow_arrival() {
        let mut p = path(false, 8, 0.0, 4);
        let unmasked = (0..300)
            .map(|_| p.render_chunk(6.0, 1050, 0.8, true, 0.0).drop_ratio())
            .sum::<f64>()
            / 300.0;
        let masked = (0..300)
            .map(|_| p.render_chunk(6.0, 1050, 0.8, true, 25.0).drop_ratio())
            .sum::<f64>()
            / 300.0;
        assert!(masked < 0.05, "masked = {masked}");
        assert!(unmasked > 0.15, "unmasked = {unmasked}");
    }

    #[test]
    fn cpu_load_increases_drops() {
        // The Fig. 20 controlled experiment: 8 cores, load one core at a
        // time, software rendering.
        let mut drops = Vec::new();
        for loaded_cores in 0..=8 {
            let load = f64::from(loaded_cores) / 8.0;
            let mut p = path(false, 8, load, 5);
            drops.push(mean_drop(&mut p, 3.0, 1050, 200));
        }
        // Low load: fine. High load: visible drops, monotone-ish growth.
        assert!(drops[0] < 0.03, "idle drop = {}", drops[0]);
        assert!(
            drops[8] > drops[0] + 0.05,
            "fully loaded {} vs idle {}",
            drops[8],
            drops[0]
        );
        assert!(drops[8] > drops[4]);
    }

    #[test]
    fn unpopular_browsers_render_worse() {
        let mut worst = RenderPath::new(
            Os::Windows,
            Browser::Yandex,
            false,
            4,
            0.3,
            RngStream::new(6, "render-test"),
        );
        let mut best = RenderPath::new(
            Os::Windows,
            Browser::Chrome,
            false,
            4,
            0.3,
            RngStream::new(6, "render-test"),
        );
        let dw = mean_drop(&mut worst, 3.0, 2350, 300);
        let db = mean_drop(&mut best, 3.0, 2350, 300);
        assert!(dw > db, "yandex {dw} vs chrome {db}");
    }

    #[test]
    fn efficiency_table_orderings() {
        // Figs. 21/22 orderings.
        let e = |os, b| browser_efficiency(os, b);
        assert!(e(Os::MacOs, Browser::Safari) < e(Os::Windows, Browser::Firefox));
        assert!(e(Os::Windows, Browser::Chrome) < e(Os::Windows, Browser::Firefox));
        assert!(e(Os::Windows, Browser::Firefox) < e(Os::Windows, Browser::Opera));
        assert!(e(Os::Windows, Browser::Opera) < e(Os::Windows, Browser::Safari));
        assert!(e(Os::Windows, Browser::Vivaldi) > e(Os::Windows, Browser::Firefox));
    }

    #[test]
    fn frames_scale_with_chunk_length() {
        let mut p = path(true, 4, 0.0, 7);
        assert_eq!(p.render_chunk(6.0, 1050, 2.0, true, 0.0).frames, 180);
        assert_eq!(p.render_chunk(2.0, 1050, 2.0, true, 0.0).frames, 60);
        assert_eq!(p.render_chunk(0.01, 1050, 2.0, true, 0.0).frames, 1);
    }

    #[test]
    fn cumulative_counters_sum_outcomes() {
        let mut p = path(false, 2, 0.8, 9);
        let (mut frames, mut dropped) = (0u64, 0u64);
        for _ in 0..50 {
            let o = p.render_chunk(6.0, 3000, 0.4, true, 0.0);
            frames += u64::from(o.frames);
            dropped += u64::from(o.dropped);
        }
        assert_eq!(p.frames_total(), frames);
        assert_eq!(p.dropped_total(), dropped);
        assert!(p.dropped_total() > 0);
    }

    #[test]
    fn outcome_consistency() {
        let mut p = path(false, 2, 0.8, 8);
        for _ in 0..100 {
            let o = p.render_chunk(6.0, 3000, 0.4, true, 0.0);
            assert!(o.dropped <= o.frames);
            assert!((0.0..=CONTENT_FPS).contains(&o.avg_fps));
            let expect_fps = CONTENT_FPS * (1.0 - o.drop_ratio());
            assert!((o.avg_fps - expect_fps).abs() < 1e-9);
        }
    }
}
