//! # streamlab-client
//!
//! The client-side substrate: everything between the NIC and the screen.
//!
//! The paper (§2, §4.3, §4.4) models the client as two independent
//! execution paths sharing host resources:
//!
//! * the **download path** "moves" chunks from the NIC to the player
//!   through OS → browser → Flash runtime → player ([`stack`]), adding
//!   download-stack latency `D_DS` to the first-byte delay (Eq. 1) — with
//!   per-platform persistent components (Table 5), a first-chunk
//!   event-listener setup cost (Fig. 18), and rare transient whole-chunk
//!   buffering that inflates instantaneous throughput (Fig. 17);
//! * the **rendering path** demuxes, decodes and renders frames
//!   ([`render`]), dropping frames when the CPU budget or the chunk arrival
//!   rate (the 1.5 s/s rule of Fig. 19) falls short.
//!
//! On top of those sit the player's [`abr`] algorithms (rate-based,
//! buffer-based, hybrid, and the outlier-robust variant the paper's §4.3
//! take-away recommends) and the [`player`] playback buffer that converts
//! delivery timing into startup delay and rebuffering events — the QoE
//! metrics every figure keys on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abr;
pub mod player;
pub mod render;
pub mod retry;
pub mod stack;

pub use abr::{Abr, AbrAlgorithm, AbrContext};
pub use player::{PlaybackBuffer, PlayerConfig};
pub use render::{RenderOutcome, RenderPath};
pub use retry::{RetryDecision, RetryState};
pub use stack::{DownloadStack, StackConfig, StackDelivery};
