//! Client-side request-retry state: timeout detection, capped exponential
//! backoff with seeded jitter, same-PoP failover, and the per-chunk abort
//! budget.
//!
//! The orchestrator drives one [`RetryState`] per session. Each failed
//! chunk request (injected outage or blackout) is recorded here; the state
//! answers with what the player does next — wait and retry, fail over to
//! another server, or give up. Jitter draws come from a dedicated RNG fork
//! so sessions that never see a failure consume no randomness from it.

use streamlab_faults::{retry_delay, ResilienceConfig};
use streamlab_sim::{RngStream, SimDuration};

/// What the client does after a failed chunk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Wait `delay` (timeout + jittered backoff), then retry the same
    /// server.
    Retry {
        /// Full wait before the next attempt.
        delay: SimDuration,
    },
    /// Wait `delay`, then retry on the next server of the same PoP.
    Failover {
        /// Full wait before the next attempt.
        delay: SimDuration,
    },
    /// The chunk exhausted `max_attempts_per_chunk`; the session aborts.
    Abort,
}

/// Per-session retry state machine.
#[derive(Debug)]
pub struct RetryState {
    cfg: ResilienceConfig,
    rng: RngStream,
    /// Consecutive failures on the chunk currently being fetched.
    consecutive: u32,
}

impl RetryState {
    /// A fresh state under `cfg`, drawing jitter from `rng`.
    pub fn new(cfg: ResilienceConfig, rng: RngStream) -> Self {
        RetryState {
            cfg,
            rng,
            consecutive: 0,
        }
    }

    /// The resilience policy in force.
    pub fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    /// Consecutive failures recorded for the current chunk.
    pub fn attempts(&self) -> u32 {
        self.consecutive
    }

    /// Record one failed request and decide the next move. Draws one
    /// jitter value from the retry stream unless the chunk aborts.
    pub fn record_failure(&mut self) -> RetryDecision {
        self.consecutive += 1;
        let attempt = self.consecutive;
        if attempt >= self.cfg.max_attempts_per_chunk {
            return RetryDecision::Abort;
        }
        let delay = retry_delay(&self.cfg, attempt, self.rng.uniform());
        if self.cfg.failover_after > 0 && attempt.is_multiple_of(self.cfg.failover_after) {
            RetryDecision::Failover { delay }
        } else {
            RetryDecision::Retry { delay }
        }
    }

    /// Record a successful request: the consecutive-failure run ends.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
    }

    /// True when the chunk's retries have drained the playback buffer
    /// below the emergency threshold — the ABR should drop to the lowest
    /// rung for this chunk. `attempts_this_chunk` is the failure count
    /// the current chunk burned before finally being served.
    pub fn emergency_active(&self, attempts_this_chunk: u32, buffer_s: f64) -> bool {
        attempts_this_chunk > 0 && buffer_s < self.cfg.emergency_buffer_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(cfg: ResilienceConfig) -> RetryState {
        RetryState::new(cfg, RngStream::new(11, "retry-test"))
    }

    #[test]
    fn failover_fires_every_n_failures() {
        let mut s = state(ResilienceConfig {
            failover_after: 2,
            max_attempts_per_chunk: 100,
            ..ResilienceConfig::default()
        });
        let kinds: Vec<bool> = (0..6)
            .map(|_| matches!(s.record_failure(), RetryDecision::Failover { .. }))
            .collect();
        assert_eq!(kinds, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn success_resets_the_consecutive_run() {
        let mut s = state(ResilienceConfig {
            failover_after: 2,
            max_attempts_per_chunk: 100,
            ..ResilienceConfig::default()
        });
        assert!(matches!(s.record_failure(), RetryDecision::Retry { .. }));
        s.record_success();
        assert_eq!(s.attempts(), 0);
        // The run restarts: first failure after a success retries again.
        assert!(matches!(s.record_failure(), RetryDecision::Retry { .. }));
    }

    #[test]
    fn abort_after_max_attempts() {
        let mut s = state(ResilienceConfig {
            max_attempts_per_chunk: 3,
            failover_after: 0,
            ..ResilienceConfig::default()
        });
        assert!(matches!(s.record_failure(), RetryDecision::Retry { .. }));
        assert!(matches!(s.record_failure(), RetryDecision::Retry { .. }));
        assert_eq!(s.record_failure(), RetryDecision::Abort);
    }

    #[test]
    fn zero_failover_after_disables_failover() {
        let mut s = state(ResilienceConfig {
            failover_after: 0,
            max_attempts_per_chunk: 50,
            ..ResilienceConfig::default()
        });
        for _ in 0..10 {
            assert!(matches!(s.record_failure(), RetryDecision::Retry { .. }));
        }
    }

    #[test]
    fn delays_grow_with_the_run() {
        let mut s = state(ResilienceConfig {
            backoff_jitter: 0.0,
            failover_after: 0,
            max_attempts_per_chunk: 50,
            ..ResilienceConfig::default()
        });
        let d = |dec: RetryDecision| match dec {
            RetryDecision::Retry { delay } | RetryDecision::Failover { delay } => delay,
            RetryDecision::Abort => panic!("unexpected abort"),
        };
        let d1 = d(s.record_failure());
        let d2 = d(s.record_failure());
        let d3 = d(s.record_failure());
        assert!(d1 < d2 && d2 < d3);
    }

    #[test]
    fn emergency_needs_both_failures_and_low_buffer() {
        let s = state(ResilienceConfig {
            emergency_buffer_s: 8.0,
            ..ResilienceConfig::default()
        });
        assert!(s.emergency_active(1, 3.0));
        assert!(!s.emergency_active(0, 3.0), "no failures → no emergency");
        assert!(
            !s.emergency_active(2, 20.0),
            "healthy buffer → no emergency"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = state(ResilienceConfig {
                max_attempts_per_chunk: 50,
                ..ResilienceConfig::default()
            });
            (0..8).map(|_| s.record_failure()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
