//! The playback buffer and its QoE accounting.
//!
//! "As a chunk is downloaded, it is added to the playback buffer. If the
//! playback buffer does not contain enough data, the player pauses and
//! waits for sufficient data; in case of an already playing video, this
//! causes a rebuffering event." (§2.1, playout phase.)
//!
//! This module is a pure state machine over simulated time: the session
//! orchestrator feeds it chunk-delivery instants, it reports startup delay,
//! rebuffer events/durations (`bufcount` / `bufdur`) and buffer levels —
//! the masking buffer that makes *when* a loss happens matter more than
//! how many losses there are (Figs. 13/14).

use serde::{Deserialize, Serialize};
use streamlab_sim::{SimDuration, SimTime};

/// Player buffering policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerConfig {
    /// Playback starts once this much video is buffered, seconds.
    pub startup_threshold_s: f64,
    /// After a stall, playback resumes at this level, seconds.
    pub resume_threshold_s: f64,
    /// The player stops requesting ahead beyond this level, seconds.
    pub max_buffer_s: f64,
    /// QoE-driven abandonment: end the session once total rebuffering
    /// exceeds this many seconds. `None` (the default, and the paper's
    /// model) keeps watch time user-driven. Dobrian et al. and Krishnan &
    /// Sitaraman — the QoE literature the paper builds on — showed stalls
    /// causally reduce engagement; this switch lets the simulator study
    /// that coupling.
    pub abandon_after_stall_s: Option<f64>,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            startup_threshold_s: 6.0,
            resume_threshold_s: 6.0,
            max_buffer_s: 30.0,
            abandon_after_stall_s: None,
        }
    }
}

/// Playback state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum State {
    /// Waiting for the initial buffer.
    Startup,
    /// Playing.
    Playing,
    /// Stalled mid-session (a rebuffering event is in progress).
    Rebuffering,
}

/// The playback buffer of one session.
#[derive(Debug, Clone)]
pub struct PlaybackBuffer {
    cfg: PlayerConfig,
    state: State,
    /// Seconds of video buffered.
    level_s: f64,
    /// Simulation time of the last state update.
    clock: SimTime,
    session_start: SimTime,
    started_at: Option<SimTime>,
    stall_began: Option<SimTime>,
    rebuffer_count: u32,
    rebuffer_total: SimDuration,
    played_s: f64,
}

impl PlaybackBuffer {
    /// A fresh buffer for a session starting at `start`.
    pub fn new(cfg: PlayerConfig, start: SimTime) -> Self {
        PlaybackBuffer {
            cfg,
            state: State::Startup,
            level_s: 0.0,
            clock: start,
            session_start: start,
            started_at: None,
            stall_began: None,
            rebuffer_count: 0,
            rebuffer_total: SimDuration::ZERO,
            played_s: 0.0,
        }
    }

    /// Current buffer level, seconds of video.
    pub fn level_s(&self) -> f64 {
        self.level_s
    }

    /// True once playback has started.
    pub fn has_started(&self) -> bool {
        self.started_at.is_some()
    }

    /// True while a mid-session stall is in progress.
    pub fn is_stalled(&self) -> bool {
        self.state == State::Rebuffering
    }

    /// Startup delay (player-perceived time-to-play), if playback started.
    pub fn startup_delay(&self) -> Option<SimDuration> {
        self.started_at
            .map(|t| t.duration_since(self.session_start))
    }

    /// Number of mid-session rebuffering events so far.
    pub fn rebuffer_count(&self) -> u32 {
        self.rebuffer_count
    }

    /// Total stalled time so far.
    pub fn rebuffer_total(&self) -> SimDuration {
        self.rebuffer_total
    }

    /// Seconds of video played out so far.
    pub fn played_s(&self) -> f64 {
        self.played_s
    }

    /// True when the QoE-abandonment policy (if configured) says the
    /// viewer has given up.
    pub fn should_abandon(&self) -> bool {
        match self.cfg.abandon_after_stall_s {
            Some(limit) => self.rebuffer_total.as_secs_f64() > limit,
            None => false,
        }
    }

    /// Rebuffering rate: stalled time over (stalled + played) time — the
    /// metric of Figs. 11c/12.
    pub fn rebuffer_rate(&self) -> f64 {
        let stalled = self.rebuffer_total.as_secs_f64();
        let denom = stalled + self.played_s;
        if denom <= 0.0 {
            0.0
        } else {
            stalled / denom
        }
    }

    /// Advance the wall clock to `t`, consuming buffer while playing.
    /// Returns the stall time newly accrued in this interval.
    pub fn advance_to(&mut self, t: SimTime) -> SimDuration {
        if t <= self.clock {
            return SimDuration::ZERO;
        }
        let dt = t.duration_since(self.clock).as_secs_f64();
        self.clock = t;
        match self.state {
            State::Startup | State::Rebuffering => {
                // Nothing plays; stall clocks accrue for rebuffering only
                // (startup wait is accounted as startup delay instead).
                if self.state == State::Rebuffering {
                    let stalled = SimDuration::from_secs_f64(dt);
                    self.rebuffer_total += stalled;
                    return stalled;
                }
                SimDuration::ZERO
            }
            State::Playing => {
                if self.level_s >= dt {
                    self.level_s -= dt;
                    self.played_s += dt;
                    SimDuration::ZERO
                } else {
                    // The buffer ran dry mid-interval: play what was there,
                    // then stall for the remainder.
                    let played = self.level_s;
                    let stalled_s = dt - played;
                    self.played_s += played;
                    self.level_s = 0.0;
                    self.state = State::Rebuffering;
                    self.rebuffer_count += 1;
                    self.stall_began = Some(t - SimDuration::from_secs_f64(stalled_s));
                    let stalled = SimDuration::from_secs_f64(stalled_s);
                    self.rebuffer_total += stalled;
                    stalled
                }
            }
        }
    }

    /// A chunk carrying `chunk_secs` of video finished downloading at `t`.
    /// Returns the stall time accrued since the last call (for per-chunk
    /// attribution of `bufdur`).
    pub fn add_chunk(&mut self, t: SimTime, chunk_secs: f64) -> SimDuration {
        let stalled = self.advance_to(t);
        self.level_s += chunk_secs;
        match self.state {
            State::Startup => {
                if self.level_s >= self.cfg.startup_threshold_s {
                    self.state = State::Playing;
                    self.started_at = Some(self.clock);
                }
            }
            State::Rebuffering => {
                if self.level_s >= self.cfg.resume_threshold_s {
                    self.state = State::Playing;
                    self.stall_began = None;
                }
            }
            State::Playing => {}
        }
        stalled
    }

    /// Should the player request the next chunk right now, or is the
    /// buffer full? Returns the time the player must wait before the next
    /// request (zero when it can request immediately).
    pub fn request_backoff(&self) -> SimDuration {
        if self.level_s <= self.cfg.max_buffer_s {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.level_s - self.cfg.max_buffer_s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn startup_waits_for_threshold() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        assert!(!b.has_started());
        b.add_chunk(t(1.0), 3.0);
        assert!(!b.has_started(), "3 s < 6 s startup threshold");
        b.add_chunk(t(2.0), 3.0);
        assert!(b.has_started());
        assert_eq!(b.startup_delay(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn steady_delivery_never_stalls() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        b.add_chunk(t(0.5), 6.0);
        b.add_chunk(t(1.0), 6.0); // started with 12 s buffered
        for i in 2..20 {
            let stalled = b.add_chunk(t(i as f64 * 6.0), 6.0);
            assert!(stalled.is_zero(), "stall at chunk {i}");
        }
        assert_eq!(b.rebuffer_count(), 0);
        assert!(b.rebuffer_rate() < 1e-9);
    }

    #[test]
    fn late_chunk_causes_one_stall() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        b.add_chunk(t(0.5), 6.0); // playback starts at 0.5 with 6 s
                                  // Next chunk arrives at 12.0: buffer dries up at 6.5.
        let stalled = b.add_chunk(t(12.0), 6.0);
        assert_eq!(b.rebuffer_count(), 1);
        assert!((stalled.as_secs_f64() - 5.5).abs() < 1e-9, "{stalled}");
        assert!((b.rebuffer_total().as_secs_f64() - 5.5).abs() < 1e-9);
        // 6 s played + 5.5 s stalled.
        assert!((b.rebuffer_rate() - 5.5 / 11.5).abs() < 1e-9);
    }

    #[test]
    fn stall_resumes_at_resume_threshold() {
        let cfg = PlayerConfig {
            startup_threshold_s: 6.0,
            resume_threshold_s: 12.0,
            max_buffer_s: 30.0,
            abandon_after_stall_s: None,
        };
        let mut b = PlaybackBuffer::new(cfg, t(0.0));
        b.add_chunk(t(0.0), 6.0); // starts immediately
        b.advance_to(t(7.0)); // dry at 6.0, stalled 1 s
        assert!(b.is_stalled());
        b.add_chunk(t(8.0), 6.0); // 6 s < 12 s resume: still stalled
        assert!(b.is_stalled());
        let stalled = b.add_chunk(t(9.0), 6.0); // 12 s: resumes
        assert!(!b.is_stalled());
        assert!(stalled > SimDuration::ZERO);
        assert_eq!(b.rebuffer_count(), 1, "one continuous stall, one event");
    }

    #[test]
    fn early_buffer_masks_late_gap() {
        // The Fig. 13 mechanism: a big buffer built early absorbs a long
        // delivery gap later with no rebuffering.
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        for i in 0..5 {
            b.add_chunk(t(0.2 * (i + 1) as f64), 6.0); // 30 s buffered by t=1
        }
        // 20-second delivery gap.
        let stalled = b.add_chunk(t(21.0), 6.0);
        assert!(stalled.is_zero());
        assert_eq!(b.rebuffer_count(), 0);
        // The same gap with no pre-buffer stalls (contrast case).
        let mut c = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        c.add_chunk(t(0.2), 6.0);
        let stalled = c.add_chunk(t(21.0), 6.0);
        assert!(stalled > SimDuration::from_secs(10));
    }

    #[test]
    fn request_backoff_when_buffer_full() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        for i in 0..6 {
            b.add_chunk(t(0.1 * (i + 1) as f64), 6.0);
        }
        assert!(b.level_s() > 30.0);
        assert!(b.request_backoff() > SimDuration::ZERO);
        // After playing for a while the backoff clears.
        b.advance_to(t(10.0));
        assert_eq!(b.request_backoff(), SimDuration::ZERO);
    }

    #[test]
    fn played_seconds_accumulate() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        b.add_chunk(t(0.0), 6.0);
        b.add_chunk(t(3.0), 6.0);
        b.advance_to(t(9.0));
        assert!((b.played_s() - 9.0).abs() < 1e-9);
        assert!((b.level_s() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn advance_backwards_is_a_noop() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        b.add_chunk(t(5.0), 6.0);
        let lvl = b.level_s();
        assert_eq!(b.advance_to(t(2.0)), SimDuration::ZERO);
        assert_eq!(b.level_s(), lvl);
    }

    #[test]
    fn abandonment_triggers_after_stall_budget() {
        let cfg = PlayerConfig {
            abandon_after_stall_s: Some(5.0),
            ..PlayerConfig::default()
        };
        let mut b = PlaybackBuffer::new(cfg, t(0.0));
        b.add_chunk(t(0.0), 6.0); // playing immediately
        assert!(!b.should_abandon());
        b.advance_to(t(10.0)); // dry at 6.0 → 4 s stalled
        assert!(!b.should_abandon());
        b.advance_to(t(12.0)); // 6 s stalled > 5 s budget
        assert!(b.should_abandon());
        // Without the policy, never.
        let mut c = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        c.add_chunk(t(0.0), 6.0);
        c.advance_to(t(1000.0));
        assert!(!c.should_abandon());
    }

    #[test]
    fn startup_wait_is_not_rebuffering() {
        let mut b = PlaybackBuffer::new(PlayerConfig::default(), t(0.0));
        b.advance_to(t(30.0)); // half a minute of nothing
        assert_eq!(b.rebuffer_count(), 0);
        assert!(b.rebuffer_total().is_zero());
        b.add_chunk(t(31.0), 6.0);
        assert_eq!(b.startup_delay(), Some(SimDuration::from_secs(31)));
    }
}
