//! Adaptive-bitrate (ABR) algorithms.
//!
//! The paper's deployed ABR is "tuned and tested in the wild to balance
//! between low startup delay, low re-buffering rate, high quality and
//! smoothness" (§2). We implement the standard families the related work
//! covers — rate-based (FESTIVE-style), buffer-based (BBA), and a hybrid —
//! plus the *outlier-robust* rate estimator the paper's §4.3 take-away
//! recommends (exclude download-stack-buffered chunks from throughput
//! estimation, or they poison the moving average).

use serde::{Deserialize, Serialize};
use streamlab_workload::BitrateLadder;

/// Everything an ABR may look at when choosing the next chunk's bitrate.
#[derive(Debug, Clone)]
pub struct AbrContext<'a> {
    /// The available ladder.
    pub ladder: &'a BitrateLadder,
    /// Observed per-chunk delivery throughputs so far, kbps, oldest first
    /// (client-side estimates: `chunk bits / (D_FB + D_LB)`).
    pub throughput_kbps: &'a [f64],
    /// Current playback-buffer level, seconds.
    pub buffer_s: f64,
    /// Index of the chunk about to be requested (0 = first).
    pub next_chunk: u32,
}

/// Which ABR algorithm a player runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AbrAlgorithm {
    /// Mean of the last `window` throughput samples, scaled by a safety
    /// factor, quantized down onto the ladder.
    RateBased {
        /// Samples in the moving window.
        window: usize,
    },
    /// Buffer-based (BBA-style): map the buffer level linearly between a
    /// reservoir and a cushion onto the ladder.
    BufferBased {
        /// Below this buffer level (s), pick the minimum rate.
        reservoir_s: f64,
        /// Above this level (s), pick the maximum rate.
        cushion_s: f64,
    },
    /// Rate-based choice, capped by what the buffer can absorb: the safety
    /// factor shrinks when the buffer is low.
    Hybrid {
        /// Samples in the moving window.
        window: usize,
    },
    /// Rate-based, but throughput samples more than 2σ from the window
    /// mean are excluded first (the §4.3.1 take-away: transient
    /// download-stack buffering produces impossible instantaneous
    /// throughputs that overshoot naive estimators).
    RobustRate {
        /// Samples in the moving window.
        window: usize,
    },
}

impl Default for AbrAlgorithm {
    fn default() -> Self {
        AbrAlgorithm::RateBased { window: 5 }
    }
}

/// A configured ABR instance.
#[derive(Debug, Clone)]
pub struct Abr {
    algorithm: AbrAlgorithm,
    /// Multiplied into the rate estimate before quantization.
    safety: f64,
    /// Bitrate for the very first chunk, when nothing is known.
    initial_kbps: u32,
}

impl Abr {
    /// Standard configuration: 0.8 safety, upper-mid-ladder start (the
    /// paper's service starts at a quality high enough that the first
    /// chunk carries TCP all the way through slow start).
    pub fn new(algorithm: AbrAlgorithm, ladder: &BitrateLadder) -> Self {
        Abr {
            algorithm,
            safety: 0.8,
            initial_kbps: ladder.floor_rung(f64::from(ladder.max_kbps()) * 0.8),
        }
    }

    /// Conservative variant: start at the lowest rung (the paper suggests
    /// this for prefixes with known persistent problems, §4.2.1).
    pub fn conservative(algorithm: AbrAlgorithm, ladder: &BitrateLadder) -> Self {
        Abr {
            algorithm,
            safety: 0.7,
            initial_kbps: ladder.min_kbps(),
        }
    }

    /// The algorithm in use.
    pub fn algorithm(&self) -> AbrAlgorithm {
        self.algorithm
    }

    /// Choose the bitrate for the next chunk.
    pub fn choose(&self, ctx: &AbrContext<'_>) -> u32 {
        if ctx.next_chunk == 0 || ctx.throughput_kbps.is_empty() {
            return self.initial_kbps;
        }
        match self.algorithm {
            AbrAlgorithm::RateBased { window } => {
                let est = mean_tail(ctx.throughput_kbps, window);
                ctx.ladder.floor_rung(est * self.safety)
            }
            AbrAlgorithm::RobustRate { window } => {
                let est = robust_mean_tail(ctx.throughput_kbps, window);
                ctx.ladder.floor_rung(est * self.safety)
            }
            AbrAlgorithm::BufferBased {
                reservoir_s,
                cushion_s,
            } => {
                let rungs = &ctx.ladder.rungs_kbps;
                if ctx.buffer_s <= reservoir_s {
                    return ctx.ladder.min_kbps();
                }
                if ctx.buffer_s >= cushion_s {
                    return ctx.ladder.max_kbps();
                }
                let f = (ctx.buffer_s - reservoir_s) / (cushion_s - reservoir_s);
                let idx = (f * (rungs.len() - 1) as f64).floor() as usize;
                rungs[idx.min(rungs.len() - 1)]
            }
            AbrAlgorithm::Hybrid { window } => {
                let est = mean_tail(ctx.throughput_kbps, window);
                // Low buffer → be shy; full buffer → trust the estimate.
                let buffer_factor = (ctx.buffer_s / 20.0).clamp(0.5, 1.0);
                ctx.ladder.floor_rung(est * self.safety * buffer_factor)
            }
        }
    }
}

/// Mean of the last `window` samples.
fn mean_tail(samples: &[f64], window: usize) -> f64 {
    let tail = &samples[samples.len().saturating_sub(window.max(1))..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Mean of the last `window` samples after discarding outliers relative
/// to the window *median*.
///
/// The paper's Eq. 4 screens with mean ± 2σ, which works across a whole
/// session's chunks; in a short ABR window a single extreme sample drags
/// the mean and σ so far that it can never exceed 2σ of itself (the max
/// z-score in a window of n is √(n−1)). A median-anchored filter is the
/// small-window-safe equivalent: samples more than 2× away from the
/// median (either direction) are dropped.
fn robust_mean_tail(samples: &[f64], window: usize) -> f64 {
    let tail = &samples[samples.len().saturating_sub(window.max(1))..];
    let n = tail.len() as f64;
    let mean = tail.iter().sum::<f64>() / n;
    if tail.len() < 3 {
        return mean;
    }
    let mut sorted = tail.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let kept: Vec<f64> = tail
        .iter()
        .copied()
        .filter(|&x| x <= 3.0 * median && x >= median / 3.0)
        .collect();
    if kept.is_empty() {
        mean
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> BitrateLadder {
        BitrateLadder::default()
    }

    fn ctx<'a>(
        ladder: &'a BitrateLadder,
        tputs: &'a [f64],
        buffer_s: f64,
        next_chunk: u32,
    ) -> AbrContext<'a> {
        AbrContext {
            ladder,
            throughput_kbps: tputs,
            buffer_s,
            next_chunk,
        }
    }

    #[test]
    fn first_chunk_uses_initial_rate() {
        let l = ladder();
        let abr = Abr::new(AbrAlgorithm::default(), &l);
        let c = ctx(&l, &[], 0.0, 0);
        assert_eq!(abr.choose(&c), 2350); // 80% of 3000 → floor 2350
        let cons = Abr::conservative(AbrAlgorithm::default(), &l);
        assert_eq!(cons.choose(&c), 235);
    }

    #[test]
    fn rate_based_tracks_throughput() {
        let l = ladder();
        let abr = Abr::new(AbrAlgorithm::RateBased { window: 3 }, &l);
        let fast = [4000.0, 4200.0, 3900.0];
        assert_eq!(abr.choose(&ctx(&l, &fast, 10.0, 3)), 3000);
        let slow = [700.0, 650.0, 720.0];
        // mean ≈ 690 * 0.8 = 552 → rung 375.
        assert_eq!(abr.choose(&ctx(&l, &slow, 10.0, 3)), 375);
    }

    #[test]
    fn rate_based_poisoned_by_stack_outlier() {
        // One impossible instantaneous-throughput sample (Fig. 17) drags a
        // naive mean up two rungs; the robust variant ignores it.
        let l = ladder();
        let naive = Abr::new(AbrAlgorithm::RateBased { window: 5 }, &l);
        let robust = Abr::new(AbrAlgorithm::RobustRate { window: 5 }, &l);
        let samples = [900.0, 950.0, 80_000.0, 920.0, 910.0];
        let naive_pick = naive.choose(&ctx(&l, &samples, 10.0, 5));
        let robust_pick = robust.choose(&ctx(&l, &samples, 10.0, 5));
        assert!(naive_pick >= 3000, "naive overshoots: {naive_pick}");
        // Robust estimate ≈ 920 kbps; with the 0.8 safety factor that
        // quantizes down to the 560 kbps rung.
        assert_eq!(robust_pick, 560, "robust should track the ~920 kbps");
    }

    #[test]
    fn buffer_based_maps_buffer_to_ladder() {
        let l = ladder();
        let abr = Abr::new(
            AbrAlgorithm::BufferBased {
                reservoir_s: 5.0,
                cushion_s: 20.0,
            },
            &l,
        );
        assert_eq!(abr.choose(&ctx(&l, &[1000.0], 2.0, 1)), 235);
        assert_eq!(abr.choose(&ctx(&l, &[1000.0], 25.0, 1)), 3000);
        let mid = abr.choose(&ctx(&l, &[1000.0], 12.0, 1));
        assert!(mid > 235 && mid < 3000, "mid-buffer pick = {mid}");
    }

    #[test]
    fn buffer_based_is_monotone_in_buffer() {
        let l = ladder();
        let abr = Abr::new(
            AbrAlgorithm::BufferBased {
                reservoir_s: 5.0,
                cushion_s: 20.0,
            },
            &l,
        );
        let mut last = 0;
        for b in [0.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0] {
            let pick = abr.choose(&ctx(&l, &[1000.0], b, 1));
            assert!(pick >= last, "non-monotone at buffer {b}");
            last = pick;
        }
    }

    #[test]
    fn hybrid_is_shy_when_buffer_is_low() {
        let l = ladder();
        let abr = Abr::new(AbrAlgorithm::Hybrid { window: 3 }, &l);
        let tputs = [2500.0, 2500.0, 2500.0];
        let low = abr.choose(&ctx(&l, &tputs, 2.0, 3));
        let high = abr.choose(&ctx(&l, &tputs, 30.0, 3));
        assert!(low < high, "low-buffer {low} vs high-buffer {high}");
    }

    #[test]
    fn robust_equals_naive_without_outliers() {
        let l = ladder();
        let naive = Abr::new(AbrAlgorithm::RateBased { window: 5 }, &l);
        let robust = Abr::new(AbrAlgorithm::RobustRate { window: 5 }, &l);
        let clean = [1800.0, 1900.0, 1850.0, 1820.0, 1880.0];
        assert_eq!(
            naive.choose(&ctx(&l, &clean, 10.0, 5)),
            robust.choose(&ctx(&l, &clean, 10.0, 5))
        );
    }

    #[test]
    fn choices_stay_on_ladder() {
        let l = ladder();
        for algo in [
            AbrAlgorithm::RateBased { window: 4 },
            AbrAlgorithm::RobustRate { window: 4 },
            AbrAlgorithm::BufferBased {
                reservoir_s: 5.0,
                cushion_s: 20.0,
            },
            AbrAlgorithm::Hybrid { window: 4 },
        ] {
            let abr = Abr::new(algo, &l);
            for t in [10.0, 100.0, 1000.0, 1.0e7] {
                for b in [0.0, 10.0, 40.0] {
                    let pick = abr.choose(&ctx(&l, &[t, t, t], b, 7));
                    assert!(l.rung_index(pick).is_some(), "{pick} not on ladder");
                }
            }
        }
    }
}
