//! Canonical storage-fault telemetry.
//!
//! The supervisor's storage failpoint layer counts every fault it
//! injects; the `streamlab serve` daemon (and any other exporter)
//! publishes those counts over OpenMetrics. This module owns the
//! *names* and HELP text so every exposition path agrees on them —
//! the same single-source-of-truth treatment [`crate::openmetrics`]
//! gives the simulation counters.

/// A snapshot of injected storage faults, by kind. All counts are
/// monotonic over one process lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageFaultSnapshot {
    /// Operations failed with an injected EIO.
    pub eio: u64,
    /// Operations failed with an injected ENOSPC.
    pub enospc: u64,
    /// Writes truncated (torn) while reporting success.
    pub torn_writes: u64,
    /// Fsyncs silently dropped while reporting success.
    pub lost_fsyncs: u64,
    /// Operations delayed by an injected slow-IO fault.
    pub slow_ios: u64,
    /// Crash failpoints reached (process aborted, or the storage went
    /// dead in soft-crash mode).
    pub crashes: u64,
}

impl StorageFaultSnapshot {
    /// Total faults injected across every kind.
    pub fn total(&self) -> u64 {
        self.eio + self.enospc + self.torn_writes + self.lost_fsyncs + self.slow_ios + self.crashes
    }

    /// OpenMetrics counter samples, ready for
    /// [`crate::openmetrics::render_exposition`]'s counter slice.
    pub fn samples(&self) -> [(&'static str, &'static str, u64); 6] {
        [
            (
                "storage_faults_eio",
                "storage operations failed with an injected EIO",
                self.eio,
            ),
            (
                "storage_faults_enospc",
                "storage operations failed with an injected ENOSPC",
                self.enospc,
            ),
            (
                "storage_faults_torn_write",
                "writes truncated (torn) by fault injection while reporting success",
                self.torn_writes,
            ),
            (
                "storage_faults_lost_fsync",
                "fsyncs silently dropped by fault injection",
                self.lost_fsyncs,
            ),
            (
                "storage_faults_slow_io",
                "storage operations delayed by fault injection",
                self.slow_ios,
            ),
            (
                "storage_faults_crash",
                "crash failpoints reached",
                self.crashes,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmetrics::render_exposition;

    #[test]
    fn totals_and_samples_agree() {
        let snap = StorageFaultSnapshot {
            eio: 1,
            enospc: 2,
            torn_writes: 3,
            lost_fsyncs: 4,
            slow_ios: 5,
            crashes: 6,
        };
        assert_eq!(snap.total(), 21);
        let samples = snap.samples();
        assert_eq!(samples.iter().map(|&(_, _, v)| v).sum::<u64>(), 21);
        // Names are unique and render cleanly.
        let text = render_exposition(&samples, &[]);
        assert!(text.contains("streamlab_storage_faults_enospc_total 2"));
        assert!(text.contains("streamlab_storage_faults_crash_total 6"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn default_snapshot_is_empty() {
        assert_eq!(StorageFaultSnapshot::default().total(), 0);
    }
}
