//! Per-shard liveness: lock-free progress cells for the run watchdog.
//!
//! Each shard job publishes its progress — events popped and current
//! sim-time — into a [`ProgressCell`] as it runs. A watchdog thread
//! polls the cells against wall-clock time; a shard whose *sim-time*
//! stops advancing for too long is asked to stop via the cell's cancel
//! flag, which the shard's event loop checks between events.
//!
//! Everything is `Relaxed` atomics on purpose: the watchdog only needs an
//! eventually-visible monotone progress signal, not synchronization, and
//! the hot path (one store per event pop) must stay free. Determinism is
//! unaffected — the cells never feed back into simulation state, only
//! into the *decision to abandon* a shard, which surfaces as a structured
//! stall error.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Lifecycle states a shard job moves through, as stored in
/// [`ProgressCell`]. The watchdog only applies the deadline to `Running`
/// cells: a `Pending` shard is waiting for a worker (queue delay is not a
/// stall) and a `Done` shard needs no further watching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Queued; no worker has picked the shard up yet.
    Pending,
    /// A worker is inside the shard's event loop.
    Running,
    /// The shard finished — completed, panicked, or cancelled.
    Done,
}

const STATE_PENDING: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;

/// A single shard's shared progress slot.
///
/// Writers: the shard's worker thread ([`start`](Self::start),
/// [`beat`](Self::beat), [`finish`](Self::finish)). Readers: the
/// watchdog ([`snapshot`](Self::snapshot), [`cancel`](Self::cancel)) and
/// the shard loop itself ([`cancelled`](Self::cancelled)).
#[derive(Debug, Default)]
pub struct ProgressCell {
    events: AtomicU64,
    sim_ns: AtomicU64,
    state: AtomicU8,
    cancel: AtomicBool,
}

/// One coherent-enough reading of a [`ProgressCell`]. Fields are read
/// individually with `Relaxed` loads; the watchdog tolerates torn
/// combinations because it only compares successive `sim_ns` readings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Events popped by the shard so far.
    pub events: u64,
    /// The shard's current simulation time in nanoseconds.
    pub sim_ns: u64,
    /// Where the shard is in its lifecycle.
    pub state: ShardState,
}

impl ProgressCell {
    /// Fresh cell in the `Pending` state.
    pub fn new() -> ProgressCell {
        ProgressCell::default()
    }

    /// Worker picked the shard up: enter `Running`.
    pub fn start(&self) {
        self.state.store(STATE_RUNNING, Ordering::Relaxed);
    }

    /// Publish progress: total events popped and current sim-time (ns).
    /// Called once per event pop — two relaxed stores, nothing else.
    #[inline]
    pub fn beat(&self, events: u64, sim_ns: u64) {
        self.events.store(events, Ordering::Relaxed);
        self.sim_ns.store(sim_ns, Ordering::Relaxed);
    }

    /// Shard finished (in any way): enter `Done`. Idempotent.
    pub fn finish(&self) {
        self.state.store(STATE_DONE, Ordering::Relaxed);
    }

    /// Ask the shard to stop at its next event-pop boundary.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called. Checked by the
    /// shard loop between events.
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Read the cell.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let state = match self.state.load(Ordering::Relaxed) {
            STATE_PENDING => ShardState::Pending,
            STATE_RUNNING => ShardState::Running,
            _ => ShardState::Done,
        };
        ProgressSnapshot {
            events: self.events.load(Ordering::Relaxed),
            sim_ns: self.sim_ns.load(Ordering::Relaxed),
            state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_beats_are_visible() {
        let cell = ProgressCell::new();
        assert_eq!(cell.snapshot().state, ShardState::Pending);
        cell.start();
        cell.beat(10, 1_000);
        let snap = cell.snapshot();
        assert_eq!(snap.state, ShardState::Running);
        assert_eq!(snap.events, 10);
        assert_eq!(snap.sim_ns, 1_000);
        cell.finish();
        assert_eq!(cell.snapshot().state, ShardState::Done);
    }

    #[test]
    fn cancel_is_sticky_and_observable() {
        let cell = ProgressCell::new();
        assert!(!cell.cancelled());
        cell.cancel();
        assert!(cell.cancelled());
        cell.cancel();
        assert!(cell.cancelled());
    }

    #[test]
    fn cross_thread_visibility() {
        let cell = std::sync::Arc::new(ProgressCell::new());
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                cell.start();
                for i in 1..=100u64 {
                    cell.beat(i, i * 7);
                }
                cell.finish();
            })
        };
        writer.join().unwrap();
        let snap = cell.snapshot();
        assert_eq!(snap.state, ShardState::Done);
        assert_eq!(snap.events, 100);
        assert_eq!(snap.sim_ns, 700);
    }
}
