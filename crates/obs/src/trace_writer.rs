//! Chrome Trace Event Format export — one file, two clocks.
//!
//! `--trace-out` writes a JSON object Perfetto / `chrome://tracing` open
//! directly. Process 1 carries the deterministic **sim-time** lanes (one
//! thread lane per session, `B`/`E` duration events built from
//! [`SimSpan`]s); process 2 carries the **wall-clock** engine lanes (one
//! lane per worker thread, `X` complete events for shard jobs plus
//! instant and counter events from a [`WallTrace`]). Keeping the clocks
//! in separate processes means neither can contaminate the other: the
//! sim side is byte-identical at any `--threads`, the wall side is
//! honest about being a measurement.
//!
//! Timestamps are microseconds (the format's unit): sim-time nanoseconds
//! and engine milliseconds both convert losslessly enough at trace
//! granularity, and integer µs keeps the output byte-stable.

use crate::span::{SimSpan, SpanKind};
use serde::{Map, Serialize, Value};

/// Trace process id for the deterministic sim-time lanes.
pub const SIM_PID: u64 = 1;
/// Trace process id for the wall-clock engine lanes.
pub const WALL_PID: u64 = 2;

/// One wall-clock interval (a shard job, the setup phase, the merge),
/// rendered as a Chrome `X` complete event.
#[derive(Debug, Clone)]
pub struct WallSpan {
    /// Lane (trace thread id) the interval belongs to — worker index for
    /// shard jobs, a reserved lane for run phases.
    pub lane: u64,
    /// Event name shown on the slice.
    pub name: String,
    /// Start, microseconds since the engine epoch.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Extra key/value payload (shard index, sessions, events, ...).
    pub args: Vec<(String, u64)>,
}

/// One wall-clock instant (a steal, a watchdog cancellation), rendered
/// as a Chrome `i` instant event.
#[derive(Debug, Clone)]
pub struct WallInstant {
    /// Lane (trace thread id) the instant belongs to.
    pub lane: u64,
    /// Event name.
    pub name: String,
    /// When, microseconds since the engine epoch.
    pub at_us: u64,
    /// Extra key/value payload.
    pub args: Vec<(String, u64)>,
}

/// One sample of a wall-clock counter series (watchdog heartbeats),
/// rendered as a Chrome `C` counter event.
#[derive(Debug, Clone)]
pub struct WallCounter {
    /// Counter name (one chart per name).
    pub name: String,
    /// Sample time, microseconds since the engine epoch.
    pub at_us: u64,
    /// Series name → value at this sample.
    pub series: Vec<(String, u64)>,
}

/// Everything the engine measured on the host clock for one run.
#[derive(Debug, Clone, Default)]
pub struct WallTrace {
    /// Lane id → display name (`worker 0`, `run`, ...).
    pub lanes: Vec<(u64, String)>,
    /// Intervals (shard jobs, run phases).
    pub spans: Vec<WallSpan>,
    /// Point events (steals, cancellations).
    pub instants: Vec<WallInstant>,
    /// Counter samples (heartbeats).
    pub counters: Vec<WallCounter>,
}

fn base_event(name: &str, cat: &str, ph: &str, ts: u64, pid: u64, tid: u64) -> Map {
    let mut e = Map::new();
    e.insert("name".into(), name.to_value());
    e.insert("cat".into(), cat.to_value());
    e.insert("ph".into(), ph.to_value());
    e.insert("ts".into(), ts.to_value());
    e.insert("pid".into(), pid.to_value());
    e.insert("tid".into(), tid.to_value());
    e
}

fn args_object(args: &[(String, u64)]) -> Value {
    let mut m = Map::new();
    for (k, v) in args {
        m.insert(k.clone(), v.to_value());
    }
    Value::Object(m)
}

fn metadata(kind: &str, pid: u64, tid: u64, name: &str, out: &mut Vec<String>) {
    let mut e = base_event(kind, "__metadata", "M", 0, pid, tid);
    let mut args = Map::new();
    args.insert("name".into(), name.to_value());
    e.insert("args".into(), Value::Object(args));
    out.push(Value::Object(e).to_json_string());
}

fn span_name(s: &SimSpan) -> String {
    match (s.kind, s.chunk) {
        (SpanKind::Session, _) => "session".to_string(),
        (SpanKind::Chunk, Some(c)) => format!("chunk {c}"),
        (SpanKind::Chunk, None) => "chunk".to_string(),
        (SpanKind::CacheLookup, _) => "cache_lookup".to_string(),
        (SpanKind::NetTransfer, _) => "net_transfer".to_string(),
        (SpanKind::Render, _) => "render".to_string(),
    }
}

/// Emit `B`/`E` pairs for one session's canonically ordered spans.
/// The canonical order is a pre-order walk, so a begin/end stack yields
/// matched pairs with non-decreasing timestamps — the two properties the
/// schema test pins down.
fn emit_session_spans(spans: &[SimSpan], out: &mut Vec<String>) {
    let mut stack: Vec<&SimSpan> = Vec::new();
    let close = |s: &SimSpan, out: &mut Vec<String>| {
        let e = base_event(
            &span_name(s),
            "sim",
            "E",
            s.end_ns / 1000,
            SIM_PID,
            s.session,
        );
        out.push(Value::Object(e).to_json_string());
    };
    for s in spans {
        while let Some(top) = stack.last() {
            if top.end_ns <= s.start_ns {
                close(top, out);
                stack.pop();
            } else {
                break;
            }
        }
        let mut e = base_event(
            &span_name(s),
            "sim",
            "B",
            s.start_ns / 1000,
            SIM_PID,
            s.session,
        );
        let mut args = vec![("id".to_string(), s.id)];
        if let Some(p) = s.parent {
            args.push(("parent".to_string(), p));
        }
        e.insert("args".into(), args_object(&args));
        out.push(Value::Object(e).to_json_string());
        stack.push(s);
    }
    while let Some(top) = stack.pop() {
        close(top, out);
    }
}

/// Render a complete Chrome trace from canonicalized sim spans and an
/// optional wall-clock trace. The output is a pure function of its
/// inputs; with `wall == None` (or an empty wall trace) it is as
/// deterministic as the spans themselves.
pub fn render_chrome_trace(sim: &[SimSpan], wall: Option<&WallTrace>) -> String {
    let mut out: Vec<String> = Vec::new();
    metadata(
        "process_name",
        SIM_PID,
        0,
        "sim-time (deterministic)",
        &mut out,
    );
    // One B/E stack per session lane: split on session boundaries (the
    // canonical order groups each session contiguously).
    let mut i = 0;
    while i < sim.len() {
        let session = sim[i].session;
        let mut j = i;
        while j < sim.len() && sim[j].session == session {
            j += 1;
        }
        emit_session_spans(&sim[i..j], &mut out);
        i = j;
    }
    if let Some(w) = wall {
        metadata("process_name", WALL_PID, 0, "engine (wall-clock)", &mut out);
        for (lane, name) in &w.lanes {
            metadata("thread_name", WALL_PID, *lane, name, &mut out);
        }
        for s in &w.spans {
            let mut e = base_event(&s.name, "engine", "X", s.start_us, WALL_PID, s.lane);
            e.insert("dur".into(), s.dur_us.to_value());
            e.insert("args".into(), args_object(&s.args));
            out.push(Value::Object(e).to_json_string());
        }
        for inst in &w.instants {
            let mut e = base_event(&inst.name, "engine", "i", inst.at_us, WALL_PID, inst.lane);
            e.insert("s".into(), "t".to_value());
            e.insert("args".into(), args_object(&inst.args));
            out.push(Value::Object(e).to_json_string());
        }
        for c in &w.counters {
            let mut e = base_event(&c.name, "engine", "C", c.at_us, WALL_PID, 0);
            e.insert("args".into(), args_object(&c.series));
            out.push(Value::Object(e).to_json_string());
        }
    }
    let mut text = String::from("{\"traceEvents\":[\n");
    for (k, line) in out.iter().enumerate() {
        text.push_str(line);
        if k + 1 < out.len() {
            text.push(',');
        }
        text.push('\n');
    }
    text.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::canonicalize;

    fn raw(session: u64, chunk: Option<u32>, kind: SpanKind, start: u64, end: u64) -> SimSpan {
        SimSpan {
            id: 0,
            parent: None,
            session,
            chunk,
            kind,
            start_ns: start,
            end_ns: end,
        }
    }

    fn parse_events(text: &str) -> Vec<Value> {
        let v = Value::parse_json(text).expect("trace parses");
        v.get("traceEvents")
            .and_then(|t| t.as_array())
            .expect("traceEvents array")
            .to_vec()
    }

    #[test]
    fn sim_spans_emit_matched_nested_pairs() {
        let mut spans = vec![
            raw(4, None, SpanKind::Session, 0, 100_000),
            raw(4, Some(0), SpanKind::Chunk, 10_000, 60_000),
            raw(4, Some(0), SpanKind::CacheLookup, 12_000, 20_000),
            raw(4, Some(0), SpanKind::NetTransfer, 20_000, 50_000),
            raw(4, Some(0), SpanKind::Render, 50_000, 60_000),
            raw(4, Some(1), SpanKind::Chunk, 60_000, 95_000),
        ];
        canonicalize(&mut spans);
        let text = render_chrome_trace(&spans, None);
        let events = parse_events(&text);
        let mut depth = 0i64;
        let mut last_ts = 0u64;
        let mut begins = 0;
        for e in &events {
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            if ph == "M" {
                continue;
            }
            let ts = e.get("ts").and_then(|t| t.as_u64()).unwrap();
            assert!(ts >= last_ts, "timestamps regressed: {last_ts} -> {ts}");
            last_ts = ts;
            match ph {
                "B" => {
                    depth += 1;
                    begins += 1;
                }
                "E" => depth -= 1,
                other => panic!("unexpected ph {other}"),
            }
            assert!(depth >= 0, "E without matching B");
        }
        assert_eq!(depth, 0, "unclosed B events");
        assert_eq!(begins, spans.len());
    }

    #[test]
    fn wall_trace_renders_slices_instants_and_counters() {
        let wall = WallTrace {
            lanes: vec![(0, "worker 0".into()), (9, "run".into())],
            spans: vec![WallSpan {
                lane: 0,
                name: "shard 3".into(),
                start_us: 100,
                dur_us: 900,
                args: vec![("events".into(), 1234)],
            }],
            instants: vec![WallInstant {
                lane: 0,
                name: "steal".into(),
                at_us: 150,
                args: vec![("job".into(), 3)],
            }],
            counters: vec![WallCounter {
                name: "heartbeat events".into(),
                at_us: 200,
                series: vec![("shard 3".into(), 500)],
            }],
        };
        let text = render_chrome_trace(&[], Some(&wall));
        let events = parse_events(&text);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"C"));
        assert!(text.contains("worker 0"));
        assert!(text.contains("\"dur\":900"));
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let text = render_chrome_trace(&[], None);
        let events = parse_events(&text);
        // Only the sim process-name metadata event.
        assert_eq!(events.len(), 1);
    }
}
