//! Typed simulation events and the [`Subscriber`] trait.
//!
//! Modeled on s2n-quic's generated event framework: one plain struct per
//! event, one `on_*` method per event on [`Subscriber`], and a no-op
//! default body for every method. Instrumented code calls the subscriber
//! unconditionally; when the subscriber is [`NoopSubscriber`] the calls
//! monomorphize to empty inlined functions and the probes cost nothing.
//!
//! Events carry **sim-time** payloads only ([`Meta::at`] is the simulation
//! clock, never a wall clock), so any metrics derived from them are
//! deterministic functions of the seed.

use serde::Serialize;
use streamlab_sim::{SimDuration, SimTime};

/// Context common to every event: when (sim-time) and, where applicable,
/// for which session it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Meta {
    /// Simulation time of the event.
    pub at: SimTime,
    /// The session the event belongs to (`None` for fleet-level events).
    pub session: Option<u64>,
}

impl Meta {
    /// Meta for a session-scoped event.
    pub fn session(at: SimTime, session: u64) -> Self {
        Meta {
            at,
            session: Some(session),
        }
    }

    /// Meta for a fleet- or engine-level event.
    pub fn fleet(at: SimTime) -> Self {
        Meta { at, session: None }
    }
}

/// Which cache tier satisfied a lookup (mirrors the CDN crate's status,
/// redeclared here so the observability substrate stays dependency-light).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CacheTier {
    /// Served from the main-memory cache.
    Ram,
    /// Served from the disk cache.
    Disk,
    /// Not cached; fetched from the backend.
    Miss,
}

/// Why a congestion window collapsed back to the initial window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResetReason {
    /// A retransmission timeout fired (`cwnd := 1`).
    Loss,
    /// The connection idled past an RTO and slow-start restart applied.
    Idle,
}

/// A session began (its first chunk request was processed).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SessionStart {
    /// Global index of the session's assigned server.
    pub server: u64,
}

/// A session finished (ran out of chunks, or abandoned).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SessionEnd {
    /// Chunks the session downloaded.
    pub chunks: u32,
}

/// A cache lookup completed on a CDN server.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheLookup {
    /// Tier that satisfied the request.
    pub tier: CacheTier,
    /// Whether the object was a manifest (vs a media chunk).
    pub manifest: bool,
    /// Object size, bytes.
    pub bytes: u64,
}

/// The ATS asynchronous open-read retry timer fired (§4.1's 10 ms timer).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RetryTimerFired {}

/// One or more segments were retransmitted within a TCP round.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Retransmit {
    /// Segments lost (and hence retransmitted) this round.
    pub segments: u32,
}

/// A retransmission timeout fired (not enough dup-acks for fast
/// retransmit).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RtoTimeout {}

/// The congestion window collapsed to the initial window.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CwndReset {
    /// What triggered the collapse.
    pub reason: ResetReason,
}

/// Playback stalled (rebuffering attributed to one chunk).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Stall {
    /// Rebuffer events attributed to the chunk.
    pub count: u32,
    /// Total stall duration (sim-time).
    pub duration: SimDuration,
}

/// A chunk was rendered by the client.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ChunkRendered {
    /// Frames the chunk carried.
    pub frames: u32,
    /// Frames dropped.
    pub dropped: u32,
}

/// A chunk was served end to end (the orchestrator-level roll-up feeding
/// the latency histograms, the sim-time spans and the localization pass).
///
/// The offsets are measured from the event's `meta.at` (the chunk
/// request time) and carve the chunk's `first_byte + download` total
/// into the span phases: `[serve_offset, serve_offset + serve]` is the
/// server-side serve, `[serve_offset + serve, net_end]` the TCP
/// transfer, `[net_end, first_byte + download]` the client tail.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ChunkServed {
    /// Chunk size, bytes.
    pub bytes: u64,
    /// TCP segments sent to deliver the chunk (retransmissions included).
    pub segments: u32,
    /// Total server-side latency (`D_wait + D_open + D_read`).
    pub serve: SimDuration,
    /// Request to player-first-byte (`D_FB`).
    pub first_byte: SimDuration,
    /// Player first byte to last byte (`D_LB`).
    pub download: SimDuration,
    /// Request to the request's arrival at the server (uplink
    /// propagation, half of rtt₀).
    pub serve_offset: SimDuration,
    /// Request to the last byte leaving the network (TCP transfer end,
    /// before download-stack buffering).
    pub net_end: SimDuration,
    /// Time the chunk's bytes sat in the client download stack (`D_DS`).
    pub stack: SimDuration,
}

/// Why an injected fault rejected a chunk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FailReason {
    /// The target server (or its whole PoP) was inside an outage window.
    Outage,
    /// The network path was inside a blackout window.
    Blackout,
}

/// An injected server restart was applied: the server's RAM cache was
/// wiped while its disk tier stayed warm (the paper's §5 churn
/// mechanism).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServerRestarted {
    /// Global index of the restarted server.
    pub server: u64,
}

/// A chunk request failed (injected outage or blackout) and the client
/// scheduled a retry.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RequestFailed {
    /// Global index of the server the request targeted.
    pub server: u64,
    /// Why the request failed.
    pub reason: FailReason,
    /// How many attempts this chunk has burned so far (1-based).
    pub attempt: u32,
    /// Timeout + backoff the client waits before the next attempt.
    pub retry_delay: SimDuration,
}

/// After repeated failures the client switched to another server in the
/// same PoP.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Failover {
    /// Server the session was on.
    pub from_server: u64,
    /// Server it moved to.
    pub to_server: u64,
}

/// Retries ate the playback buffer below the emergency threshold and the
/// ABR dropped to the lowest rung.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AbrEmergency {
    /// Bitrate the ABR would have picked, kbit/s.
    pub from_kbps: u32,
    /// Emergency bitrate actually used, kbit/s.
    pub to_kbps: u32,
}

/// A session gave up on a chunk after `max_attempts_per_chunk` failures
/// and ended early.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SessionAborted {
    /// Failed attempts the final chunk burned.
    pub attempts: u32,
    /// The terminal failure's cause — what the localization pass blames
    /// the abort on.
    pub reason: FailReason,
}

/// A fleet shard was cancelled by the run watchdog: its sim-time sat
/// still past the configured deadline and the shard gave up at an
/// event-pop boundary.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ShardStalled {
    /// Canonical shard index in the engine's shard order.
    pub shard_index: u64,
    /// PoP index the shard covered (shards are per server or per PoP,
    /// so several shards may share a PoP).
    pub pop_index: u64,
    /// Events the shard had processed when it was declared stalled.
    pub events: u64,
    /// The sim-time (ns) the shard was stuck at.
    pub sim_ns: u64,
}

/// A fleet shard was merged back after its event loop drained.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ShardMerge {
    /// Canonical shard index in the engine's shard order.
    pub shard_index: u64,
    /// PoP index the shard covered (shards are per server or per PoP,
    /// so several shards may share a PoP).
    pub pop_index: u64,
    /// Sessions the shard ran.
    pub sessions: u64,
    /// Events its event loop processed.
    pub events: u64,
}

/// Receives simulation events.
///
/// Every method has an inlined no-op default, so implementors override
/// only what they care about and uninstrumented runs pay nothing: with
/// [`NoopSubscriber`] the monomorphized calls are empty and the optimizer
/// deletes them (the repo's `parallel` bench guards this).
pub trait Subscriber {
    /// A session began.
    #[inline]
    fn on_session_start(&mut self, meta: &Meta, event: &SessionStart) {
        let _ = meta;
        let _ = event;
    }

    /// A session finished.
    #[inline]
    fn on_session_end(&mut self, meta: &Meta, event: &SessionEnd) {
        let _ = meta;
        let _ = event;
    }

    /// A cache lookup completed.
    #[inline]
    fn on_cache_lookup(&mut self, meta: &Meta, event: &CacheLookup) {
        let _ = meta;
        let _ = event;
    }

    /// The open-read retry timer fired.
    #[inline]
    fn on_retry_timer_fired(&mut self, meta: &Meta, event: &RetryTimerFired) {
        let _ = meta;
        let _ = event;
    }

    /// Segments were retransmitted.
    #[inline]
    fn on_retransmit(&mut self, meta: &Meta, event: &Retransmit) {
        let _ = meta;
        let _ = event;
    }

    /// A retransmission timeout fired.
    #[inline]
    fn on_rto_timeout(&mut self, meta: &Meta, event: &RtoTimeout) {
        let _ = meta;
        let _ = event;
    }

    /// The congestion window collapsed.
    #[inline]
    fn on_cwnd_reset(&mut self, meta: &Meta, event: &CwndReset) {
        let _ = meta;
        let _ = event;
    }

    /// Playback stalled.
    #[inline]
    fn on_stall(&mut self, meta: &Meta, event: &Stall) {
        let _ = meta;
        let _ = event;
    }

    /// A chunk was rendered.
    #[inline]
    fn on_chunk_rendered(&mut self, meta: &Meta, event: &ChunkRendered) {
        let _ = meta;
        let _ = event;
    }

    /// A chunk was served end to end.
    #[inline]
    fn on_chunk_served(&mut self, meta: &Meta, event: &ChunkServed) {
        let _ = meta;
        let _ = event;
    }

    /// An injected server restart was applied.
    #[inline]
    fn on_server_restarted(&mut self, meta: &Meta, event: &ServerRestarted) {
        let _ = meta;
        let _ = event;
    }

    /// A chunk request failed and will be retried.
    #[inline]
    fn on_request_failed(&mut self, meta: &Meta, event: &RequestFailed) {
        let _ = meta;
        let _ = event;
    }

    /// A session failed over to another server.
    #[inline]
    fn on_failover(&mut self, meta: &Meta, event: &Failover) {
        let _ = meta;
        let _ = event;
    }

    /// The ABR made an emergency down-switch.
    #[inline]
    fn on_abr_emergency(&mut self, meta: &Meta, event: &AbrEmergency) {
        let _ = meta;
        let _ = event;
    }

    /// A session aborted after exhausting its retry budget.
    #[inline]
    fn on_session_aborted(&mut self, meta: &Meta, event: &SessionAborted) {
        let _ = meta;
        let _ = event;
    }

    /// A fleet shard merged back.
    #[inline]
    fn on_shard_merge(&mut self, meta: &Meta, event: &ShardMerge) {
        let _ = meta;
        let _ = event;
    }

    /// A fleet shard was cancelled by the run watchdog.
    #[inline]
    fn on_shard_stalled(&mut self, meta: &Meta, event: &ShardStalled) {
        let _ = meta;
        let _ = event;
    }
}

/// The do-nothing subscriber: instrumented code driven with this compiles
/// to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingSub {
        lookups: u64,
        retries: u64,
    }

    impl Subscriber for CountingSub {
        fn on_cache_lookup(&mut self, _meta: &Meta, _event: &CacheLookup) {
            self.lookups += 1;
        }
        fn on_retry_timer_fired(&mut self, _meta: &Meta, _event: &RetryTimerFired) {
            self.retries += 1;
        }
    }

    #[test]
    fn defaults_are_noops_and_overrides_fire() {
        let mut sub = CountingSub {
            lookups: 0,
            retries: 0,
        };
        let meta = Meta::session(SimTime::from_millis(5), 7);
        sub.on_cache_lookup(
            &meta,
            &CacheLookup {
                tier: CacheTier::Ram,
                manifest: false,
                bytes: 1024,
            },
        );
        sub.on_retry_timer_fired(&meta, &RetryTimerFired {});
        // Default method: must not panic, must not count anywhere.
        sub.on_rto_timeout(&meta, &RtoTimeout {});
        assert_eq!(sub.lookups, 1);
        assert_eq!(sub.retries, 1);
    }

    #[test]
    fn noop_subscriber_accepts_everything() {
        let mut sub = NoopSubscriber;
        let meta = Meta::fleet(SimTime::ZERO);
        sub.on_shard_merge(
            &meta,
            &ShardMerge {
                shard_index: 0,
                pop_index: 0,
                sessions: 1,
                events: 2,
            },
        );
        sub.on_stall(
            &meta,
            &Stall {
                count: 1,
                duration: SimDuration::from_millis(250),
            },
        );
    }

    #[test]
    fn events_serialize_for_tracing() {
        let v = serde::Serialize::to_value(&CacheLookup {
            tier: CacheTier::Disk,
            manifest: true,
            bytes: 8192,
        });
        let text = v.to_json_string();
        assert!(text.contains("\"Disk\""), "{text}");
        assert!(text.contains("\"manifest\":true"), "{text}");
    }
}
