//! The paper's problem-localization pass: attribute every impairment to
//! exactly one component of the delivery chain.
//!
//! The paper instruments both ends of every chunk and then localizes each
//! impairment to the CDN **server** (§4.1: `D_wait`/`D_open`/`D_read`,
//! cache misses), the **network** path (§4.2: retransmissions, RTT,
//! loss), the client **download stack** (§4.3: kernel/browser buffering
//! delaying bytes the network already delivered), or the **rendering**
//! path (§4.4: dropped frames). This module is the shared, deterministic
//! classifier: the [`crate::MetricsRecorder`] applies it online per
//! session (feeding the `loc_*` counters in
//! [`crate::SimMetrics`]), and `crates/analysis` re-applies the same
//! rules offline to the joined dataset for the localization table.
//!
//! Everything here is a pure function of sim-time integers, so the
//! counters inherit the byte-identity-at-any-thread-count contract.

use crate::event::FailReason;
use serde::Serialize;

/// Where a session's (or stall's) dominant problem lives — the paper's
/// four-way taxonomy plus `Healthy` for unimpaired sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ProblemClass {
    /// CDN server: serve latency (`D_wait + D_open + D_read`) dominates,
    /// or the server/PoP was in an outage window.
    Server,
    /// Network path: transfer time (loss, RTT, retransmissions)
    /// dominates, or the path was in a blackout window.
    Network,
    /// Client download stack: bytes sat in kernel/browser buffers after
    /// the network delivered them (`D_DS`).
    ClientStack,
    /// Rendering path: playback was fine but frames were dropped.
    Rendering,
    /// No attributable impairment.
    Healthy,
}

impl ProblemClass {
    /// Stable lowercase label (metric/figure key).
    pub fn label(self) -> &'static str {
        match self {
            ProblemClass::Server => "server",
            ProblemClass::Network => "network",
            ProblemClass::ClientStack => "client_stack",
            ProblemClass::Rendering => "rendering",
            ProblemClass::Healthy => "healthy",
        }
    }
}

/// Dropped-frame fraction above which an otherwise-clean session is
/// classified [`ProblemClass::Rendering`] (the paper's §4.4 treats drops
/// as the rendering-path impairment signal).
pub const RENDER_DROP_THRESHOLD: f64 = 0.10;

/// Where one chunk's end-to-end time went, in sim-time nanoseconds. The
/// three shares partition `D_FB + D_LB` (uplink propagation rides with
/// the network share).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkBreakdown {
    /// Server-side serve time (`D_wait + D_open + D_read`).
    pub server_ns: u64,
    /// Network transfer time (propagation, loss recovery, pacing).
    pub network_ns: u64,
    /// Download-stack residence time (`D_DS`).
    pub stack_ns: u64,
}

impl ChunkBreakdown {
    /// Split a chunk's total delivery time (`D_FB + D_LB`) into the
    /// three shares, giving the network the remainder once the measured
    /// server and stack times are taken out (saturating: modeling noise
    /// can make the parts exceed the whole by a rounding hair).
    pub fn from_phases(total_ns: u64, server_ns: u64, stack_ns: u64) -> ChunkBreakdown {
        ChunkBreakdown {
            server_ns,
            network_ns: total_ns.saturating_sub(server_ns).saturating_sub(stack_ns),
            stack_ns,
        }
    }

    /// The component that ate the most time. Ties break in fixed
    /// `Server > Network > ClientStack` order so attribution is
    /// deterministic (an all-zero breakdown reads as `Server`).
    pub fn dominant(&self) -> ProblemClass {
        if self.server_ns >= self.network_ns && self.server_ns >= self.stack_ns {
            ProblemClass::Server
        } else if self.network_ns >= self.stack_ns {
            ProblemClass::Network
        } else {
            ProblemClass::ClientStack
        }
    }
}

/// Which component an aborted session's terminal failure implicates:
/// outages are a server-side fault, blackouts a network fault.
pub fn classify_abort(reason: FailReason) -> ProblemClass {
    match reason {
        FailReason::Outage => ProblemClass::Server,
        FailReason::Blackout => ProblemClass::Network,
    }
}

/// Per-class rebuffer attribution counts for one session.
#[derive(Debug, Clone, Copy, Default)]
pub struct RebufferShares {
    /// Stalls whose chunk was dominated by server-side latency.
    pub server: u64,
    /// Stalls whose chunk was dominated by the network transfer.
    pub network: u64,
    /// Stalls whose chunk was dominated by download-stack buffering.
    pub stack: u64,
}

impl RebufferShares {
    /// Total attributed stalls.
    pub fn total(&self) -> u64 {
        self.server + self.network + self.stack
    }

    /// Attribute `count` more stalls to `class` (rendering/healthy never
    /// cause a stall, so they fold into the deterministic `Server`
    /// fallback — unreachable from [`ChunkBreakdown::dominant`]).
    pub fn add(&mut self, class: ProblemClass, count: u64) {
        match class {
            ProblemClass::Network => self.network += count,
            ProblemClass::ClientStack => self.stack += count,
            _ => self.server += count,
        }
    }

    /// The class with the most attributed stalls, `None` when the
    /// session never stalled. Ties break `Server > Network > ClientStack`.
    pub fn dominant(&self) -> Option<ProblemClass> {
        if self.total() == 0 {
            return None;
        }
        Some(
            if self.server >= self.network && self.server >= self.stack {
                ProblemClass::Server
            } else if self.network >= self.stack {
                ProblemClass::Network
            } else {
                ProblemClass::ClientStack
            },
        )
    }
}

/// The deterministic per-session diagnosis rule, in precedence order:
///
/// 1. an aborted session is classified by its terminal failure;
/// 2. a session that rebuffered is classified by where the majority of
///    its stalls were attributed;
/// 3. a session that dropped more than [`RENDER_DROP_THRESHOLD`] of its
///    frames is a rendering problem;
/// 4. anything else is healthy.
pub fn classify_session(
    rebuffers: &RebufferShares,
    abort: Option<ProblemClass>,
    frames: u64,
    dropped: u64,
) -> ProblemClass {
    if let Some(class) = abort {
        return class;
    }
    if let Some(class) = rebuffers.dominant() {
        return class;
    }
    if frames > 0 && dropped as f64 > RENDER_DROP_THRESHOLD * frames as f64 {
        return ProblemClass::Rendering;
    }
    ProblemClass::Healthy
}

/// Rolling localization state for one in-flight session, kept by the
/// recorder from `SessionStart` to `SessionEnd`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionLens {
    /// Session arrival, sim-time nanoseconds (for the session span).
    pub start_ns: u64,
    /// Chunks served so far (the next chunk's index).
    pub chunks: u32,
    /// Breakdown of the most recent chunk — the one a following `Stall`
    /// event is attributed to.
    pub last: ChunkBreakdown,
    /// Per-class stall attribution so far.
    pub rebuffers: RebufferShares,
    /// Frames carried by rendered chunks.
    pub frames: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Terminal-failure class, set when the session aborts.
    pub abort: Option<ProblemClass>,
}

impl SessionLens {
    /// Final diagnosis for the session ([`classify_session`]).
    pub fn diagnose(&self) -> ProblemClass {
        classify_session(&self.rebuffers, self.abort, self.frames, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_splits_and_ties_deterministically() {
        let b = ChunkBreakdown::from_phases(100, 30, 20);
        assert_eq!(b.network_ns, 50);
        assert_eq!(b.dominant(), ProblemClass::Network);
        // Exact tie: fixed priority keeps attribution deterministic.
        let tie = ChunkBreakdown {
            server_ns: 5,
            network_ns: 5,
            stack_ns: 5,
        };
        assert_eq!(tie.dominant(), ProblemClass::Server);
        // Parts exceeding the whole saturate instead of wrapping.
        assert_eq!(ChunkBreakdown::from_phases(10, 8, 8).network_ns, 0);
    }

    #[test]
    fn stack_dominated_chunks_blame_the_download_stack() {
        let b = ChunkBreakdown::from_phases(100, 10, 80);
        assert_eq!(b.dominant(), ProblemClass::ClientStack);
    }

    #[test]
    fn session_rule_precedence() {
        let mut shares = RebufferShares::default();
        shares.add(ProblemClass::Network, 3);
        shares.add(ProblemClass::Server, 1);
        // Abort outranks stalls.
        assert_eq!(
            classify_session(&shares, Some(ProblemClass::Server), 100, 0),
            ProblemClass::Server
        );
        // Stalls outrank drops.
        assert_eq!(
            classify_session(&shares, None, 100, 90),
            ProblemClass::Network
        );
        // Drops above threshold mark the rendering path...
        assert_eq!(
            classify_session(&RebufferShares::default(), None, 100, 11),
            ProblemClass::Rendering
        );
        // ...and a clean session is healthy.
        assert_eq!(
            classify_session(&RebufferShares::default(), None, 100, 10),
            ProblemClass::Healthy
        );
    }

    #[test]
    fn abort_reasons_map_onto_the_taxonomy() {
        assert_eq!(classify_abort(FailReason::Outage), ProblemClass::Server);
        assert_eq!(classify_abort(FailReason::Blackout), ProblemClass::Network);
    }

    #[test]
    fn lens_accumulates_and_diagnoses() {
        let mut lens = SessionLens {
            last: ChunkBreakdown::from_phases(100, 70, 10),
            ..Default::default()
        };
        lens.rebuffers.add(lens.last.dominant(), 2);
        lens.frames = 500;
        lens.dropped = 4;
        assert_eq!(lens.diagnose(), ProblemClass::Server);
        assert_eq!(lens.rebuffers.total(), 2);
    }
}
