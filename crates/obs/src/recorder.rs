//! The built-in subscriber: folds events into [`SimMetrics`], optionally
//! buffers a structured JSONL trace and sim-time [`SimSpan`]s, and runs
//! the per-session problem-localization pass online.

use crate::diagnose::{classify_abort, ChunkBreakdown, ProblemClass, SessionLens};
use crate::event::{
    AbrEmergency, CacheLookup, CacheTier, ChunkRendered, ChunkServed, CwndReset, FailReason,
    Failover, Meta, RequestFailed, ResetReason, Retransmit, RetryTimerFired, RtoTimeout,
    ServerRestarted, SessionAborted, SessionEnd, SessionStart, ShardMerge, ShardStalled, Stall,
    Subscriber,
};
use crate::metrics::SimMetrics;
use crate::span::{SimSpan, SpanKind};
use serde::{Map, Serialize, Value};
use std::collections::HashMap;

/// A per-shard metrics collector.
///
/// Each shard (or the single sequential event loop) owns one recorder;
/// after the run the orchestrator merges them **in canonical shard
/// order**. Counter and histogram merges are commutative, so
/// [`SimMetrics`] is byte-identical at any thread count; trace lines are
/// concatenated in the same canonical order, but *within-run interleaving
/// across shards* necessarily differs from the sequential engine's global
/// time order, so the trace promises "non-empty and parseable", not
/// byte-identity (see DESIGN.md §10).
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    metrics: SimMetrics,
    trace: Option<Vec<String>>,
    spans: Option<Vec<SimSpan>>,
    /// Localization state for in-flight sessions; drained as sessions
    /// end. Only per-key operations (never iteration), so hash order
    /// cannot leak into the deterministic counters.
    lens: HashMap<u64, SessionLens>,
}

impl MetricsRecorder {
    /// A recorder; with `trace` set, every event is also buffered as one
    /// JSONL line. Span collection is off ([`MetricsRecorder::with_options`]).
    pub fn new(trace: bool) -> Self {
        Self::with_options(trace, false)
    }

    /// A recorder with both optional buffers chosen: `trace` buffers the
    /// flat JSONL event log, `spans` buffers raw sim-time [`SimSpan`]s
    /// for `--trace-out`. Metrics and localization always run.
    pub fn with_options(trace: bool, spans: bool) -> Self {
        MetricsRecorder {
            metrics: SimMetrics::default(),
            trace: if trace { Some(Vec::new()) } else { None },
            spans: if spans { Some(Vec::new()) } else { None },
            lens: HashMap::new(),
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Buffered trace lines (empty when tracing is off).
    pub fn trace_lines(&self) -> &[String] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Raw (not yet canonicalized) sim-time spans collected so far.
    pub fn sim_spans(&self) -> &[SimSpan] {
        self.spans.as_deref().unwrap_or(&[])
    }

    /// Drain the buffered spans (raw shard order; run
    /// [`crate::span::canonicalize`] before export).
    pub fn take_spans(&mut self) -> Vec<SimSpan> {
        self.spans.take().unwrap_or_default()
    }

    /// Fold another recorder in: metrics merge additively, trace lines
    /// and spans append. Call in canonical shard order.
    pub fn absorb(&mut self, other: MetricsRecorder) {
        self.metrics.merge(&other.metrics);
        match (&mut self.trace, other.trace) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (None, Some(theirs)) => self.trace = Some(theirs),
            _ => {}
        }
        match (&mut self.spans, other.spans) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (None, Some(theirs)) => self.spans = Some(theirs),
            _ => {}
        }
        // A cancelled shard can leave in-flight sessions behind; carry
        // their lenses so nothing is silently dropped (completed shards
        // contribute an empty map).
        self.lens.extend(other.lens);
    }

    /// Decompose into metrics and trace lines.
    pub fn into_parts(self) -> (SimMetrics, Vec<String>) {
        (self.metrics, self.trace.unwrap_or_default())
    }

    /// Record engine-level throughput that arrives as plain numbers
    /// rather than events (queue pops).
    pub fn add_events_processed(&mut self, n: u64) {
        self.metrics.events_processed.add(n);
    }

    fn emit<E: Serialize>(&mut self, meta: &Meta, name: &str, event: &E) {
        if let Some(buf) = &mut self.trace {
            let mut line = Map::new();
            line.insert("at_ns".into(), meta.at.as_nanos().to_value());
            line.insert(
                "session".into(),
                match meta.session {
                    Some(s) => s.to_value(),
                    None => Value::Null,
                },
            );
            let mut body = Map::new();
            body.insert(name.into(), event.to_value());
            line.insert("event".into(), Value::Object(body));
            buf.push(Value::Object(line).to_json_string());
        }
    }
}

impl Subscriber for MetricsRecorder {
    fn on_session_start(&mut self, meta: &Meta, event: &SessionStart) {
        self.metrics.sessions_started.inc();
        if let Some(sid) = meta.session {
            let lens = self.lens.entry(sid).or_default();
            lens.start_ns = meta.at.as_nanos();
        }
        self.emit(meta, "SessionStart", event);
    }

    fn on_session_end(&mut self, meta: &Meta, event: &SessionEnd) {
        self.metrics.sessions_ended.inc();
        if let Some(sid) = meta.session {
            let lens = self.lens.remove(&sid).unwrap_or_default();
            match lens.diagnose() {
                ProblemClass::Server => self.metrics.loc_sessions_server.inc(),
                ProblemClass::Network => self.metrics.loc_sessions_network.inc(),
                ProblemClass::ClientStack => self.metrics.loc_sessions_stack.inc(),
                ProblemClass::Rendering => self.metrics.loc_sessions_rendering.inc(),
                ProblemClass::Healthy => self.metrics.loc_sessions_healthy.inc(),
            }
            if let Some(buf) = &mut self.spans {
                buf.push(SimSpan {
                    id: 0,
                    parent: None,
                    session: sid,
                    chunk: None,
                    kind: SpanKind::Session,
                    start_ns: lens.start_ns,
                    end_ns: meta.at.as_nanos().max(lens.start_ns),
                });
            }
        }
        self.emit(meta, "SessionEnd", event);
    }

    fn on_cache_lookup(&mut self, meta: &Meta, event: &CacheLookup) {
        if event.manifest {
            self.metrics.manifest_requests.inc();
            match event.tier {
                CacheTier::Ram => self.metrics.manifest_ram_hits.inc(),
                CacheTier::Disk => self.metrics.manifest_disk_hits.inc(),
                CacheTier::Miss => self.metrics.manifest_misses.inc(),
            }
        } else {
            match event.tier {
                CacheTier::Ram => self.metrics.chunk_ram_hits.inc(),
                CacheTier::Disk => self.metrics.chunk_disk_hits.inc(),
                CacheTier::Miss => self.metrics.chunk_misses.inc(),
            }
        }
        self.metrics.bytes_served.add(event.bytes);
        match event.tier {
            CacheTier::Ram => self.metrics.bytes_ram.add(event.bytes),
            CacheTier::Disk => self.metrics.bytes_disk.add(event.bytes),
            CacheTier::Miss => self.metrics.bytes_miss.add(event.bytes),
        }
        self.emit(meta, "CacheLookup", event);
    }

    fn on_retry_timer_fired(&mut self, meta: &Meta, event: &RetryTimerFired) {
        self.metrics.retry_timer_fires.inc();
        self.emit(meta, "RetryTimerFired", event);
    }

    fn on_retransmit(&mut self, meta: &Meta, event: &Retransmit) {
        self.metrics.retx_segments.add(u64::from(event.segments));
        self.emit(meta, "Retransmit", event);
    }

    fn on_rto_timeout(&mut self, meta: &Meta, event: &RtoTimeout) {
        self.metrics.rto_timeouts.inc();
        self.emit(meta, "RtoTimeout", event);
    }

    fn on_cwnd_reset(&mut self, meta: &Meta, event: &CwndReset) {
        match event.reason {
            ResetReason::Loss => self.metrics.cwnd_resets_loss.inc(),
            ResetReason::Idle => self.metrics.cwnd_resets_idle.inc(),
        }
        self.emit(meta, "CwndReset", event);
    }

    fn on_stall(&mut self, meta: &Meta, event: &Stall) {
        self.metrics.stall_events.add(u64::from(event.count));
        self.metrics.stall_sim_ns.add(event.duration.as_nanos());
        // Localize the stall to whichever component dominated the chunk
        // it was attributed to (the ChunkServed that just preceded it).
        if let Some(sid) = meta.session {
            let lens = self.lens.entry(sid).or_default();
            let class = lens.last.dominant();
            let count = u64::from(event.count);
            lens.rebuffers.add(class, count);
            match class {
                ProblemClass::Network => self.metrics.loc_rebuffers_network.add(count),
                ProblemClass::ClientStack => self.metrics.loc_rebuffers_stack.add(count),
                _ => self.metrics.loc_rebuffers_server.add(count),
            }
        }
        self.emit(meta, "Stall", event);
    }

    fn on_chunk_rendered(&mut self, meta: &Meta, event: &ChunkRendered) {
        self.metrics.frames_rendered.add(u64::from(event.frames));
        self.metrics.frames_dropped.add(u64::from(event.dropped));
        if let Some(sid) = meta.session {
            let lens = self.lens.entry(sid).or_default();
            lens.frames += u64::from(event.frames);
            lens.dropped += u64::from(event.dropped);
        }
        self.emit(meta, "ChunkRendered", event);
    }

    fn on_chunk_served(&mut self, meta: &Meta, event: &ChunkServed) {
        self.metrics.chunks_served.inc();
        self.metrics.segments_sent.add(u64::from(event.segments));
        self.metrics.serve_latency_ns.record(event.serve.as_nanos());
        self.metrics
            .first_byte_ns
            .record(event.first_byte.as_nanos());
        self.metrics.download_ns.record(event.download.as_nanos());
        if let Some(sid) = meta.session {
            let total = event.first_byte.as_nanos() + event.download.as_nanos();
            let lens = self.lens.entry(sid).or_default();
            let chunk = lens.chunks;
            lens.chunks += 1;
            lens.last =
                ChunkBreakdown::from_phases(total, event.serve.as_nanos(), event.stack.as_nanos());
            if let Some(buf) = &mut self.spans {
                let at = meta.at.as_nanos();
                let end = at + total;
                // Phase boundaries, clamped into the chunk interval so
                // the span tree always nests (modeling noise can land a
                // boundary a hair past the end).
                let serve_start = (at + event.serve_offset.as_nanos()).min(end);
                let serve_end = (serve_start + event.serve.as_nanos()).min(end);
                let net_end = (at + event.net_end.as_nanos()).clamp(serve_end, end);
                let mut push = |kind: SpanKind, start_ns: u64, end_ns: u64| {
                    buf.push(SimSpan {
                        id: 0,
                        parent: None,
                        session: sid,
                        chunk: Some(chunk),
                        kind,
                        start_ns,
                        end_ns,
                    });
                };
                push(SpanKind::Chunk, at, end);
                push(SpanKind::CacheLookup, serve_start, serve_end);
                push(SpanKind::NetTransfer, serve_end, net_end);
                push(SpanKind::Render, net_end, end);
            }
        }
        self.emit(meta, "ChunkServed", event);
    }

    fn on_server_restarted(&mut self, meta: &Meta, event: &ServerRestarted) {
        self.metrics.server_restarts.inc();
        self.emit(meta, "ServerRestarted", event);
    }

    fn on_request_failed(&mut self, meta: &Meta, event: &RequestFailed) {
        match event.reason {
            FailReason::Outage => self.metrics.outage_rejections.inc(),
            FailReason::Blackout => self.metrics.blackout_rejections.inc(),
        }
        self.metrics.request_retries.inc();
        self.metrics
            .retry_backoff_ns
            .record(event.retry_delay.as_nanos());
        self.emit(meta, "RequestFailed", event);
    }

    fn on_failover(&mut self, meta: &Meta, event: &Failover) {
        self.metrics.failovers.inc();
        self.emit(meta, "Failover", event);
    }

    fn on_abr_emergency(&mut self, meta: &Meta, event: &AbrEmergency) {
        self.metrics.abr_emergency_switches.inc();
        self.emit(meta, "AbrEmergency", event);
    }

    fn on_session_aborted(&mut self, meta: &Meta, event: &SessionAborted) {
        self.metrics.sessions_aborted.inc();
        let class = classify_abort(event.reason);
        match class {
            ProblemClass::Network => self.metrics.loc_aborts_network.inc(),
            _ => self.metrics.loc_aborts_server.inc(),
        }
        if let Some(sid) = meta.session {
            self.lens.entry(sid).or_default().abort = Some(class);
        }
        self.emit(meta, "SessionAborted", event);
    }

    fn on_shard_merge(&mut self, meta: &Meta, event: &ShardMerge) {
        // Shard merges are an engine-topology fact, not a simulation
        // fact: counting them into SimMetrics would break the
        // threads-invariance contract (the sequential engine has none).
        // They appear in the trace and in RunProfile only.
        self.emit(meta, "ShardMerge", event);
    }

    fn on_shard_stalled(&mut self, meta: &Meta, event: &ShardStalled) {
        // Same reasoning as shard merges: a stall is a harness-topology
        // fact (wall-clock watchdog), so it must not perturb SimMetrics.
        // It surfaces in the trace here and as ShardError::Stalled in the
        // run output.
        self.emit(meta, "ShardStalled", event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_sim::{SimDuration, SimTime};

    fn meta() -> Meta {
        Meta::session(SimTime::from_millis(10), 3)
    }

    #[test]
    fn counters_accumulate_per_event() {
        let mut r = MetricsRecorder::new(false);
        r.on_cache_lookup(
            &meta(),
            &CacheLookup {
                tier: CacheTier::Ram,
                manifest: false,
                bytes: 100,
            },
        );
        r.on_cache_lookup(
            &meta(),
            &CacheLookup {
                tier: CacheTier::Miss,
                manifest: true,
                bytes: 50,
            },
        );
        r.on_retry_timer_fired(&meta(), &RetryTimerFired {});
        r.on_chunk_served(
            &meta(),
            &ChunkServed {
                bytes: 100,
                segments: 70,
                serve: SimDuration::from_millis(2),
                first_byte: SimDuration::from_millis(40),
                download: SimDuration::from_millis(300),
                serve_offset: SimDuration::from_millis(10),
                net_end: SimDuration::from_millis(330),
                stack: SimDuration::from_millis(5),
            },
        );
        let m = r.metrics();
        assert_eq!(m.segments_sent.get(), 70);
        assert_eq!(m.chunk_ram_hits.get(), 1);
        assert_eq!(m.manifest_misses.get(), 1);
        assert_eq!(m.manifest_requests.get(), 1);
        assert_eq!(m.bytes_served.get(), 150);
        assert_eq!(m.bytes_ram.get(), 100);
        assert_eq!(m.bytes_disk.get(), 0);
        assert_eq!(m.bytes_miss.get(), 50);
        assert_eq!(m.retry_timer_fires.get(), 1);
        assert_eq!(m.chunks_served.get(), 1);
        assert_eq!(m.serve_latency_ns.count(), 1);
        assert!(r.trace_lines().is_empty());
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let mut r = MetricsRecorder::new(true);
        r.on_stall(
            &meta(),
            &Stall {
                count: 2,
                duration: SimDuration::from_millis(500),
            },
        );
        r.on_shard_merge(
            &Meta::fleet(SimTime::ZERO),
            &ShardMerge {
                shard_index: 7,
                pop_index: 4,
                sessions: 10,
                events: 99,
            },
        );
        let lines = r.trace_lines();
        assert_eq!(lines.len(), 2);
        for l in lines {
            let v = Value::parse_json(l).expect("valid json");
            assert!(v.get("at_ns").is_some());
            assert!(v.get("event").is_some());
        }
        assert!(lines[0].contains("Stall"));
        assert!(lines[1].contains("ShardMerge"));
        // Fleet-level event has a null session.
        assert!(lines[1].contains("\"session\":null"));
    }

    fn served(serve_ms: u64, stack_ms: u64, fb_ms: u64, dl_ms: u64) -> ChunkServed {
        ChunkServed {
            bytes: 1000,
            segments: 4,
            serve: SimDuration::from_millis(serve_ms),
            first_byte: SimDuration::from_millis(fb_ms),
            download: SimDuration::from_millis(dl_ms),
            serve_offset: SimDuration::from_millis(1),
            net_end: SimDuration::from_millis(fb_ms + dl_ms - stack_ms),
            stack: SimDuration::from_millis(stack_ms),
        }
    }

    #[test]
    fn stalls_are_localized_to_the_dominant_component() {
        let mut r = MetricsRecorder::new(false);
        let m9 = Meta::session(SimTime::from_millis(10), 9);
        r.on_session_start(&m9, &SessionStart { server: 0 });
        // Server-dominated chunk: serve 80 of 100 ms total.
        r.on_chunk_served(&m9, &served(80, 5, 90, 10));
        r.on_stall(
            &m9,
            &Stall {
                count: 2,
                duration: SimDuration::from_millis(100),
            },
        );
        r.on_session_end(&m9, &SessionEnd { chunks: 1 });
        assert_eq!(r.metrics().loc_rebuffers_server.get(), 2);
        assert_eq!(
            r.metrics().loc_rebuffers_total(),
            r.metrics().stall_events.get()
        );
        assert_eq!(r.metrics().loc_sessions_server.get(), 1);
        assert_eq!(
            r.metrics().loc_sessions_total(),
            r.metrics().sessions_ended.get()
        );
    }

    #[test]
    fn aborts_are_localized_by_their_terminal_failure() {
        let mut r = MetricsRecorder::new(false);
        let m4 = Meta::session(SimTime::from_millis(3), 4);
        r.on_session_start(&m4, &SessionStart { server: 1 });
        r.on_session_aborted(
            &m4,
            &SessionAborted {
                attempts: 5,
                reason: FailReason::Blackout,
            },
        );
        r.on_session_end(&m4, &SessionEnd { chunks: 0 });
        let m = r.metrics();
        assert_eq!(m.loc_aborts_network.get(), 1);
        assert_eq!(m.loc_aborts_total(), m.sessions_aborted.get());
        // The abort outranks everything in the session diagnosis.
        assert_eq!(m.loc_sessions_network.get(), 1);
    }

    #[test]
    fn healthy_sessions_stay_healthy() {
        let mut r = MetricsRecorder::new(false);
        let m1 = Meta::session(SimTime::from_millis(1), 1);
        r.on_session_start(&m1, &SessionStart { server: 0 });
        r.on_chunk_served(&m1, &served(2, 1, 10, 40));
        r.on_chunk_rendered(
            &m1,
            &ChunkRendered {
                frames: 240,
                dropped: 1,
            },
        );
        r.on_session_end(&m1, &SessionEnd { chunks: 1 });
        assert_eq!(r.metrics().loc_sessions_healthy.get(), 1);
        assert_eq!(r.metrics().loc_rebuffers_total(), 0);
    }

    #[test]
    fn spans_cover_the_session_tree_when_enabled() {
        let mut r = MetricsRecorder::with_options(false, true);
        let start = Meta::session(SimTime::from_millis(100), 6);
        r.on_session_start(&start, &SessionStart { server: 0 });
        r.on_chunk_served(&start, &served(10, 5, 30, 70));
        r.on_session_end(
            &Meta::session(SimTime::from_millis(200), 6),
            &SessionEnd { chunks: 1 },
        );
        let mut spans = r.take_spans();
        // 1 session + chunk + 3 phases.
        assert_eq!(spans.len(), 5);
        crate::span::canonicalize(&mut spans);
        assert_eq!(spans[0].kind, crate::span::SpanKind::Session);
        assert_eq!(spans[0].start_ns, SimTime::from_millis(100).as_nanos());
        // Phases nest inside the chunk, the chunk inside the session.
        for s in &spans[1..] {
            assert!(s.start_ns >= spans[0].start_ns && s.end_ns <= spans[0].end_ns);
            assert!(s.end_ns >= s.start_ns);
        }
        // Spans off by default: nothing buffered.
        let mut plain = MetricsRecorder::new(true);
        plain.on_chunk_served(&start, &served(1, 1, 5, 5));
        assert!(plain.sim_spans().is_empty());
    }

    #[test]
    fn absorb_merges_metrics_and_appends_trace() {
        let mut a = MetricsRecorder::new(true);
        a.on_rto_timeout(&meta(), &RtoTimeout {});
        let mut b = MetricsRecorder::new(true);
        b.on_rto_timeout(&meta(), &RtoTimeout {});
        b.on_retransmit(&meta(), &Retransmit { segments: 3 });
        a.absorb(b);
        assert_eq!(a.metrics().rto_timeouts.get(), 2);
        assert_eq!(a.metrics().retx_segments.get(), 3);
        assert_eq!(a.trace_lines().len(), 3);
    }
}
