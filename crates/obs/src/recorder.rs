//! The built-in subscriber: folds events into [`SimMetrics`] and
//! optionally buffers a structured JSONL trace.

use crate::event::{
    AbrEmergency, CacheLookup, CacheTier, ChunkRendered, ChunkServed, CwndReset, FailReason,
    Failover, Meta, RequestFailed, ResetReason, Retransmit, RetryTimerFired, RtoTimeout,
    ServerRestarted, SessionAborted, SessionEnd, SessionStart, ShardMerge, ShardStalled, Stall,
    Subscriber,
};
use crate::metrics::SimMetrics;
use serde::{Map, Serialize, Value};

/// A per-shard metrics collector.
///
/// Each shard (or the single sequential event loop) owns one recorder;
/// after the run the orchestrator merges them **in canonical shard
/// order**. Counter and histogram merges are commutative, so
/// [`SimMetrics`] is byte-identical at any thread count; trace lines are
/// concatenated in the same canonical order, but *within-run interleaving
/// across shards* necessarily differs from the sequential engine's global
/// time order, so the trace promises "non-empty and parseable", not
/// byte-identity (see DESIGN.md §10).
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    metrics: SimMetrics,
    trace: Option<Vec<String>>,
}

impl MetricsRecorder {
    /// A recorder; with `trace` set, every event is also buffered as one
    /// JSONL line.
    pub fn new(trace: bool) -> Self {
        MetricsRecorder {
            metrics: SimMetrics::default(),
            trace: if trace { Some(Vec::new()) } else { None },
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Buffered trace lines (empty when tracing is off).
    pub fn trace_lines(&self) -> &[String] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Fold another recorder in: metrics merge additively, trace lines
    /// append. Call in canonical shard order.
    pub fn absorb(&mut self, other: MetricsRecorder) {
        self.metrics.merge(&other.metrics);
        match (&mut self.trace, other.trace) {
            (Some(mine), Some(theirs)) => mine.extend(theirs),
            (None, Some(theirs)) => self.trace = Some(theirs),
            _ => {}
        }
    }

    /// Decompose into metrics and trace lines.
    pub fn into_parts(self) -> (SimMetrics, Vec<String>) {
        (self.metrics, self.trace.unwrap_or_default())
    }

    /// Record engine-level throughput that arrives as plain numbers
    /// rather than events (queue pops).
    pub fn add_events_processed(&mut self, n: u64) {
        self.metrics.events_processed.add(n);
    }

    fn emit<E: Serialize>(&mut self, meta: &Meta, name: &str, event: &E) {
        if let Some(buf) = &mut self.trace {
            let mut line = Map::new();
            line.insert("at_ns".into(), meta.at.as_nanos().to_value());
            line.insert(
                "session".into(),
                match meta.session {
                    Some(s) => s.to_value(),
                    None => Value::Null,
                },
            );
            let mut body = Map::new();
            body.insert(name.into(), event.to_value());
            line.insert("event".into(), Value::Object(body));
            buf.push(Value::Object(line).to_json_string());
        }
    }
}

impl Subscriber for MetricsRecorder {
    fn on_session_start(&mut self, meta: &Meta, event: &SessionStart) {
        self.metrics.sessions_started.inc();
        self.emit(meta, "SessionStart", event);
    }

    fn on_session_end(&mut self, meta: &Meta, event: &SessionEnd) {
        self.metrics.sessions_ended.inc();
        self.emit(meta, "SessionEnd", event);
    }

    fn on_cache_lookup(&mut self, meta: &Meta, event: &CacheLookup) {
        if event.manifest {
            self.metrics.manifest_requests.inc();
            match event.tier {
                CacheTier::Ram => self.metrics.manifest_ram_hits.inc(),
                CacheTier::Disk => self.metrics.manifest_disk_hits.inc(),
                CacheTier::Miss => self.metrics.manifest_misses.inc(),
            }
        } else {
            match event.tier {
                CacheTier::Ram => self.metrics.chunk_ram_hits.inc(),
                CacheTier::Disk => self.metrics.chunk_disk_hits.inc(),
                CacheTier::Miss => self.metrics.chunk_misses.inc(),
            }
        }
        self.metrics.bytes_served.add(event.bytes);
        match event.tier {
            CacheTier::Ram => self.metrics.bytes_ram.add(event.bytes),
            CacheTier::Disk => self.metrics.bytes_disk.add(event.bytes),
            CacheTier::Miss => self.metrics.bytes_miss.add(event.bytes),
        }
        self.emit(meta, "CacheLookup", event);
    }

    fn on_retry_timer_fired(&mut self, meta: &Meta, event: &RetryTimerFired) {
        self.metrics.retry_timer_fires.inc();
        self.emit(meta, "RetryTimerFired", event);
    }

    fn on_retransmit(&mut self, meta: &Meta, event: &Retransmit) {
        self.metrics.retx_segments.add(u64::from(event.segments));
        self.emit(meta, "Retransmit", event);
    }

    fn on_rto_timeout(&mut self, meta: &Meta, event: &RtoTimeout) {
        self.metrics.rto_timeouts.inc();
        self.emit(meta, "RtoTimeout", event);
    }

    fn on_cwnd_reset(&mut self, meta: &Meta, event: &CwndReset) {
        match event.reason {
            ResetReason::Loss => self.metrics.cwnd_resets_loss.inc(),
            ResetReason::Idle => self.metrics.cwnd_resets_idle.inc(),
        }
        self.emit(meta, "CwndReset", event);
    }

    fn on_stall(&mut self, meta: &Meta, event: &Stall) {
        self.metrics.stall_events.add(u64::from(event.count));
        self.metrics.stall_sim_ns.add(event.duration.as_nanos());
        self.emit(meta, "Stall", event);
    }

    fn on_chunk_rendered(&mut self, meta: &Meta, event: &ChunkRendered) {
        self.metrics.frames_rendered.add(u64::from(event.frames));
        self.metrics.frames_dropped.add(u64::from(event.dropped));
        self.emit(meta, "ChunkRendered", event);
    }

    fn on_chunk_served(&mut self, meta: &Meta, event: &ChunkServed) {
        self.metrics.chunks_served.inc();
        self.metrics.segments_sent.add(u64::from(event.segments));
        self.metrics.serve_latency_ns.record(event.serve.as_nanos());
        self.metrics
            .first_byte_ns
            .record(event.first_byte.as_nanos());
        self.metrics.download_ns.record(event.download.as_nanos());
        self.emit(meta, "ChunkServed", event);
    }

    fn on_server_restarted(&mut self, meta: &Meta, event: &ServerRestarted) {
        self.metrics.server_restarts.inc();
        self.emit(meta, "ServerRestarted", event);
    }

    fn on_request_failed(&mut self, meta: &Meta, event: &RequestFailed) {
        match event.reason {
            FailReason::Outage => self.metrics.outage_rejections.inc(),
            FailReason::Blackout => self.metrics.blackout_rejections.inc(),
        }
        self.metrics.request_retries.inc();
        self.metrics
            .retry_backoff_ns
            .record(event.retry_delay.as_nanos());
        self.emit(meta, "RequestFailed", event);
    }

    fn on_failover(&mut self, meta: &Meta, event: &Failover) {
        self.metrics.failovers.inc();
        self.emit(meta, "Failover", event);
    }

    fn on_abr_emergency(&mut self, meta: &Meta, event: &AbrEmergency) {
        self.metrics.abr_emergency_switches.inc();
        self.emit(meta, "AbrEmergency", event);
    }

    fn on_session_aborted(&mut self, meta: &Meta, event: &SessionAborted) {
        self.metrics.sessions_aborted.inc();
        self.emit(meta, "SessionAborted", event);
    }

    fn on_shard_merge(&mut self, meta: &Meta, event: &ShardMerge) {
        // Shard merges are an engine-topology fact, not a simulation
        // fact: counting them into SimMetrics would break the
        // threads-invariance contract (the sequential engine has none).
        // They appear in the trace and in RunProfile only.
        self.emit(meta, "ShardMerge", event);
    }

    fn on_shard_stalled(&mut self, meta: &Meta, event: &ShardStalled) {
        // Same reasoning as shard merges: a stall is a harness-topology
        // fact (wall-clock watchdog), so it must not perturb SimMetrics.
        // It surfaces in the trace here and as ShardError::Stalled in the
        // run output.
        self.emit(meta, "ShardStalled", event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlab_sim::{SimDuration, SimTime};

    fn meta() -> Meta {
        Meta::session(SimTime::from_millis(10), 3)
    }

    #[test]
    fn counters_accumulate_per_event() {
        let mut r = MetricsRecorder::new(false);
        r.on_cache_lookup(
            &meta(),
            &CacheLookup {
                tier: CacheTier::Ram,
                manifest: false,
                bytes: 100,
            },
        );
        r.on_cache_lookup(
            &meta(),
            &CacheLookup {
                tier: CacheTier::Miss,
                manifest: true,
                bytes: 50,
            },
        );
        r.on_retry_timer_fired(&meta(), &RetryTimerFired {});
        r.on_chunk_served(
            &meta(),
            &ChunkServed {
                bytes: 100,
                segments: 70,
                serve: SimDuration::from_millis(2),
                first_byte: SimDuration::from_millis(40),
                download: SimDuration::from_millis(300),
            },
        );
        let m = r.metrics();
        assert_eq!(m.segments_sent.get(), 70);
        assert_eq!(m.chunk_ram_hits.get(), 1);
        assert_eq!(m.manifest_misses.get(), 1);
        assert_eq!(m.manifest_requests.get(), 1);
        assert_eq!(m.bytes_served.get(), 150);
        assert_eq!(m.bytes_ram.get(), 100);
        assert_eq!(m.bytes_disk.get(), 0);
        assert_eq!(m.bytes_miss.get(), 50);
        assert_eq!(m.retry_timer_fires.get(), 1);
        assert_eq!(m.chunks_served.get(), 1);
        assert_eq!(m.serve_latency_ns.count(), 1);
        assert!(r.trace_lines().is_empty());
    }

    #[test]
    fn trace_lines_are_json_objects() {
        let mut r = MetricsRecorder::new(true);
        r.on_stall(
            &meta(),
            &Stall {
                count: 2,
                duration: SimDuration::from_millis(500),
            },
        );
        r.on_shard_merge(
            &Meta::fleet(SimTime::ZERO),
            &ShardMerge {
                shard_index: 7,
                pop_index: 4,
                sessions: 10,
                events: 99,
            },
        );
        let lines = r.trace_lines();
        assert_eq!(lines.len(), 2);
        for l in lines {
            let v = Value::parse_json(l).expect("valid json");
            assert!(v.get("at_ns").is_some());
            assert!(v.get("event").is_some());
        }
        assert!(lines[0].contains("Stall"));
        assert!(lines[1].contains("ShardMerge"));
        // Fleet-level event has a null session.
        assert!(lines[1].contains("\"session\":null"));
    }

    #[test]
    fn absorb_merges_metrics_and_appends_trace() {
        let mut a = MetricsRecorder::new(true);
        a.on_rto_timeout(&meta(), &RtoTimeout {});
        let mut b = MetricsRecorder::new(true);
        b.on_rto_timeout(&meta(), &RtoTimeout {});
        b.on_retransmit(&meta(), &Retransmit { segments: 3 });
        a.absorb(b);
        assert_eq!(a.metrics().rto_timeouts.get(), 2);
        assert_eq!(a.metrics().retx_segments.get(), 3);
        assert_eq!(a.trace_lines().len(), 3);
    }
}
