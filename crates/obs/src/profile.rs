//! Wall-clock run profiling — the explicitly **non-deterministic** half
//! of a run's telemetry.
//!
//! Everything here is measured with the host's monotonic clock and varies
//! run to run and with `--threads`; it is kept in a separate struct so
//! the deterministic [`SimMetrics`] block can be
//! serialized alone (that is what `--metrics-out` writes, and what the
//! byte-identity tests compare).

use crate::metrics::SimMetrics;
use serde::{Deserialize, Serialize};

/// Wall-time and throughput profile of one shard's event loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardProfile {
    /// Canonical shard index — the shard's slot in the engine's
    /// (PoP-ascending, then server-ascending) shard order.
    pub shard_index: u64,
    /// PoP index the shard covered (several shards share a PoP when it is
    /// split per server).
    pub pop_index: u64,
    /// Global index of the shard's first server.
    pub first_server: u64,
    /// Servers in the shard: 1 for a per-server shard, the PoP's member
    /// count for a coarse (whole-PoP) shard.
    pub servers: u64,
    /// Sessions the shard ran.
    pub sessions: u64,
    /// Events its event loop processed.
    pub events: u64,
    /// Peak pending-event count in the shard's queue.
    pub peak_queue_depth: u64,
    /// Wall time the shard's event loop took, milliseconds.
    pub wall_ms: f64,
    /// Worker thread that ran the shard job (a steal lands a job on a
    /// different worker than the deal chose).
    pub worker: u64,
    /// Job start, milliseconds after the engine's event-loop epoch — with
    /// `wall_ms` this places the job on its worker's trace lane.
    pub start_ms: f64,
}

/// Work-stealing queue counters for one run: how jobs moved between
/// workers. Timing-dependent (steals happen when a worker goes idle
/// first), so these live on the wall-clock side, never in
/// [`SimMetrics`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SchedulerCounters {
    /// Jobs dealt across the worker deques (the LPT assignment size).
    pub jobs_dealt: u64,
    /// Jobs a worker popped from its own deque.
    pub owner_pops: u64,
    /// Jobs stolen from another worker's deque.
    pub steals: u64,
    /// Steal scans that found every deque empty.
    pub steal_failures: u64,
    /// Worker deques actually spun up (after the per-worker cost-floor
    /// clamp; zero for the sequential engine).
    pub workers: u64,
    /// Workers the cost-floor clamp removed relative to the requested
    /// thread count: non-zero means the fleet was too small to feed every
    /// requested thread profitably.
    pub workers_clamped: u64,
}

/// Wall-clock profile of one run: where the time went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunProfile {
    /// Engine used: `"sequential"` or `"sharded"`.
    pub engine: String,
    /// Worker threads requested.
    pub threads: u64,
    /// World generation + session-runtime setup, milliseconds.
    pub setup_ms: f64,
    /// Event loop(s), wall milliseconds (for the sharded engine this is
    /// the span from first shard start to last shard finish).
    pub event_loop_ms: f64,
    /// Telemetry join + preprocessing + report assembly, milliseconds.
    pub merge_ms: f64,
    /// Events processed per wall second across the whole event loop.
    pub events_per_sec: f64,
    /// Peak pending-event count (global queue for the sequential engine;
    /// maximum over shards for the sharded engine).
    pub peak_queue_depth: u64,
    /// Work-stealing scheduler counters (all zero for the sequential
    /// engine, which has no job queue).
    pub scheduler: SchedulerCounters,
    /// Per-shard breakdown (empty for the sequential engine).
    pub shards: Vec<ShardProfile>,
}

/// Everything a run's self-telemetry produces: the deterministic metrics
/// block plus the wall-clock profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Deterministic, sim-time-keyed metrics (byte-identical at any
    /// thread count; what `--metrics-out` writes).
    pub sim: SimMetrics,
    /// Wall-clock profile (non-deterministic by nature).
    pub profile: RunProfile,
}

impl RunMetrics {
    /// The compact end-of-run summary every `streamlab run` prints,
    /// showing the 8 slowest shards ([`RunMetrics::summary_with`]).
    pub fn summary(&self) -> String {
        self.summary_with(8)
    }

    /// The end-of-run summary with the shard breakdown capped at `shown`
    /// shards (`0` = show all) — the `--summary-shards` knob.
    pub fn summary_with(&self, shown: usize) -> String {
        let s = &self.sim;
        let p = &self.profile;
        let ns_ms = |q: Option<u64>| q.map(|v| v as f64 / 1.0e6).unwrap_or(0.0);
        let mut out = String::new();
        out.push_str(&format!(
            "engine {} ({} threads): {} events in {:.0} ms ({:.0}k events/s), peak queue {}\n",
            p.engine,
            p.threads,
            s.events_processed.get(),
            p.event_loop_ms,
            p.events_per_sec / 1.0e3,
            p.peak_queue_depth,
        ));
        out.push_str(&format!(
            "chunks {} (hit ratio {:.3}: ram {} disk {} miss {}), manifests {}, retry fires {} ({:.1}% of serves)\n",
            s.chunks_served.get(),
            s.chunk_hit_ratio(),
            s.chunk_ram_hits.get(),
            s.chunk_disk_hits.get(),
            s.chunk_misses.get(),
            s.manifest_requests.get(),
            s.retry_timer_fires.get(),
            100.0 * s.retry_ratio(),
        ));
        out.push_str(&format!(
            "tcp: {} segs, retx {} ({:.2}%), rto {}, cwnd resets {} loss / {} idle; stalls {} ({:.1} s); frames dropped {}/{}\n",
            s.segments_sent.get(),
            s.retx_segments.get(),
            100.0 * s.retx_ratio(),
            s.rto_timeouts.get(),
            s.cwnd_resets_loss.get(),
            s.cwnd_resets_idle.get(),
            s.stall_events.get(),
            s.stall_sim_ns.get() as f64 / 1.0e9,
            s.frames_dropped.get(),
            s.frames_rendered.get(),
        ));
        out.push_str(&format!(
            "serve latency p50/p99 {:.1}/{:.1} ms, first byte p50 {:.1} ms; wall: setup {:.0} ms, loop {:.0} ms, merge {:.0} ms\n",
            ns_ms(s.serve_latency_ns.quantile(0.5)),
            ns_ms(s.serve_latency_ns.quantile(0.99)),
            ns_ms(s.first_byte_ns.quantile(0.5)),
            p.setup_ms,
            p.event_loop_ms,
            p.merge_ms,
        ));
        if s.fault_activity() > 0 {
            out.push_str(&format!(
                "faults: {} restarts, {} outage / {} blackout rejections, {} retries, {} failovers, {} emergency switches, {} aborted\n",
                s.server_restarts.get(),
                s.outage_rejections.get(),
                s.blackout_rejections.get(),
                s.request_retries.get(),
                s.failovers.get(),
                s.abr_emergency_switches.get(),
                s.sessions_aborted.get(),
            ));
        }
        if s.loc_sessions_total() > 0 {
            out.push_str(&format!(
                "localization: sessions {} server / {} network / {} stack / {} rendering / {} healthy; rebuffers {}s/{}n/{}c\n",
                s.loc_sessions_server.get(),
                s.loc_sessions_network.get(),
                s.loc_sessions_stack.get(),
                s.loc_sessions_rendering.get(),
                s.loc_sessions_healthy.get(),
                s.loc_rebuffers_server.get(),
                s.loc_rebuffers_network.get(),
                s.loc_rebuffers_stack.get(),
            ));
        }
        if !p.shards.is_empty() {
            // Per-server sharding yields dozens of shards; print the
            // slowest few (the ones that bound wall time) and summarize
            // the rest. `shown == 0` lifts the cap.
            let shown = if shown == 0 { p.shards.len() } else { shown };
            let mut by_wall: Vec<&ShardProfile> = p.shards.iter().collect();
            by_wall.sort_by(|a, b| {
                b.wall_ms
                    .total_cmp(&a.wall_ms)
                    .then(a.shard_index.cmp(&b.shard_index))
            });
            out.push_str("shards:");
            for sh in by_wall.iter().take(shown) {
                if sh.servers == 1 {
                    out.push_str(&format!(
                        " pop{}/srv{} {:.0}ms/{}ev",
                        sh.pop_index, sh.first_server, sh.wall_ms, sh.events
                    ));
                } else {
                    out.push_str(&format!(
                        " pop{} {:.0}ms/{}ev",
                        sh.pop_index, sh.wall_ms, sh.events
                    ));
                }
            }
            if by_wall.len() > shown {
                out.push_str(&format!(" (+{} more)", by_wall.len() - shown));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let mut sim = SimMetrics::default();
        sim.chunks_served.add(1234);
        sim.chunk_ram_hits.add(1000);
        sim.chunk_misses.add(234);
        sim.events_processed.add(5000);
        let m = RunMetrics {
            sim,
            profile: RunProfile {
                engine: "sharded".into(),
                threads: 4,
                setup_ms: 12.0,
                event_loop_ms: 340.0,
                merge_ms: 8.0,
                events_per_sec: 14_705.0,
                peak_queue_depth: 77,
                scheduler: SchedulerCounters {
                    jobs_dealt: 2,
                    owner_pops: 1,
                    steals: 1,
                    steal_failures: 3,
                    workers: 2,
                    workers_clamped: 0,
                },
                shards: vec![
                    ShardProfile {
                        shard_index: 0,
                        pop_index: 0,
                        first_server: 0,
                        servers: 2,
                        sessions: 60,
                        events: 5000,
                        peak_queue_depth: 77,
                        wall_ms: 340.0,
                        worker: 0,
                        start_ms: 0.0,
                    },
                    ShardProfile {
                        shard_index: 1,
                        pop_index: 1,
                        first_server: 7,
                        servers: 1,
                        sessions: 12,
                        events: 900,
                        peak_queue_depth: 9,
                        wall_ms: 40.0,
                        worker: 1,
                        start_ms: 2.5,
                    },
                ],
            },
        };
        let text = m.summary();
        assert!(text.contains("1234"));
        assert!(text.contains("sharded"));
        // Coarse shards print their PoP; fine shards name their server.
        assert!(text.contains("pop0"));
        assert!(text.contains("pop1/srv7"));
    }

    #[test]
    fn summary_caps_the_shard_breakdown() {
        let shards: Vec<ShardProfile> = (0..20)
            .map(|i| ShardProfile {
                shard_index: i,
                pop_index: i / 2,
                first_server: i,
                servers: 1,
                sessions: 5,
                events: 100,
                peak_queue_depth: 3,
                wall_ms: i as f64,
                worker: i % 4,
                start_ms: 0.0,
            })
            .collect();
        let m = RunMetrics {
            sim: SimMetrics::default(),
            profile: RunProfile {
                engine: "sharded".into(),
                threads: 4,
                setup_ms: 1.0,
                event_loop_ms: 2.0,
                merge_ms: 3.0,
                events_per_sec: 0.0,
                peak_queue_depth: 3,
                scheduler: SchedulerCounters::default(),
                shards,
            },
        };
        let text = m.summary();
        assert!(text.contains("(+12 more)"), "summary: {text}");
        // The slowest shard (19) is shown, the fastest (0) elided.
        assert!(text.contains("srv19"));
        assert!(!text.contains("srv0 "));
    }

    #[test]
    fn run_metrics_serialize() {
        let m = RunMetrics {
            sim: SimMetrics::default(),
            profile: RunProfile {
                engine: "sequential".into(),
                threads: 1,
                setup_ms: 1.0,
                event_loop_ms: 2.0,
                merge_ms: 3.0,
                events_per_sec: 0.0,
                peak_queue_depth: 0,
                scheduler: SchedulerCounters::default(),
                shards: Vec::new(),
            },
        };
        let v = serde::Serialize::to_value(&m);
        assert!(v.get("sim").is_some());
        assert!(v.get("profile").is_some());
    }
}
