//! OpenMetrics text exporter (`--metrics-format openmetrics`).
//!
//! Renders the run's metrics in the OpenMetrics text exposition format so
//! long-running `sweep` (and a future `serve`) runs scrape cleanly into
//! Prometheus-family tooling. Layout:
//!
//! 1. every numeric [`SimMetrics`] field as a `counter` (deterministic —
//!    the same byte-identity contract as the JSON block),
//! 2. the four latency histograms as `summary` quantiles,
//! 3. when a [`RunProfile`] is supplied, the wall-clock phase gauges and
//!    the scheduler counters — explicitly non-deterministic, flagged as
//!    such in their HELP text,
//! 4. the mandatory `# EOF` terminator.
//!
//! Field names come from the serialized [`SimMetrics`] map itself, so a
//! counter added to the struct shows up here without touching this file.

use crate::metrics::{LogLinearHistogram, SimMetrics};
use crate::profile::RunProfile;
use serde::Serialize;
use std::fmt::Write as _;

const PREFIX: &str = "streamlab";
const QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

fn histogram_summary(out: &mut String, name: &str, h: &LogLinearHistogram) {
    let _ = writeln!(out, "# TYPE {PREFIX}_{name} summary");
    for q in QUANTILES {
        let _ = writeln!(
            out,
            "{PREFIX}_{name}{{quantile=\"{q}\"}} {}",
            h.quantile(q).unwrap_or(0)
        );
    }
    let _ = writeln!(out, "{PREFIX}_{name}_count {}", h.count());
}

/// Render `sim` (and, when given, the wall-clock `profile`) as an
/// OpenMetrics text exposition, `# EOF` included.
pub fn render(sim: &SimMetrics, profile: Option<&RunProfile>) -> String {
    let mut out = String::new();
    // Counters: walk the serialized map so the field list can never
    // drift from the struct. Histograms serialize as arrays and are
    // handled below.
    let value = sim.to_value();
    let fields = value.as_object().expect("SimMetrics serializes as a map");
    for (key, v) in fields.iter() {
        if let Some(n) = v.as_u64() {
            let _ = writeln!(out, "# TYPE {PREFIX}_{key} counter");
            let _ = writeln!(out, "{PREFIX}_{key}_total {n}");
        }
    }
    histogram_summary(&mut out, "serve_latency_ns", &sim.serve_latency_ns);
    histogram_summary(&mut out, "first_byte_ns", &sim.first_byte_ns);
    histogram_summary(&mut out, "download_ns", &sim.download_ns);
    histogram_summary(&mut out, "retry_backoff_ns", &sim.retry_backoff_ns);
    if let Some(p) = profile {
        let _ = writeln!(
            out,
            "# HELP {PREFIX}_run_info wall-clock engine facts; non-deterministic"
        );
        let _ = writeln!(out, "# TYPE {PREFIX}_run_info gauge");
        let _ = writeln!(
            out,
            "{PREFIX}_run_info{{engine=\"{}\",threads=\"{}\"}} 1",
            p.engine, p.threads
        );
        for (name, v) in [
            ("wall_setup_ms", p.setup_ms),
            ("wall_event_loop_ms", p.event_loop_ms),
            ("wall_merge_ms", p.merge_ms),
            ("events_per_sec", p.events_per_sec),
        ] {
            let _ = writeln!(out, "# HELP {PREFIX}_{name} wall-clock; non-deterministic");
            let _ = writeln!(out, "# TYPE {PREFIX}_{name} gauge");
            let _ = writeln!(out, "{PREFIX}_{name} {v}");
        }
        let _ = writeln!(out, "# TYPE {PREFIX}_peak_queue_depth gauge");
        let _ = writeln!(out, "{PREFIX}_peak_queue_depth {}", p.peak_queue_depth);
        let s = &p.scheduler;
        for (name, v) in [
            ("sched_jobs_dealt", s.jobs_dealt),
            ("sched_owner_pops", s.owner_pops),
            ("sched_steals", s.steals),
            ("sched_steal_failures", s.steal_failures),
            ("sched_workers", s.workers),
            ("sched_workers_clamped", s.workers_clamped),
        ] {
            let _ = writeln!(
                out,
                "# HELP {PREFIX}_{name} work-stealing scheduler; timing-dependent"
            );
            let _ = writeln!(out, "# TYPE {PREFIX}_{name} counter");
            let _ = writeln!(out, "{PREFIX}_{name}_total {v}");
        }
    }
    out.push_str("# EOF\n");
    out
}

/// One sample in a free-form exposition: `(metric name, HELP text, value)`.
/// The name is suffixed per OpenMetrics conventions by the renderer
/// (`_total` for counters, bare for gauges) and prefixed with
/// `streamlab_`.
pub type Sample<'a> = (&'a str, &'a str, u64);

/// Render a free-form set of counters and gauges as an OpenMetrics text
/// exposition, `# EOF` included — the job-level metrics endpoint of the
/// `streamlab serve` daemon (`GET /metrics`). Unlike [`render`], which
/// walks a [`SimMetrics`] block, this takes explicit samples so a daemon
/// can expose queue/job/admission state without the service layer
/// depending on the simulator's metric types.
pub fn render_exposition(counters: &[Sample<'_>], gauges: &[Sample<'_>]) -> String {
    let mut out = String::new();
    for (name, help, value) in counters {
        let _ = writeln!(out, "# HELP {PREFIX}_{name} {help}");
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} counter");
        let _ = writeln!(out, "{PREFIX}_{name}_total {value}");
    }
    for (name, help, value) in gauges {
        let _ = writeln!(out, "# HELP {PREFIX}_{name} {help}");
        let _ = writeln!(out, "# TYPE {PREFIX}_{name} gauge");
        let _ = writeln!(out, "{PREFIX}_{name} {value}");
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SchedulerCounters;

    #[test]
    fn sim_counters_and_quantiles_render() {
        let mut sim = SimMetrics::default();
        sim.chunks_served.add(42);
        sim.loc_rebuffers_network.add(3);
        sim.serve_latency_ns.record(1_000_000);
        let text = render(&sim, None);
        assert!(text.contains("# TYPE streamlab_chunks_served counter"));
        assert!(text.contains("streamlab_chunks_served_total 42"));
        assert!(text.contains("streamlab_loc_rebuffers_network_total 3"));
        assert!(text.contains("streamlab_serve_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("streamlab_serve_latency_ns_count 1"));
        assert!(text.ends_with("# EOF\n"));
        // Without a profile, nothing wall-clock leaks in.
        assert!(!text.contains("run_info"));
        assert!(!text.contains("sched_"));
    }

    #[test]
    fn free_form_exposition_renders_counters_and_gauges() {
        let text = render_exposition(
            &[("jobs_completed", "jobs run to completion", 7)],
            &[("queue_depth", "jobs waiting for a worker", 2)],
        );
        assert!(text.contains("# TYPE streamlab_jobs_completed counter"));
        assert!(text.contains("streamlab_jobs_completed_total 7"));
        assert!(text.contains("# TYPE streamlab_queue_depth gauge"));
        assert!(text.contains("streamlab_queue_depth 2"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn profile_section_is_flagged_non_deterministic() {
        let sim = SimMetrics::default();
        let profile = RunProfile {
            engine: "sharded".into(),
            threads: 4,
            setup_ms: 10.0,
            event_loop_ms: 200.0,
            merge_ms: 5.0,
            events_per_sec: 1000.0,
            peak_queue_depth: 9,
            scheduler: SchedulerCounters {
                jobs_dealt: 12,
                owner_pops: 10,
                steals: 2,
                steal_failures: 5,
                workers: 4,
                workers_clamped: 0,
            },
            shards: Vec::new(),
        };
        let text = render(&sim, Some(&profile));
        assert!(text.contains("streamlab_run_info{engine=\"sharded\",threads=\"4\"} 1"));
        assert!(text.contains("streamlab_sched_steals_total 2"));
        assert!(text.contains("non-deterministic"));
        let eof_at = text.find("# EOF").expect("terminator");
        assert_eq!(eof_at + 6, text.len(), "# EOF must be last");
    }
}
