//! Deterministic sim-time spans: the causal skeleton of a run.
//!
//! A span is a named interval on the **simulation clock** with a parent
//! id, mirroring the paper's per-chunk instrumentation: every session
//! owns a lane of `session → chunk → {cache_lookup, net_transfer,
//! render}` intervals, so one chunk can be followed from the CDN cache
//! through the TCP transfer into the player.
//!
//! Spans are collected per shard as they happen, concatenated in
//! canonical shard order, and then [`canonicalize`]d — sorted by
//! `(session, chunk, kind)` and re-numbered with parents assigned — so
//! the serialized stream is **byte-identical at any `--threads` value**.
//! The sharded engine interleaves sessions differently than the
//! sequential one, but the canonical order is a pure function of the
//! simulated timeline, which `tests/trace_spans.rs` pins down. Wall-clock
//! intervals are deliberately a different type
//! ([`crate::trace_writer::WallTrace`]); the two clocks never mix.

use serde::Serialize;

/// What a sim-time span covers. The declaration order is the canonical
/// sort order within one chunk (parents sort before children).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum SpanKind {
    /// A whole session: arrival to last rendered byte (or abort).
    Session,
    /// One chunk end to end: request to player-last-byte.
    Chunk,
    /// The server-side serve (`D_wait + D_open + D_read`), placed after
    /// the request's uplink propagation.
    CacheLookup,
    /// The TCP transfer: server send start to last byte off the wire.
    NetTransfer,
    /// The client tail: last network byte through the download stack to
    /// player-last-byte (decode/render hand-off).
    Render,
}

/// One interval on the simulation clock. `id`/`parent` are assigned by
/// [`canonicalize`]; raw spans carry `id == 0` and `parent == None`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimSpan {
    /// Span id, 1-based in canonical order (0 = not yet canonicalized).
    pub id: u64,
    /// Enclosing span's id (`None` for session spans).
    pub parent: Option<u64>,
    /// Session the span belongs to.
    pub session: u64,
    /// Chunk index within the session (`None` for the session span).
    pub chunk: Option<u32>,
    /// What the interval covers.
    pub kind: SpanKind,
    /// Start, sim-time nanoseconds.
    pub start_ns: u64,
    /// End, sim-time nanoseconds (`>= start_ns`).
    pub end_ns: u64,
}

/// Sort spans into canonical order and assign ids and parents.
///
/// The order is `(session, chunk, kind)` with the session span first
/// (chunk `None` sorts before chunk `Some(0)`), i.e. a depth-first
/// pre-order walk of each session's tree: parents always precede their
/// children, which both the Chrome-trace writer and the byte-identity
/// contract rely on. Ids are 1-based positions in that order, so the
/// result is a pure function of the span *set* — independent of the
/// shard interleaving that produced it.
pub fn canonicalize(spans: &mut [SimSpan]) {
    spans.sort_by_key(|s| {
        (
            s.session,
            s.chunk.map(|c| u64::from(c) + 1).unwrap_or(0),
            s.kind,
            s.start_ns,
        )
    });
    let mut session_span: Option<(u64, u64)> = None; // (session, id)
    let mut chunk_span: Option<(u64, u32, u64)> = None; // (session, chunk, id)
    for (i, s) in spans.iter_mut().enumerate() {
        s.id = i as u64 + 1;
        match (s.kind, s.chunk) {
            (SpanKind::Session, _) => {
                session_span = Some((s.session, s.id));
                chunk_span = None;
                s.parent = None;
            }
            (SpanKind::Chunk, Some(c)) => {
                chunk_span = Some((s.session, c, s.id));
                s.parent = match session_span {
                    Some((sess, id)) if sess == s.session => Some(id),
                    _ => None,
                };
            }
            (_, chunk) => {
                s.parent = match (chunk_span, chunk) {
                    (Some((sess, c, id)), Some(mine)) if sess == s.session && c == mine => Some(id),
                    _ => None,
                };
            }
        }
    }
}

/// Serialize a canonicalized span list as JSONL, one span per line.
///
/// This is the byte-compared determinism artifact: the same seed must
/// yield the same string at any thread count.
pub fn to_jsonl(spans: &[SimSpan]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_value().to_json_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(session: u64, chunk: Option<u32>, kind: SpanKind, start: u64, end: u64) -> SimSpan {
        SimSpan {
            id: 0,
            parent: None,
            session,
            chunk,
            kind,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn canonical_order_is_a_pure_function_of_the_span_set() {
        let mut a = vec![
            raw(2, Some(0), SpanKind::Chunk, 10, 20),
            raw(1, None, SpanKind::Session, 0, 30),
            raw(2, Some(0), SpanKind::NetTransfer, 12, 18),
            raw(1, Some(0), SpanKind::Chunk, 1, 15),
            raw(2, None, SpanKind::Session, 5, 25),
            raw(2, Some(0), SpanKind::CacheLookup, 10, 12),
        ];
        let mut b = a.clone();
        b.reverse(); // a different shard interleaving
        canonicalize(&mut a);
        canonicalize(&mut b);
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        // Session span leads its session, chunk follows, phases last.
        let kinds: Vec<SpanKind> = a.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Session,
                SpanKind::Chunk,
                SpanKind::Session,
                SpanKind::Chunk,
                SpanKind::CacheLookup,
                SpanKind::NetTransfer,
            ]
        );
    }

    #[test]
    fn parents_point_at_the_enclosing_span() {
        let mut spans = vec![
            raw(7, None, SpanKind::Session, 0, 100),
            raw(7, Some(0), SpanKind::Chunk, 5, 50),
            raw(7, Some(0), SpanKind::CacheLookup, 6, 10),
            raw(7, Some(0), SpanKind::NetTransfer, 10, 40),
            raw(7, Some(0), SpanKind::Render, 40, 50),
            raw(7, Some(1), SpanKind::Chunk, 50, 90),
            raw(7, Some(1), SpanKind::Render, 80, 90),
        ];
        canonicalize(&mut spans);
        let by_kind = |k: SpanKind, c: Option<u32>| {
            spans
                .iter()
                .find(|s| s.kind == k && s.chunk == c)
                .copied()
                .unwrap()
        };
        let session = by_kind(SpanKind::Session, None);
        let chunk0 = by_kind(SpanKind::Chunk, Some(0));
        let chunk1 = by_kind(SpanKind::Chunk, Some(1));
        assert_eq!(session.parent, None);
        assert_eq!(chunk0.parent, Some(session.id));
        assert_eq!(chunk1.parent, Some(session.id));
        assert_eq!(
            by_kind(SpanKind::CacheLookup, Some(0)).parent,
            Some(chunk0.id)
        );
        assert_eq!(by_kind(SpanKind::Render, Some(1)).parent, Some(chunk1.id));
        // Ids are 1-based positions: parents always precede children.
        for s in &spans {
            if let Some(p) = s.parent {
                assert!(p < s.id, "parent {p} not before child {}", s.id);
            }
        }
    }

    #[test]
    fn orphan_chunks_survive_without_a_session_span() {
        // A shard cancelled mid-run can leave chunk spans whose session
        // span was never closed; they must not inherit a stale parent.
        let mut spans = vec![
            raw(1, None, SpanKind::Session, 0, 10),
            raw(2, Some(0), SpanKind::Chunk, 3, 9),
        ];
        canonicalize(&mut spans);
        assert_eq!(spans[1].session, 2);
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut spans = vec![raw(3, Some(2), SpanKind::Chunk, 1, 2)];
        canonicalize(&mut spans);
        let text = to_jsonl(&spans);
        assert_eq!(text.lines().count(), 1);
        let v = serde::Value::parse_json(text.lines().next().unwrap()).expect("valid json");
        assert_eq!(v.get("session").and_then(|s| s.as_u64()), Some(3));
        assert!(text.contains("\"Chunk\""), "{text}");
    }
}
