//! # streamlab-obs
//!
//! The simulator's self-telemetry substrate: typed simulation events with
//! an s2n-quic-style [`Subscriber`] trait, deterministic metric primitives
//! (counters, gauges, a log-linear latency histogram), and wall-clock run
//! profiling.
//!
//! The paper's whole method is instrumentation — per-chunk records from
//! both vantage points joined into one dataset (§2.2) — and this crate
//! gives the simulator that *generates* the dataset the same treatment:
//!
//! * [`event`] — one struct per simulation event (cache lookups, retry
//!   timer fires, TCP retransmits, stalls, …) plus the [`Subscriber`]
//!   trait. Every `on_*` method has an inlined no-op default, so the
//!   instrumented hot paths compile down to nothing when driven with
//!   [`NoopSubscriber`] — probes are free unless someone listens.
//! * [`metrics`] — [`SimMetrics`], the *deterministic* half of a run's
//!   telemetry: integer counters and fixed-bucket histograms keyed to
//!   sim-time quantities only. Collected per shard and merged in canonical
//!   shard order, its serialized form is byte-identical at any thread
//!   count.
//! * [`profile`] — [`RunProfile`], the *non-deterministic* half:
//!   wall-clock spans (setup / event loop / merge), per-shard wall times,
//!   and event-loop throughput. Wall-clock readings never appear anywhere
//!   else.
//! * [`recorder`] — [`MetricsRecorder`], the built-in subscriber that
//!   folds events into [`SimMetrics`], optionally buffers a JSONL
//!   structured trace and sim-time spans, and runs the localization pass
//!   online.
//! * [`span`] — deterministic sim-time [`SimSpan`]s (`session → chunk →
//!   {cache_lookup, net_transfer, render}`), canonicalized so the stream
//!   is byte-identical at any thread count.
//! * [`trace_writer`] — Chrome Trace Event Format export for
//!   `--trace-out`: sim-time span lanes plus wall-clock [`WallTrace`]
//!   engine lanes, loadable in Perfetto.
//! * [`diagnose`] — the paper's problem-localization taxonomy
//!   ([`ProblemClass`]): every rebuffer, abort and session attributed to
//!   the CDN server, the network path, the client download stack or the
//!   rendering path.
//! * [`openmetrics`] — OpenMetrics text exposition of the metrics
//!   (`--metrics-format openmetrics`).
//! * [`heartbeat`] — [`ProgressCell`], a lock-free per-shard liveness
//!   slot (events popped, current sim-time, cancel flag) that the run
//!   supervisor's watchdog polls to detect stalled shards.
//! * [`storage`] — [`storage::StorageFaultSnapshot`], the canonical
//!   names for injected-storage-fault counters exported by every
//!   OpenMetrics exposition path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diagnose;
pub mod event;
pub mod heartbeat;
pub mod metrics;
pub mod openmetrics;
pub mod profile;
pub mod recorder;
pub mod span;
pub mod storage;
pub mod trace_writer;

pub use diagnose::{
    classify_abort, classify_session, ChunkBreakdown, ProblemClass, RebufferShares, SessionLens,
};
pub use event::{
    AbrEmergency, CacheLookup, CacheTier, ChunkRendered, ChunkServed, CwndReset, FailReason,
    Failover, Meta, NoopSubscriber, RequestFailed, ResetReason, Retransmit, RetryTimerFired,
    RtoTimeout, ServerRestarted, SessionAborted, SessionEnd, SessionStart, ShardMerge,
    ShardStalled, Stall, Subscriber,
};
pub use heartbeat::{ProgressCell, ProgressSnapshot, ShardState};
pub use metrics::{Counter, Gauge, LogLinearHistogram, SimMetrics};
pub use profile::{RunMetrics, RunProfile, SchedulerCounters, ShardProfile};
pub use recorder::MetricsRecorder;
pub use span::{canonicalize, SimSpan, SpanKind};
pub use trace_writer::{
    render_chrome_trace, WallCounter, WallInstant, WallSpan, WallTrace, SIM_PID, WALL_PID,
};
