//! Deterministic metric primitives and the merged run metrics block.
//!
//! Everything in this module is a pure function of simulation events —
//! integers keyed to sim-time quantities. Shards accumulate their own
//! [`SimMetrics`] and the orchestrator merges them in canonical shard
//! order, so the serialized block is **byte-identical at any thread
//! count** (see DESIGN.md §10 for the argument). Wall-clock readings are
//! banned here; they live in [`crate::profile`].

use serde::{Deserialize, Error, Serialize, Value};

/// A monotonically increasing event count. Serializes as a bare number.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Fold another shard's count in (addition — associative and
    /// commutative, so merge order cannot matter).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

/// A last/extreme-value metric. Serializes as a bare number.
///
/// The only merge offered is `merge_max`, because "peak across shards" is
/// the one gauge combination that stays order-independent; a last-writer
/// merge would depend on shard order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gauge(pub u64);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&mut self, v: u64) {
        self.0 = v;
    }

    /// Raise the gauge to `v` if larger (peak tracking).
    #[inline]
    pub fn set_max(&mut self, v: u64) {
        if v > self.0 {
            self.0 = v;
        }
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Fold another shard's gauge in, keeping the maximum.
    pub fn merge_max(&mut self, other: Gauge) {
        self.set_max(other.0);
    }
}

/// Sub-buckets per power of two: 8 linear buckets each, giving ≤ 12.5 %
/// relative bucket width everywhere.
const SUB: u64 = 8;
/// Bucket count covering the full `u64` range at 8 sub-buckets per power
/// of two: values below 8 get exact buckets, then `(63 - 2)` octaves × 8.
const BUCKETS: usize = 496;

/// A fixed-bucket log-linear histogram (HdrHistogram-style).
///
/// Values are bucketed exactly below `SUB` (8) and into 8 linear sub-buckets
/// per power of two above it. The bucket layout is *fixed* — independent
/// of the values recorded — so merging is element-wise bucket addition:
/// associative, commutative, and therefore independent of shard merge
/// order (property-tested in `tests/histogram_props.rs`).
///
/// Serializes sparsely as an ascending array of `[bucket_index, count]`
/// pairs, which keeps the JSON stable and small.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogLinearHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogLinearHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
        }
    }

    /// Bucket index for `v`.
    fn index(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        // 2^exp <= v < 2^(exp+1), exp >= 3.
        let exp = 63 - v.leading_zeros() as u64;
        let sub = (v >> (exp - 3)) & (SUB - 1);
        ((exp - 2) * SUB + sub) as usize
    }

    /// Inclusive lower bound of bucket `i` (its representative value).
    fn lower_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB {
            return i;
        }
        let group = i / SUB; // >= 1
        let sub = i % SUB;
        let exp = group + 2;
        (SUB + sub) << (exp - 3)
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram in (element-wise bucket addition).
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Approximate quantile (`q` in `[0, 1]`): the lower bound of the
    /// bucket holding the `q`-th recorded value, or `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::lower_bound(i));
            }
        }
        Some(Self::lower_bound(BUCKETS - 1))
    }

    /// Mean of the bucket lower bounds weighted by count (an
    /// underestimate of the true mean by at most the bucket width).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * Self::lower_bound(i) as f64)
            .sum();
        sum / self.count as f64
    }
}

impl Serialize for LogLinearHistogram {
    fn to_value(&self) -> Value {
        let pairs: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Array(vec![(i as u64).to_value(), c.to_value()]))
            .collect();
        Value::Array(pairs)
    }
}

impl Deserialize for LogLinearHistogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs = v
            .as_array()
            .ok_or_else(|| Error::msg("histogram: expected array of [index, count] pairs"))?;
        let mut h = LogLinearHistogram::new();
        for p in pairs {
            let pair = p
                .as_array()
                .ok_or_else(|| Error::msg("histogram: expected [index, count] pair"))?;
            if pair.len() != 2 {
                return Err(Error::msg("histogram: pair must have exactly two elements"));
            }
            let i = u64::from_value(&pair[0])? as usize;
            let c = u64::from_value(&pair[1])?;
            if i >= BUCKETS {
                return Err(Error::msg(format!(
                    "histogram: bucket index {i} out of range"
                )));
            }
            h.buckets[i] += c;
            h.count += c;
        }
        Ok(h)
    }
}

/// The deterministic metrics block of one run (or one shard, before
/// merging). All fields are sim-time-keyed integers; serialized output is
/// byte-identical at any `--threads` value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Sessions whose first chunk request was processed.
    pub sessions_started: Counter,
    /// Sessions that finished (exhausted chunks or abandoned).
    pub sessions_ended: Counter,
    /// Media chunks served end to end.
    pub chunks_served: Counter,
    /// Manifest requests served.
    pub manifest_requests: Counter,
    /// Bytes served by the fleet (chunks + manifests).
    pub bytes_served: Counter,
    /// Bytes of lookups satisfied by the RAM tier (chunks + manifests).
    pub bytes_ram: Counter,
    /// Bytes of lookups satisfied by the disk tier (chunks + manifests).
    pub bytes_disk: Counter,
    /// Bytes of lookups that missed to the backend (chunks + manifests).
    pub bytes_miss: Counter,
    /// Engine events processed (queue pops, summed over shards).
    pub events_processed: Counter,
    /// Chunk lookups satisfied by the RAM tier.
    pub chunk_ram_hits: Counter,
    /// Chunk lookups satisfied by the disk tier.
    pub chunk_disk_hits: Counter,
    /// Chunk lookups that missed to the backend.
    pub chunk_misses: Counter,
    /// Manifest lookups satisfied by the RAM tier.
    pub manifest_ram_hits: Counter,
    /// Manifest lookups satisfied by the disk tier.
    pub manifest_disk_hits: Counter,
    /// Manifest lookups that missed to the backend.
    pub manifest_misses: Counter,
    /// ATS open-read retry timer fires (all serves).
    pub retry_timer_fires: Counter,
    /// Disk-tier objects promoted to RAM on a disk hit.
    pub cache_promotions: Counter,
    /// RAM-tier victims demoted to disk.
    pub cache_demotions: Counter,
    /// Backend fills admitted into the cache (serve path only).
    pub cache_fills: Counter,
    /// Objects evicted from the disk tier outright.
    pub cache_disk_evictions: Counter,
    /// TCP segments sent.
    pub segments_sent: Counter,
    /// TCP segments retransmitted.
    pub retx_segments: Counter,
    /// Retransmission timeouts.
    pub rto_timeouts: Counter,
    /// Congestion-window collapses caused by an RTO.
    pub cwnd_resets_loss: Counter,
    /// Congestion-window collapses caused by idle restart.
    pub cwnd_resets_idle: Counter,
    /// Rebuffering events.
    pub stall_events: Counter,
    /// Total stall duration, sim-time nanoseconds.
    pub stall_sim_ns: Counter,
    /// Frames carried by all rendered chunks.
    pub frames_rendered: Counter,
    /// Frames dropped.
    pub frames_dropped: Counter,
    /// Injected server restarts applied (RAM cache wiped).
    pub server_restarts: Counter,
    /// Chunk requests rejected by a server/PoP outage window.
    pub outage_rejections: Counter,
    /// Chunk requests rejected by a network blackout window.
    pub blackout_rejections: Counter,
    /// Chunk request retries scheduled (== failed attempts).
    pub request_retries: Counter,
    /// Same-PoP server failovers performed by sessions.
    pub failovers: Counter,
    /// ABR emergency down-switches (retries ate the buffer).
    pub abr_emergency_switches: Counter,
    /// Sessions aborted after exhausting their per-chunk retry budget.
    pub sessions_aborted: Counter,
    /// Rebuffers localized to the CDN server (serve latency dominated the
    /// stalled chunk). The three `loc_rebuffers_*` counters partition
    /// `stall_events` (audited invariant).
    pub loc_rebuffers_server: Counter,
    /// Rebuffers localized to the network path (transfer time dominated).
    pub loc_rebuffers_network: Counter,
    /// Rebuffers localized to the client download stack (`D_DS`
    /// buffering dominated).
    pub loc_rebuffers_stack: Counter,
    /// Session aborts whose terminal failure was a server/PoP outage.
    /// With `loc_aborts_network` this partitions `sessions_aborted`.
    pub loc_aborts_server: Counter,
    /// Session aborts whose terminal failure was a network blackout.
    pub loc_aborts_network: Counter,
    /// Sessions whose final diagnosis was the CDN server. The five
    /// `loc_sessions_*` counters partition `sessions_ended`.
    pub loc_sessions_server: Counter,
    /// Sessions whose final diagnosis was the network path.
    pub loc_sessions_network: Counter,
    /// Sessions whose final diagnosis was the client download stack.
    pub loc_sessions_stack: Counter,
    /// Sessions whose final diagnosis was the rendering path (dropped
    /// frames without stalls or aborts).
    pub loc_sessions_rendering: Counter,
    /// Sessions that finished without an attributable impairment.
    pub loc_sessions_healthy: Counter,
    /// Total server-side serve latency per chunk, nanoseconds.
    pub serve_latency_ns: LogLinearHistogram,
    /// Request → player first byte (`D_FB`) per chunk, nanoseconds.
    pub first_byte_ns: LogLinearHistogram,
    /// Player first → last byte (`D_LB`) per chunk, nanoseconds.
    pub download_ns: LogLinearHistogram,
    /// Retry delay (timeout + backoff) per failed attempt, nanoseconds.
    pub retry_backoff_ns: LogLinearHistogram,
}

impl SimMetrics {
    /// Fold another shard's metrics in. Every field merges with an
    /// associative, commutative operation (addition), so the result is
    /// independent of shard count and merge order — the determinism
    /// contract the byte-identity tests pin down.
    pub fn merge(&mut self, other: &SimMetrics) {
        self.sessions_started.merge(other.sessions_started);
        self.sessions_ended.merge(other.sessions_ended);
        self.chunks_served.merge(other.chunks_served);
        self.manifest_requests.merge(other.manifest_requests);
        self.bytes_served.merge(other.bytes_served);
        self.bytes_ram.merge(other.bytes_ram);
        self.bytes_disk.merge(other.bytes_disk);
        self.bytes_miss.merge(other.bytes_miss);
        self.events_processed.merge(other.events_processed);
        self.chunk_ram_hits.merge(other.chunk_ram_hits);
        self.chunk_disk_hits.merge(other.chunk_disk_hits);
        self.chunk_misses.merge(other.chunk_misses);
        self.manifest_ram_hits.merge(other.manifest_ram_hits);
        self.manifest_disk_hits.merge(other.manifest_disk_hits);
        self.manifest_misses.merge(other.manifest_misses);
        self.retry_timer_fires.merge(other.retry_timer_fires);
        self.cache_promotions.merge(other.cache_promotions);
        self.cache_demotions.merge(other.cache_demotions);
        self.cache_fills.merge(other.cache_fills);
        self.cache_disk_evictions.merge(other.cache_disk_evictions);
        self.segments_sent.merge(other.segments_sent);
        self.retx_segments.merge(other.retx_segments);
        self.rto_timeouts.merge(other.rto_timeouts);
        self.cwnd_resets_loss.merge(other.cwnd_resets_loss);
        self.cwnd_resets_idle.merge(other.cwnd_resets_idle);
        self.stall_events.merge(other.stall_events);
        self.stall_sim_ns.merge(other.stall_sim_ns);
        self.frames_rendered.merge(other.frames_rendered);
        self.frames_dropped.merge(other.frames_dropped);
        self.server_restarts.merge(other.server_restarts);
        self.outage_rejections.merge(other.outage_rejections);
        self.blackout_rejections.merge(other.blackout_rejections);
        self.request_retries.merge(other.request_retries);
        self.failovers.merge(other.failovers);
        self.abr_emergency_switches
            .merge(other.abr_emergency_switches);
        self.sessions_aborted.merge(other.sessions_aborted);
        self.loc_rebuffers_server.merge(other.loc_rebuffers_server);
        self.loc_rebuffers_network
            .merge(other.loc_rebuffers_network);
        self.loc_rebuffers_stack.merge(other.loc_rebuffers_stack);
        self.loc_aborts_server.merge(other.loc_aborts_server);
        self.loc_aborts_network.merge(other.loc_aborts_network);
        self.loc_sessions_server.merge(other.loc_sessions_server);
        self.loc_sessions_network.merge(other.loc_sessions_network);
        self.loc_sessions_stack.merge(other.loc_sessions_stack);
        self.loc_sessions_rendering
            .merge(other.loc_sessions_rendering);
        self.loc_sessions_healthy.merge(other.loc_sessions_healthy);
        self.serve_latency_ns.merge(&other.serve_latency_ns);
        self.first_byte_ns.merge(&other.first_byte_ns);
        self.download_ns.merge(&other.download_ns);
        self.retry_backoff_ns.merge(&other.retry_backoff_ns);
    }

    /// Chunk serves (hits + misses).
    pub fn chunk_lookups(&self) -> u64 {
        self.chunk_ram_hits.get() + self.chunk_disk_hits.get() + self.chunk_misses.get()
    }

    /// Fraction of chunk lookups served without the backend.
    pub fn chunk_hit_ratio(&self) -> f64 {
        let total = self.chunk_lookups();
        if total == 0 {
            0.0
        } else {
            (self.chunk_ram_hits.get() + self.chunk_disk_hits.get()) as f64 / total as f64
        }
    }

    /// Fraction of sent segments that were retransmitted.
    pub fn retx_ratio(&self) -> f64 {
        let sent = self.segments_sent.get();
        if sent == 0 {
            0.0
        } else {
            self.retx_segments.get() as f64 / sent as f64
        }
    }

    /// Fraction of serves (chunks + manifests) on which the retry timer
    /// fired.
    pub fn retry_ratio(&self) -> f64 {
        let serves = self.chunk_lookups()
            + self.manifest_ram_hits.get()
            + self.manifest_disk_hits.get()
            + self.manifest_misses.get();
        if serves == 0 {
            0.0
        } else {
            self.retry_timer_fires.get() as f64 / serves as f64
        }
    }

    /// Sum of the per-class rebuffer localization counters; the auditor
    /// checks it equals `stall_events`.
    pub fn loc_rebuffers_total(&self) -> u64 {
        self.loc_rebuffers_server.get()
            + self.loc_rebuffers_network.get()
            + self.loc_rebuffers_stack.get()
    }

    /// Sum of the per-class abort localization counters; the auditor
    /// checks it equals `sessions_aborted`.
    pub fn loc_aborts_total(&self) -> u64 {
        self.loc_aborts_server.get() + self.loc_aborts_network.get()
    }

    /// Sum of the per-class session diagnoses; the auditor checks it
    /// equals `sessions_ended`.
    pub fn loc_sessions_total(&self) -> u64 {
        self.loc_sessions_server.get()
            + self.loc_sessions_network.get()
            + self.loc_sessions_stack.get()
            + self.loc_sessions_rendering.get()
            + self.loc_sessions_healthy.get()
    }

    /// Total injected-fault / resilience activity; zero for an unfaulted
    /// run (used to decide whether summaries print a faults line).
    pub fn fault_activity(&self) -> u64 {
        self.server_restarts.get()
            + self.outage_rejections.get()
            + self.blackout_rejections.get()
            + self.request_retries.get()
            + self.failovers.get()
            + self.abr_emergency_switches.get()
            + self.sessions_aborted.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        let mut other = Counter(7);
        other.merge(c);
        assert_eq!(other.get(), 12);

        let mut g = Gauge::default();
        g.set(10);
        g.set_max(3);
        assert_eq!(g.get(), 10);
        g.set_max(15);
        let mut peak = Gauge(12);
        peak.merge_max(g);
        assert_eq!(peak.get(), 15);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_exhaustive() {
        let mut prev = 0;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX] {
            let i = LogLinearHistogram::index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(
                LogLinearHistogram::lower_bound(i) <= v,
                "lower bound above value at {v}"
            );
            prev = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogLinearHistogram::new();
        for v in 0..SUB {
            h.record(v);
            assert_eq!(
                LogLinearHistogram::lower_bound(LogLinearHistogram::index(v)),
                v
            );
        }
        assert_eq!(h.count(), SUB);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Each sub-bucket spans 1/8 of its octave: lower bound within
        // 12.5 % of any value it holds.
        for v in [10u64, 100, 12_345, 1_000_000, 123_456_789, 1 << 40] {
            let lb = LogLinearHistogram::lower_bound(LogLinearHistogram::index(v));
            assert!(lb <= v);
            assert!(
                (v - lb) as f64 <= 0.125 * v as f64 + 1.0,
                "bucket too wide at {v}: lower bound {lb}"
            );
        }
    }

    #[test]
    fn quantiles_order_correctly() {
        let mut h = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let p10 = h.quantile(0.10).unwrap();
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p10 <= p50 && p50 <= p99);
        assert!((400_000..=500_000).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(1.0).unwrap() >= 900_000);
        assert!(LogLinearHistogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn histogram_serde_roundtrip() {
        let mut h = LogLinearHistogram::new();
        for v in [0u64, 5, 12, 12, 900, 1 << 30] {
            h.record(v);
        }
        let v = h.to_value();
        let text = v.to_json_string();
        assert!(text.starts_with('['), "{text}");
        let back = LogLinearHistogram::from_value(&v).expect("roundtrip");
        assert_eq!(back, h);
    }

    #[test]
    fn sim_metrics_merge_adds_everything() {
        let mut a = SimMetrics::default();
        a.chunks_served.add(3);
        a.chunk_ram_hits.add(2);
        a.chunk_misses.add(1);
        a.serve_latency_ns.record(5_000_000);
        let mut b = SimMetrics::default();
        b.chunks_served.add(2);
        b.chunk_disk_hits.add(2);
        b.serve_latency_ns.record(80_000_000);
        a.merge(&b);
        assert_eq!(a.chunks_served.get(), 5);
        assert_eq!(a.chunk_lookups(), 5);
        assert!((a.chunk_hit_ratio() - 0.8).abs() < 1e-12);
        assert_eq!(a.serve_latency_ns.count(), 2);
    }
}
