//! Property tests for the histogram merge algebra.
//!
//! The determinism argument for `SimMetrics` (DESIGN.md §10) rests on the
//! merge operation being associative and commutative: whatever partition
//! of sessions the sharded engine produces, and whatever order shards are
//! folded in, the merged histogram must equal the one a sequential run
//! would have recorded directly.

use proptest::collection::vec;
use proptest::prelude::*;
use streamlab_obs::LogLinearHistogram;

fn record_all(values: &[u64]) -> LogLinearHistogram {
    let mut h = LogLinearHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_over_any_partition_equals_direct_recording(
        values in vec(any::<u64>(), 0..200),
        cuts in vec(any::<u64>(), 0..6),
    ) {
        // Partition `values` into contiguous shards at arbitrary cut
        // points, the way the engine partitions sessions by PoP.
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|&c| if values.is_empty() { 0 } else { (c % values.len() as u64) as usize })
            .collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();

        let mut merged = LogLinearHistogram::new();
        for w in bounds.windows(2) {
            merged.merge(&record_all(&values[w[0]..w[1]]));
        }
        prop_assert_eq!(merged, record_all(&values));
    }

    #[test]
    fn merge_is_commutative(
        a in vec(any::<u64>(), 0..100),
        b in vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb) = (record_all(&a), record_all(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in vec(any::<u64>(), 0..80),
        b in vec(any::<u64>(), 0..80),
        c in vec(any::<u64>(), 0..80),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn count_is_preserved_and_quantiles_bounded(values in vec(any::<u64>(), 1..200)) {
        let h = record_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        let max = *values.iter().max().expect("non-empty");
        let min = *values.iter().min().expect("non-empty");
        // Bucket lower bounds never exceed the true value.
        prop_assert!(h.quantile(1.0).expect("non-empty") <= max);
        prop_assert!(h.quantile(0.0).expect("non-empty") <= min.max(1));
    }

    #[test]
    fn serialization_roundtrips(values in vec(any::<u64>(), 0..200)) {
        let h = record_all(&values);
        let v = serde::Serialize::to_value(&h);
        let back: LogLinearHistogram = serde::Deserialize::from_value(&v).expect("roundtrip");
        prop_assert_eq!(back, h);
    }
}
