//! The §4.2 network characterization, split by organization kind.
//!
//! Reproduces the Table 4 story interactively: enterprise paths show high
//! RTT variability (CV > 1 sessions), high baselines despite proximity,
//! and worse QoE — while residential ISPs stay calm.
//!
//! Usage: `cargo run --release --example enterprise_vs_residential [-- seed]`

use streamlab::analysis::netchar::session_srtt_stats;
use streamlab::analysis::stats::Cdf;
use streamlab::workload::OrgKind;
use streamlab::{Simulation, SimulationConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let out = Simulation::new(SimulationConfig::small(seed))
        .run()
        .expect("simulation");
    let ds = &out.dataset;

    let mut groups: Vec<(&str, Vec<&streamlab::telemetry::SessionData>)> = vec![
        (
            "enterprise",
            ds.sessions
                .iter()
                .filter(|s| s.meta.org_kind == OrgKind::Enterprise)
                .collect(),
        ),
        (
            "residential",
            ds.sessions
                .iter()
                .filter(|s| s.meta.org_kind == OrgKind::Residential && s.meta.region.is_us())
                .collect(),
        ),
    ];

    println!(
        "{:<12} {:>9} {:>14} {:>12} {:>10} {:>12} {:>12}",
        "group", "sessions", "srtt_min med", "sigma med", "CV>1 %", "rebuffer %", "dist med km"
    );
    for (name, sessions) in groups.iter_mut() {
        if sessions.is_empty() {
            println!("{name:<12} (none)");
            continue;
        }
        let stats: Vec<_> = sessions.iter().map(|s| session_srtt_stats(s)).collect();
        let min_cdf = Cdf::new(stats.iter().map(|s| s.srtt_min_ms).collect());
        let sigma_cdf = Cdf::new(stats.iter().map(|s| s.sigma_ms).collect());
        let high_cv = stats.iter().filter(|s| s.cv > 1.0).count();
        let rebuf =
            sessions.iter().map(|s| s.rebuffer_rate_pct()).sum::<f64>() / sessions.len() as f64;
        let dist_cdf = Cdf::new(sessions.iter().map(|s| s.meta.distance_km).collect());
        println!(
            "{:<12} {:>9} {:>12.1}ms {:>10.1}ms {:>9.1}% {:>11.2}% {:>12.0}",
            name,
            sessions.len(),
            min_cdf.median(),
            sigma_cdf.median(),
            100.0 * high_cv as f64 / sessions.len() as f64,
            rebuf,
            dist_cdf.median(),
        );
    }

    println!();
    println!("paper's Table 4: top enterprises reach ~40% CV>1 sessions; major");
    println!("residential ISPs sit near 1%. Enterprises are *close* to the CDN yet");
    println!("slow — middlebox/VPN paths, not distance (Fig. 9).");
}
