//! Seed-robustness: are the reproduced shapes properties of the
//! *mechanisms* or flukes of one random draw?
//!
//! Runs the same configuration under several master seeds in parallel and
//! prints the cross-seed spread of the headline metrics plus the QoE
//! dashboard of the first seed.
//!
//! Usage: `cargo run --release --example seed_robustness [-- n_seeds]`

use streamlab::analysis::qoe;
use streamlab::{sweep, Simulation, SimulationConfig};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let base = SimulationConfig::small(1000);
    let seeds: Vec<u64> = (0..n).map(|i| 1000 + i).collect();
    eprintln!(
        "sweeping {n} seeds x {} sessions in parallel ...",
        base.traffic.sessions
    );
    let s = sweep::run_seeds(&base, &seeds).expect("sweep");
    println!("{}", sweep::render(&s));
    println!(
        "hit-median stability: CV across seeds = {:.3} (mechanism-pinned metrics barely move)",
        s.hit_median_ms.cv()
    );
    println!(
        "miss-rate spread: {:.2}%..{:.2}% (cache content is seed-dependent)",
        100.0 * s.miss_rate.min,
        100.0 * s.miss_rate.max
    );

    // The QoE dashboard for one seed.
    let out = Simulation::new(base).run().expect("run");
    let q = qoe::summarize(&out.dataset);
    println!("\nQoE dashboard (seed 1000):");
    println!(
        "  startup    p50={:.2}s  p90={:.2}s  p99={:.2}s",
        q.startup_s.p50, q.startup_s.p90, q.startup_s.p99
    );
    println!(
        "  rebuffering p50={:.2}%  p90={:.2}%  sessions with any stall: {:.1}%",
        q.rebuffer_pct.p50,
        q.rebuffer_pct.p90,
        100.0 * q.any_rebuffer_share
    );
    println!(
        "  bitrate    p50={:.0}kbps  p90={:.0}kbps",
        q.bitrate_kbps.p50, q.bitrate_kbps.p90
    );
    println!(
        "  dropped    p50={:.2}%  p99={:.2}%",
        q.dropped_pct.p50, q.dropped_pct.p99
    );
    println!("  acceptable sessions: {:.1}%", 100.0 * q.acceptable_share);
}
