use streamlab::{Simulation, SimulationConfig};
fn main() {
    let out = Simulation::new(SimulationConfig::default_scale(2016))
        .run()
        .unwrap();
    let s = streamlab::analysis::figures::cdn::headline_stats(&out.dataset);
    println!("default: sessions={} chunks={} miss={:.3} ram={:.3} retry={:.3} hit_med={:.2} miss_med={:.1} ratio={:.2} top10={:.2} corr={:.2}",
        s.sessions, s.chunks, s.miss_rate, s.ram_hit_rate, s.retry_fraction, s.hit_median_ms, s.miss_median_ms,
        s.mean_miss_ratio_in_miss_sessions, s.top_decile_play_share, out.load_latency_correlation());
}
