//! Compare ABR algorithms on the same simulated world.
//!
//! The paper's §4.3 take-away: rate-based ABRs that trust client-side
//! throughput samples get poisoned by download-stack buffering (Fig. 17
//! chunks have impossible instantaneous throughput); a robust estimator
//! should screen those out. This example runs the same seed under four
//! ABRs and reports the QoE trade-offs.
//!
//! Usage: `cargo run --release --example abr_comparison [-- seed]`

use streamlab::client::abr::AbrAlgorithm;
use streamlab::{Simulation, SimulationConfig};

struct Row {
    name: &'static str,
    avg_bitrate_kbps: f64,
    rebuffer_rate_pct: f64,
    startup_median_s: f64,
    bad_chunk_pct: f64,
}

fn run(name: &'static str, algorithm: AbrAlgorithm, seed: u64) -> Row {
    let mut cfg = SimulationConfig::small(seed);
    cfg.abr = algorithm;
    let out = Simulation::new(cfg).run().expect("simulation");
    let ds = &out.dataset;

    let n = ds.sessions.len().max(1) as f64;
    let avg_bitrate = ds
        .sessions
        .iter()
        .map(|s| s.avg_bitrate_kbps())
        .sum::<f64>()
        / n;
    let rebuffer = ds
        .sessions
        .iter()
        .map(|s| s.rebuffer_rate_pct())
        .sum::<f64>()
        / n;
    let mut startups: Vec<f64> = ds
        .sessions
        .iter()
        .map(|s| s.meta.startup_delay_s)
        .filter(|x| x.is_finite())
        .collect();
    startups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let startup_median = startups
        .get(startups.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    let (mut bad, mut total) = (0usize, 0usize);
    for (_, c) in ds.chunks() {
        total += 1;
        if c.player.perf_score() < 1.0 {
            bad += 1;
        }
    }
    Row {
        name,
        avg_bitrate_kbps: avg_bitrate,
        rebuffer_rate_pct: rebuffer,
        startup_median_s: startup_median,
        bad_chunk_pct: 100.0 * bad as f64 / total.max(1) as f64,
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    println!("running 4 ABR algorithms over the same world (seed {seed}) ...\n");

    let rows = vec![
        run(
            "rate-based (w=5)",
            AbrAlgorithm::RateBased { window: 5 },
            seed,
        ),
        run(
            "robust-rate (w=5)",
            AbrAlgorithm::RobustRate { window: 5 },
            seed,
        ),
        run(
            "buffer-based (5s/20s)",
            AbrAlgorithm::BufferBased {
                reservoir_s: 5.0,
                cushion_s: 20.0,
            },
            seed,
        ),
        run("hybrid (w=5)", AbrAlgorithm::Hybrid { window: 5 }, seed),
    ];

    println!(
        "{:<22} {:>14} {:>12} {:>14} {:>12}",
        "algorithm", "avg kbps", "rebuffer %", "startup med s", "bad chunks %"
    );
    for r in &rows {
        println!(
            "{:<22} {:>14.0} {:>12.2} {:>14.2} {:>12.2}",
            r.name, r.avg_bitrate_kbps, r.rebuffer_rate_pct, r.startup_median_s, r.bad_chunk_pct
        );
    }
    println!("\n(the robust estimator should match rate-based quality while avoiding");
    println!(" overshoot on stack-buffered outliers; buffer-based trades bitrate for");
    println!(" stall robustness — the trade-offs §6's ABR literature studies)");
}
