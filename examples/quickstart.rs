//! Quickstart: simulate a small measurement window and print the headline
//! performance characterization — the numbers §3/§4.1 of the paper lead
//! with.
//!
//! Usage: `cargo run --release --example quickstart [-- seed]`

use streamlab::analysis::figures::cdn::headline_stats;
use streamlab::analysis::figures::network::fig11;
use streamlab::{Simulation, SimulationConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let cfg = SimulationConfig::small(seed);
    println!(
        "simulating {} sessions / {} videos / {} CDN servers (seed {seed}) ...",
        cfg.traffic.sessions, cfg.catalog.videos, cfg.fleet.servers
    );
    let out = Simulation::new(cfg).run().expect("simulation");

    let s = headline_stats(&out.dataset);
    println!();
    println!(
        "dataset:   {} sessions, {} chunks (proxy filter kept {:.0}%)",
        s.sessions,
        s.chunks,
        100.0 * s.retention
    );
    println!(
        "caching:   miss rate {:.1}%, RAM-hit rate {:.0}%, retry timer fired on {:.0}% of chunks",
        100.0 * s.miss_rate,
        100.0 * s.ram_hit_rate,
        100.0 * s.retry_fraction
    );
    println!(
        "latency:   median server latency {:.1} ms on hits vs {:.0} ms on misses ({:.0}x)",
        s.hit_median_ms,
        s.miss_median_ms,
        s.miss_median_ms / s.hit_median_ms
    );
    println!(
        "content:   top 10% of videos get {:.0}% of playbacks",
        100.0 * s.top_decile_play_share
    );
    println!(
        "persistence: sessions with >=1 miss average {:.0}% missed chunks",
        100.0 * s.mean_miss_ratio_in_miss_sessions
    );

    let f11 = fig11(&out.dataset, 100);
    println!("loss:      {:.0}% of sessions see no retransmission at all; {:.0}% stay under a 10% retx rate", 100.0 * f11.loss_free_share, 100.0 * f11.below_10pct_share);
    println!("routing:   load vs latency correlation across servers = {:+.2} (negative = cache-focused routing paradox)", out.load_latency_correlation());
}
