//! Regenerate every paper exhibit from one simulated measurement window.
//!
//! Usage: `cargo run --release --example paper_figures [-- seed [small|default]]`
//! Prints the same rows/series the paper's figures and tables report, and
//! writes the raw rows as JSON to `target/paper_figures.json`.

use streamlab::experiments::{full_report, run_experiment, ExperimentId};
use streamlab::{Simulation, SimulationConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2016);
    let cfg = match args.get(2).map(String::as_str) {
        Some("default") => SimulationConfig::default_scale(seed),
        _ => SimulationConfig::small(seed),
    };
    eprintln!(
        "simulating {} sessions over {} videos on {} servers (seed {seed})...",
        cfg.traffic.sessions, cfg.catalog.videos, cfg.fleet.servers
    );
    let out = Simulation::new(cfg).run().expect("simulation");
    println!("{}", full_report(&out));

    // Raw rows as JSON for external plotting.
    let mut all = serde_json::Map::new();
    for &id in ExperimentId::all() {
        let r = run_experiment(id, &out);
        all.insert(format!("{id:?}"), r.json);
    }
    let path = "target/paper_figures.json";
    std::fs::write(path, serde_json::to_string_pretty(&all).unwrap()).expect("write json");
    eprintln!("raw rows written to {path}");
}
