//! A tour of the substrate APIs: build one path, one connection and one
//! CDN server by hand, serve a short session chunk by chunk, and print the
//! per-chunk latency anatomy — the paper's Fig. 2 time diagram
//! (`D_FB = D_CDN + D_BE + D_DS + rtt0`, Eq. 1) as a table.
//!
//! Usage: `cargo run --release --example instrumentation_tour`

use streamlab::cdn::{CdnServer, ObjectKey, ServerConfig};
use streamlab::client::{DownloadStack, PlaybackBuffer, PlayerConfig, StackConfig};
use streamlab::net::{PathProfile, PropagationModel, TcpConfig, TcpConnection};
use streamlab::sim::{RngStream, SimTime};
use streamlab::workload::{Browser, ChunkIndex, Os, PopId, ServerId, VideoId};

fn main() {
    // --- the path: a cable client 1200 km from its PoP ---
    let path = PathProfile::from_parts(
        &PropagationModel::default(),
        1_200.0, // km
        8.0,     // last-mile ms
        0.0,     // no enterprise overhead
        25.0,    // Mbps
        1.2,     // shallow-ish buffer: slow start will overshoot
        0.0005,  // light random loss
        0.08,    // jitter
        0.0,
        1.0,
    );
    println!(
        "path: base rtt {:.1} ms, bottleneck {:.0} Mbps, buffer {:.0} kB, BDP {:.0} kB",
        path.base_rtt.as_millis_f64(),
        path.bottleneck_bytes_per_s * 8.0 / 1.0e6,
        path.buffer_bytes / 1e3,
        path.bdp_bytes() / 1e3
    );

    // --- the endpoints ---
    let mut conn = TcpConnection::new(
        path,
        TcpConfig::default(),
        SimTime::ZERO,
        RngStream::new(7, "tour-tcp"),
    );
    let mut server = CdnServer::new(
        ServerId(0),
        PopId(0),
        ServerConfig::default(),
        RngStream::new(7, "tour-server"),
    );
    let mut stack = DownloadStack::new(
        Os::Windows,
        Browser::Firefox,
        StackConfig::default(),
        RngStream::new(7, "tour-stack"),
    );
    let mut buffer = PlaybackBuffer::new(PlayerConfig::default(), SimTime::ZERO);

    println!(
        "\n{:>5} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8}",
        "chunk",
        "cache",
        "rtt0 ms",
        "D_CDN ms",
        "D_BE ms",
        "D_DS ms",
        "D_FB ms",
        "D_LB s",
        "retx",
        "buffer s"
    );

    let video = VideoId(42);
    let chunk_bytes: u64 = 1_762_500; // 6 s at 2350 kbps
    let mut t = SimTime::ZERO;
    for i in 0..10u32 {
        // 1. GET crosses the network.
        let rtt0 = conn.rtt0_sample(t);
        let at_server = t + rtt0 / 2;

        // 2. The server's ATS pipeline (watch the cache warm up: chunk
        //    misses fill it, repeats would hit).
        let key = ObjectKey {
            video,
            chunk: ChunkIndex(i),
            bitrate_kbps: 2350,
        };
        let outcome = server.serve(key, chunk_bytes, 500, at_server, &[]);

        // 3. TCP delivers (the first chunk pays the slow-start burst).
        let transfer = conn.transfer(at_server + outcome.total(), chunk_bytes);

        // 4. The download stack hands bytes to the player.
        let delivery = stack.deliver(ChunkIndex(i), transfer.first_byte_at, transfer.last_byte_at);

        // 5. Playback accounting.
        buffer.add_chunk(delivery.player_last_byte, 6.0);

        let d_fb = delivery.player_first_byte.duration_since(t);
        let d_lb = delivery
            .player_last_byte
            .duration_since(delivery.player_first_byte);
        println!(
            "{:>5} {:>8} {:>9.1} {:>9.2} {:>9.1} {:>9.1} {:>9.1} {:>7.2} {:>7} {:>8.1}",
            i,
            format!("{:?}", outcome.status),
            rtt0.as_millis_f64(),
            outcome.d_cdn().as_millis_f64(),
            outcome.d_backend.as_millis_f64(),
            delivery.dds.as_millis_f64(),
            d_fb.as_millis_f64(),
            d_lb.as_secs_f64(),
            transfer.retx,
            buffer.level_s(),
        );

        t = delivery.player_last_byte + buffer.request_backoff();
        conn.idle_until(t);
    }

    println!(
        "\nsession: startup {:.2} s, {} rebuffer events, kernel retx total {}",
        buffer
            .startup_delay()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        buffer.rebuffer_count(),
        conn.info(t).retx_total,
    );
    println!(
        "\nEq. 1 at work: chunk 0's D_FB stacks rtt0 + D_CDN + D_BE (miss) + D_DS\n(first-chunk Flash setup). A cold viewer misses on every chunk — each is\na distinct object — but fills the cache for the next viewer:"
    );

    // --- a second viewer of the same video: the cache is now warm ---
    let mut total_hit_ms = 0.0;
    for i in 0..10u32 {
        let key = ObjectKey {
            video,
            chunk: ChunkIndex(i),
            bitrate_kbps: 2350,
        };
        let outcome = server.serve(
            key,
            chunk_bytes,
            500,
            t + streamlab::sim::SimDuration::from_secs(60 + u64::from(i) * 6),
            &[],
        );
        assert!(outcome.status.is_hit(), "second viewer must hit");
        total_hit_ms += outcome.total().as_millis_f64();
    }
    println!(
        "second viewer: all 10 chunks hit, mean server latency {:.2} ms\n(vs the first viewer's ~{:.0} ms misses — the paper's 40x gap)",
        total_hit_ms / 10.0,
        76.0
    );
}
