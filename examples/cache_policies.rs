//! The §4.1 take-away ablations: eviction policy, prefetching, first-chunk
//! pinning and popular-content partitioning.
//!
//! "To offer better cache hit rates, the default LRU cache eviction policy
//! in ATS could be changed to better suited policies for popular-heavy
//! workloads such as GD-size or perfect-LFU. ... the persistence of cache
//! misses could be addressed by pre-fetching the subsequent chunks ...
//! distributing only the top 10% of popular videos across servers can
//! balance the load."
//!
//! Usage: `cargo run --release --example cache_policies [-- seed]`

use streamlab::analysis::figures::cdn::headline_stats;
use streamlab::cdn::{EvictionPolicy, PrefetchPolicy};
use streamlab::{Simulation, SimulationConfig};

struct Row {
    name: &'static str,
    miss_pct: f64,
    ram_hit_pct: f64,
    hit_median_ms: f64,
    miss_sessions_ratio_pct: f64,
    load_latency_corr: f64,
}

fn run(name: &'static str, seed: u64, tweak: impl FnOnce(&mut SimulationConfig)) -> Row {
    let mut cfg = SimulationConfig::small(seed);
    tweak(&mut cfg);
    let out = Simulation::new(cfg).run().expect("simulation");
    let s = headline_stats(&out.dataset);
    Row {
        name,
        miss_pct: 100.0 * s.miss_rate,
        ram_hit_pct: 100.0 * s.ram_hit_rate,
        hit_median_ms: s.hit_median_ms,
        miss_sessions_ratio_pct: 100.0 * s.mean_miss_ratio_in_miss_sessions,
        load_latency_corr: out.load_latency_correlation(),
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2016);
    println!("running cache ablations over the same world (seed {seed}) ...\n");

    let rows = vec![
        run("LRU (deployed)", seed, |_| {}),
        run("perfect-LFU", seed, |c| {
            c.fleet_mut().server.cache.policy = EvictionPolicy::PerfectLfu;
        }),
        run("GD-Size", seed, |c| {
            c.fleet_mut().server.cache.policy = EvictionPolicy::GdSize;
        }),
        run("FIFO", seed, |c| {
            c.fleet_mut().server.cache.policy = EvictionPolicy::Fifo;
        }),
        run("LRU + prefetch(5)", seed, |c| {
            c.fleet_mut().prefetch = PrefetchPolicy::NextChunksOnMiss(5);
        }),
        run("LRU + pin first chunks", seed, |c| {
            c.fleet_mut().pin_first_chunks = true;
        }),
        run("LRU + partition top-10%", seed, |c| {
            c.fleet_mut().partition_popular = true;
        }),
    ];

    println!(
        "{:<24} {:>8} {:>9} {:>12} {:>18} {:>12}",
        "configuration", "miss %", "RAM-hit %", "hit med ms", "miss-sess ratio %", "load corr"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8.2} {:>9.1} {:>12.2} {:>18.1} {:>12.2}",
            r.name,
            r.miss_pct,
            r.ram_hit_pct,
            r.hit_median_ms,
            r.miss_sessions_ratio_pct,
            r.load_latency_corr
        );
    }
    println!("\n(prefetch should collapse the persistent-miss ratio; partitioning should");
    println!(" pull the load/latency correlation toward zero — §4.1.2/§4.1.3 take-aways)");
}
