//! Cross-checks between the self-telemetry counters (`SimMetrics`) and the
//! simulation's primary outputs (`Dataset`, `ServerReport`). The metrics
//! subsystem observes the same events the telemetry pipeline records, via a
//! completely different path (subscriber probes vs beacon join); any drift
//! between the two is an instrumentation bug.
//!
//! Proxy filtering drops whole sessions from the `Dataset` *after* their
//! chunks were served, while the metrics counters see every serve. To make
//! the two comparable the config below disables proxies entirely:
//! `proxy_session_fraction = 0` alone is NOT enough, because enterprise
//! prefixes are proxied at a fixed rate regardless of that knob — so
//! `enterprise_fraction` is zeroed too.

use streamlab::telemetry::records::CacheOutcome;
use streamlab::{ObsOptions, Simulation, SimulationConfig};

fn proxyless_tiny(seed: u64) -> SimulationConfig {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.population.proxy_session_fraction = 0.0;
    cfg.population.enterprise_fraction = 0.0;
    cfg
}

#[test]
fn metrics_agree_with_dataset_and_server_reports() {
    let out = Simulation::new(proxyless_tiny(11))
        .run_observed(ObsOptions::default())
        .expect("run");
    let m = &out.metrics.as_ref().expect("metrics").sim;

    // Precondition: nothing was filtered, so the dataset holds every
    // session the metrics saw.
    assert_eq!(
        out.dataset.filtered_proxy_sessions, 0,
        "proxyless config must not trigger the proxy filter"
    );
    assert_eq!(out.dataset.sessions.len(), out.dataset.raw_sessions);

    // Session lifecycle counters vs the dataset's session count.
    assert_eq!(m.sessions_started.get(), out.dataset.raw_sessions as u64);
    assert_eq!(m.sessions_ended.get(), out.dataset.raw_sessions as u64);

    // Per-tier chunk counters vs the joined per-chunk records.
    let mut ram = 0u64;
    let mut disk = 0u64;
    let mut miss = 0u64;
    for (_, chunk) in out.dataset.chunks() {
        match chunk.cdn.cache {
            CacheOutcome::RamHit => ram += 1,
            CacheOutcome::DiskHit => disk += 1,
            CacheOutcome::Miss => miss += 1,
        }
    }
    assert_eq!(m.chunk_ram_hits.get(), ram, "RAM-hit counter drifted");
    assert_eq!(m.chunk_disk_hits.get(), disk, "disk-hit counter drifted");
    assert_eq!(m.chunk_misses.get(), miss, "miss counter drifted");
    assert_eq!(
        m.chunks_served.get(),
        out.dataset.chunk_count() as u64,
        "chunks-served counter drifted"
    );

    // Retry-timer counter vs the per-server reports. `retry_ratio` is
    // computed as retry_fired / requests exactly, so the integer count is
    // recoverable by rounding.
    let report_retries: u64 = out
        .servers
        .iter()
        .map(|s| (s.retry_ratio * s.requests as f64).round() as u64)
        .sum();
    assert_eq!(
        m.retry_timer_fires.get(),
        report_retries,
        "retry-timer counter disagrees with ServerReport.retry_ratio"
    );

    // Serve-request totals: every server request is either a chunk or a
    // manifest serve.
    let report_requests: u64 = out.servers.iter().map(|s| s.requests).sum();
    assert_eq!(
        m.chunks_served.get() + m.manifest_requests.get(),
        report_requests,
        "chunk+manifest serves disagree with ServerReport.requests"
    );

    // Latency histogram: one serve-latency sample per chunk.
    assert_eq!(m.serve_latency_ns.count(), m.chunks_served.get());
}
