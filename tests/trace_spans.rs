//! Dual-clock tracing contracts.
//!
//! Sim-time side: the canonicalized span stream (`session → chunk →
//! {cache_lookup, net_transfer, render}`) is **byte-identical at any
//! `--threads` value**, faulted or not, and the localization counters
//! partition their parent counters exactly. Wall-clock side: the Chrome
//! trace the two are rendered into is structurally valid — every `B` has
//! a matching `E` on the same lane with non-decreasing timestamps, and
//! the engine process carries worker lanes when the run was sharded.

use serde_json::Value;
use streamlab::obs::span::to_jsonl;
use streamlab::obs::{SimSpan, SpanKind};
use streamlab::{ObsOptions, RunOutput, Simulation, SimulationConfig};

/// Spans plus the trace-relevant knobs, but no JSONL event buffer.
const SPAN_OPTS: ObsOptions = ObsOptions {
    trace: false,
    spans: true,
};

fn tiny_cfg(seed: u64, threads: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    cfg
}

/// The acceptance fault scenario: restarts, a PoP outage and a loss
/// burst inside the tiny window (same file `tests/determinism.rs` uses).
fn faulted_cfg(seed: u64, threads: usize) -> SimulationConfig {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/faults_outage_restart.json"
    );
    let mut cfg = tiny_cfg(seed, threads);
    cfg.faults = streamlab::faults::FaultScenario::from_json_file(path).expect("scenario parses");
    cfg
}

fn run_spans(cfg: SimulationConfig) -> RunOutput {
    Simulation::new(cfg).run_observed(SPAN_OPTS).expect("run")
}

fn span_jsonl(cfg: SimulationConfig) -> String {
    to_jsonl(
        run_spans(cfg)
            .sim_spans
            .as_deref()
            .expect("spans requested"),
    )
}

#[test]
fn span_stream_is_byte_identical_across_thread_counts() {
    let jsonl_1 = span_jsonl(tiny_cfg(2016, 1));
    assert!(!jsonl_1.is_empty(), "a tiny run must produce spans");
    for threads in [2, 8] {
        let jsonl_n = span_jsonl(tiny_cfg(2016, threads));
        assert!(
            jsonl_1 == jsonl_n,
            "span stream diverges between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn faulted_span_stream_is_byte_identical_across_thread_counts() {
    let jsonl_1 = span_jsonl(faulted_cfg(2016, 1));
    for threads in [2, 8] {
        let jsonl_n = span_jsonl(faulted_cfg(2016, threads));
        assert!(
            jsonl_1 == jsonl_n,
            "faulted span stream diverges between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn span_tree_is_well_formed() {
    let spans = run_spans(tiny_cfg(2016, 4)).sim_spans.expect("spans");
    let mut kinds_seen = [false; 5];
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(s.id, i as u64 + 1, "ids are 1-based canonical positions");
        assert!(
            s.end_ns >= s.start_ns,
            "span {} ends before it starts",
            s.id
        );
        kinds_seen[s.kind as usize] = true;
        match s.kind {
            SpanKind::Session => assert_eq!(s.parent, None),
            _ => {
                let p = s.parent.expect("non-session spans have parents");
                let parent: &SimSpan = &spans[(p - 1) as usize];
                assert!(p < s.id, "parent {p} not before child {}", s.id);
                assert_eq!(parent.session, s.session);
                assert!(
                    parent.start_ns <= s.start_ns && s.end_ns <= parent.end_ns,
                    "child {} escapes parent {p}",
                    s.id
                );
            }
        }
    }
    assert!(
        kinds_seen.iter().all(|&k| k),
        "a tiny run exercises every span kind: {kinds_seen:?}"
    );
}

/// Parse the rendered Chrome trace into its event list.
fn trace_events(out: &RunOutput) -> Vec<Value> {
    let spans = out.sim_spans.as_deref().expect("spans");
    let text = streamlab::obs::render_chrome_trace(spans, out.wall_trace.as_ref());
    let v = Value::parse_json(&text).expect("trace is valid JSON");
    v.get("traceEvents")
        .and_then(|t| t.as_array())
        .expect("traceEvents array")
        .to_vec()
}

#[test]
fn chrome_trace_pairs_match_and_timestamps_are_monotone_per_lane() {
    let out = run_spans(faulted_cfg(2016, 4));
    let events = trace_events(&out);

    // Per sim lane (pid 1, tid = session): a valid B/E stack with
    // non-decreasing timestamps.
    use std::collections::HashMap;
    let mut depth: HashMap<u64, i64> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut begins = 0usize;
    for e in &events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
        let pid = e.get("pid").and_then(|p| p.as_u64()).expect("pid");
        if ph == "M" || pid != 1 {
            continue;
        }
        let tid = e.get("tid").and_then(|t| t.as_u64()).expect("tid");
        let ts = e.get("ts").and_then(|t| t.as_u64()).expect("ts");
        let last = last_ts.entry(tid).or_insert(0);
        assert!(
            *last <= ts,
            "lane {tid} timestamps regressed: {last} -> {ts}"
        );
        *last = ts;
        let d = depth.entry(tid).or_insert(0);
        match ph {
            "B" => {
                *d += 1;
                begins += 1;
            }
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "lane {tid} has E without matching B");
            }
            other => panic!("unexpected sim ph {other}"),
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unclosed B events");
    assert_eq!(
        begins,
        out.sim_spans.as_deref().unwrap().len(),
        "every span opens exactly once"
    );
}

#[test]
fn chrome_trace_carries_both_clock_processes() {
    let out = run_spans(tiny_cfg(2016, 2));
    let events = trace_events(&out);
    let names: Vec<String> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_owned))
        .collect();
    assert!(
        names.iter().any(|n| n.contains("sim-time")),
        "sim process metadata missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.contains("wall-clock")),
        "engine process metadata missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("worker ")),
        "worker lane metadata missing: {names:?}"
    );
    // The engine process carries at least the run-phase slices.
    let wall_slices = events
        .iter()
        .filter(|e| {
            e.get("pid").and_then(|p| p.as_u64()) == Some(2)
                && e.get("ph").and_then(|p| p.as_str()) == Some("X")
        })
        .count();
    assert!(
        wall_slices >= 3,
        "expected run phases + shard jobs, got {wall_slices}"
    );
}

#[test]
fn localization_counters_partition_their_parents_and_are_thread_invariant() {
    let collect = |threads: usize| {
        let out = Simulation::new(faulted_cfg(2016, threads))
            .run_observed(ObsOptions::default())
            .expect("run");
        out.metrics.expect("observed run carries metrics").sim
    };
    let m1 = collect(1);
    assert!(m1.stall_events.get() > 0, "scenario must produce rebuffers");
    assert!(
        m1.sessions_aborted.get() > 0,
        "scenario must produce aborts"
    );
    assert_eq!(
        m1.loc_rebuffers_total(),
        m1.stall_events.get(),
        "every rebuffer lands in exactly one problem class"
    );
    assert_eq!(
        m1.loc_aborts_total(),
        m1.sessions_aborted.get(),
        "every abort lands in exactly one problem class"
    );
    assert_eq!(
        m1.loc_sessions_total(),
        m1.sessions_ended.get(),
        "every ended session gets exactly one diagnosis"
    );
    for threads in [2, 8] {
        let mn = collect(threads);
        let fingerprint = |m: &streamlab::obs::SimMetrics| {
            [
                m.loc_rebuffers_server.get(),
                m.loc_rebuffers_network.get(),
                m.loc_rebuffers_stack.get(),
                m.loc_aborts_server.get(),
                m.loc_aborts_network.get(),
                m.loc_sessions_server.get(),
                m.loc_sessions_network.get(),
                m.loc_sessions_stack.get(),
                m.loc_sessions_rendering.get(),
                m.loc_sessions_healthy.get(),
            ]
        };
        assert_eq!(
            fingerprint(&m1),
            fingerprint(&mn),
            "localization counters diverge between threads=1 and threads={threads}"
        );
    }
}
