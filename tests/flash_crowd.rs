//! Flash-crowd integration: when a tail video suddenly goes viral, an
//! LRU cache adapts after the first wave of misses — the §4.1 mechanism
//! under a popularity *shift* instead of a static distribution.

use streamlab::workload::{FlashCrowd, VideoId};
use streamlab::{Simulation, SimulationConfig};

#[test]
fn lru_adapts_to_a_flash_crowd() {
    let mut cfg = SimulationConfig::tiny(77);
    cfg.traffic.sessions = 800;
    let viral_rank = cfg.catalog.videos - 5; // deep-tail video goes viral
    cfg.traffic.flash_crowd = Some(FlashCrowd {
        video_rank: viral_rank,
        start_frac: 0.3,
        share: 0.35,
    });
    let out = Simulation::new(cfg).run().expect("run");
    let viral = VideoId::from_rank(viral_rank);

    // Collect the viral video's chunk requests in arrival order.
    let mut requests: Vec<(u64, bool)> = out
        .dataset
        .chunks()
        .filter(|(meta, _)| meta.video == viral)
        .map(|(_, c)| (c.player.requested_at.as_nanos(), c.cdn.cache.is_hit()))
        .collect();
    requests.sort_unstable_by_key(|&(t, _)| t);
    assert!(
        requests.len() > 300,
        "flash crowd produced only {} chunk requests",
        requests.len()
    );

    // Early wave: cold cache, mostly misses. Late wave: hot, mostly hits.
    let split = requests.len() / 4;
    let early_hits = requests[..split].iter().filter(|&&(_, h)| h).count() as f64;
    let late = &requests[requests.len() - split..];
    let late_hits = late.iter().filter(|&&(_, h)| h).count() as f64;
    let early_rate = early_hits / split as f64;
    let late_rate = late_hits / split as f64;
    // The exact rate depends on the RNG stream; what matters is that the
    // late wave is overwhelmingly hits and clearly better than the cold wave.
    assert!(
        late_rate > 0.8,
        "cache failed to adapt: late hit rate {late_rate}"
    );
    assert!(
        late_rate > early_rate,
        "no adaptation visible: early {early_rate} vs late {late_rate}"
    );
}

#[test]
fn flash_crowd_shifts_the_popularity_head() {
    let mut cfg = SimulationConfig::tiny(78);
    cfg.traffic.sessions = 800;
    let viral_rank = cfg.catalog.videos - 5;
    cfg.traffic.flash_crowd = Some(FlashCrowd {
        video_rank: viral_rank,
        start_frac: 0.3,
        share: 0.35,
    });
    let out = Simulation::new(cfg).run().expect("run");
    let viral = VideoId::from_rank(viral_rank);
    // The viral video becomes one of the most-played videos of the window.
    let mut counts: std::collections::HashMap<VideoId, usize> = std::collections::HashMap::new();
    for s in &out.dataset.sessions {
        *counts.entry(s.meta.video).or_insert(0) += 1;
    }
    let viral_plays = counts.get(&viral).copied().unwrap_or(0);
    let max_plays = counts.values().copied().max().unwrap_or(0);
    assert!(
        viral_plays * 2 >= max_plays,
        "viral video got {viral_plays} plays vs top {max_plays}"
    );
}
