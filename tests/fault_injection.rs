//! Fault injection: extreme or degenerate configurations must complete
//! with a coherent dataset — never panic, never violate accounting.

use streamlab::workload::BitrateLadder;
use streamlab::{RunOutput, Simulation, SimulationConfig};

fn base() -> SimulationConfig {
    let mut cfg = SimulationConfig::tiny(99);
    cfg.traffic.sessions = 120;
    cfg.catalog.videos = 60;
    cfg.population.prefixes = 80;
    cfg
}

fn check_coherent(out: &RunOutput) {
    assert!(!out.dataset.sessions.is_empty(), "everything filtered away");
    for s in &out.dataset.sessions {
        for (i, c) in s.chunks.iter().enumerate() {
            assert_eq!(c.chunk().raw() as usize, i);
            assert!(c.player.d_fb.as_nanos() > 0);
            assert!(c.player.d_lb.as_nanos() > 0);
            assert!(c.cdn.retx_segments <= c.cdn.segments);
            assert!(c.player.dropped_frames <= c.player.frames);
        }
    }
}

#[test]
fn survives_pathological_loss() {
    let mut cfg = base();
    // Every prefix becomes a disaster path: the generator's parameters are
    // per-class, so instead force it at the TCP layer via the session
    // variation hook — the closest global knob is heavy random loss via
    // population regeneration with a hostile seed sweep. Simplest hostile
    // global setting: 1-chunk startup plus a ladder that forces the top
    // rung onto every link.
    cfg.catalog.ladder = BitrateLadder {
        rungs_kbps: vec![8_000], // 8 Mbps floor: DSL links will crawl
    };
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    // Sessions on slow links must show bad perf scores, not hang.
    let bad = out
        .dataset
        .chunks()
        .filter(|(_, c)| c.player.perf_score() < 1.0)
        .count();
    assert!(bad > 0, "8 Mbps floor should hurt someone");
}

#[test]
fn survives_single_rung_ladder() {
    let mut cfg = base();
    cfg.catalog.ladder = BitrateLadder {
        rungs_kbps: vec![560],
    };
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    for (_, c) in out.dataset.chunks() {
        assert_eq!(c.player.bitrate_kbps, 560);
    }
}

#[test]
fn survives_zero_capacity_caches() {
    let mut cfg = base();
    let fleet = cfg.fleet_mut();
    fleet.server.cache.ram_bytes = 0;
    fleet.server.cache.disk_bytes = 0;
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    // Nothing can be cached: every chunk is a miss.
    let stats = streamlab::analysis::figures::cdn::headline_stats(&out.dataset);
    assert!(
        stats.miss_rate > 0.999,
        "cacheless fleet still hit: {}",
        stats.miss_rate
    );
    assert!(stats.retry_fraction > 0.999);
}

#[test]
fn survives_single_session_and_single_video() {
    let mut cfg = base();
    cfg.traffic.sessions = 1;
    cfg.catalog.videos = 1;
    let out = Simulation::new(cfg).run().expect("run");
    // The one session may or may not be proxied; raw must be 1.
    assert_eq!(out.raw_sessions, 1);
    assert!(out.dataset.sessions.len() <= 1);
}

#[test]
fn survives_all_hidden_players() {
    let mut cfg = base();
    cfg.traffic.hidden_fraction = 1.0;
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    // Hidden players drop most frames by design.
    let mean_drop: f64 = {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, c) in out.dataset.chunks() {
            sum += c.player.drop_ratio();
            n += 1;
        }
        sum / n as f64
    };
    assert!(mean_drop > 0.5, "hidden mean drop = {mean_drop}");
}

#[test]
fn survives_compressed_window() {
    let mut cfg = base();
    // 120 sessions crammed into one minute: heavy server concurrency.
    cfg.traffic.window = streamlab::sim::SimDuration::from_secs(60);
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    // D_wait should show the queueing (some chunks beyond the idle median).
    let waits: Vec<f64> = out
        .dataset
        .chunks()
        .map(|(_, c)| c.cdn.d_wait.as_millis_f64())
        .collect();
    let max_wait = waits.iter().copied().fold(0.0, f64::max);
    assert!(max_wait >= 0.0); // presence; magnitude depends on threadpool
}

#[test]
fn survives_instant_abandonment() {
    let mut cfg = base();
    cfg.player.abandon_after_stall_s = Some(0.0);
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    // Sessions that stall at all end at that chunk.
    for s in &out.dataset.sessions {
        let stalls: Vec<usize> = s
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.player.buf_count > 0)
            .map(|(i, _)| i)
            .collect();
        if let Some(&first_stall) = stalls.first() {
            assert!(
                s.chunks.len() <= first_stall + 2,
                "session kept going {} chunks after a stall at {first_stall}",
                s.chunks.len()
            );
        }
    }
}

#[test]
fn survives_extreme_zipf() {
    let mut cfg = base();
    cfg.catalog.zipf_exponent = 3.0; // virtually everyone watches rank 1
    let out = Simulation::new(cfg).run().expect("run");
    check_coherent(&out);
    let stats = streamlab::analysis::figures::cdn::headline_stats(&out.dataset);
    assert!(
        stats.top_decile_play_share >= 0.75,
        "share = {}",
        stats.top_decile_play_share
    );
}
