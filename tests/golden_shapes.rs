//! Golden-snapshot regression tests for the headline paper shapes.
//!
//! A fixed run (`SimulationConfig::tiny(2016)`, sequential engine) is
//! summarized into a handful of scalar metrics and compared against the
//! committed snapshot in `tests/golden/paper_shapes.json`. The run is
//! fully deterministic, but comparisons use explicit tolerances so that
//! refactors which only reshuffle float summation order (or retune a
//! sub-model slightly) fail loudly only when a paper *shape* actually
//! moves:
//!
//! * cache miss ratio — the §4.1 steady-state, a few percent;
//! * hit/miss median latency — misses cost an order of magnitude (Fig. 5);
//! * first-chunk retransmit dominance — chunk 0 carries most of the loss
//!   (Fig. 15, connection warm-up).
//!
//! Regenerating after an intentional behavior change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -q --test golden_shapes
//! ```
//!
//! then commit the updated `tests/golden/paper_shapes.json` alongside the
//! change that moved the numbers, explaining the move in the same commit.

use std::path::PathBuf;
use streamlab::{Simulation, SimulationConfig};

/// Relative tolerance for ratio/latency metrics. Generous enough to absorb
/// float-order noise, far tighter than any real behavior change.
const REL_TOL: f64 = 0.05;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("paper_shapes.json")
}

struct Shapes {
    miss_rate: f64,
    hit_median_ms: f64,
    miss_median_ms: f64,
    first_chunk_retx_mean: f64,
    later_chunk_retx_mean: f64,
}

fn measure() -> Shapes {
    let out = Simulation::new(SimulationConfig::tiny(2016))
        .run()
        .expect("golden run");
    let cdn = streamlab::analysis::figures::cdn::headline_stats(&out.dataset);
    let retx = streamlab::analysis::figures::network::fig15(&out.dataset, 19);
    let first = retx.bins.first().expect("chunk-0 bin");
    let later = &retx.bins[3..];
    let later_mean = later.iter().map(|b| b.mean).sum::<f64>() / later.len().max(1) as f64;
    Shapes {
        miss_rate: cdn.miss_rate,
        hit_median_ms: cdn.hit_median_ms,
        miss_median_ms: cdn.miss_median_ms,
        first_chunk_retx_mean: first.mean,
        later_chunk_retx_mean: later_mean,
    }
}

fn to_json(s: &Shapes) -> String {
    let mut m = serde_json::Map::new();
    m.insert("config".into(), serde_json::json!("tiny(2016), threads=1"));
    m.insert("miss_rate".into(), serde_json::json!(s.miss_rate));
    m.insert("hit_median_ms".into(), serde_json::json!(s.hit_median_ms));
    m.insert("miss_median_ms".into(), serde_json::json!(s.miss_median_ms));
    m.insert(
        "first_chunk_retx_mean".into(),
        serde_json::json!(s.first_chunk_retx_mean),
    );
    m.insert(
        "later_chunk_retx_mean".into(),
        serde_json::json!(s.later_chunk_retx_mean),
    );
    serde_json::to_string_pretty(&serde_json::Value::Object(m)).expect("serialize golden")
}

fn field(v: &serde_json::Value, name: &str) -> f64 {
    v.get(name)
        .and_then(|x| x.as_f64())
        .unwrap_or_else(|| panic!("golden file missing field {name}"))
}

fn assert_close(name: &str, got: f64, want: f64, rel_tol: f64) {
    let tol = rel_tol * want.abs();
    assert!(
        (got - want).abs() <= tol,
        "{name} drifted outside tolerance: got {got}, golden {want} (±{tol:.6})\n\
         If this change is intentional, regenerate with:\n\
         GOLDEN_REGEN=1 cargo test -q --test golden_shapes"
    );
}

#[test]
fn paper_shapes_match_golden_snapshot() {
    let shapes = measure();
    let path = golden_path();

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden");
        // Atomic so an interrupted regen can't leave a torn golden file.
        streamlab::supervisor::atomic_write(&path, (to_json(&shapes) + "\n").as_bytes())
            .expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with GOLDEN_REGEN=1 cargo test -q --test golden_shapes",
            path.display()
        )
    });
    let golden: serde_json::Value = serde_json::from_str(&text).expect("parse golden");

    assert_close(
        "miss_rate",
        shapes.miss_rate,
        field(&golden, "miss_rate"),
        REL_TOL,
    );
    assert_close(
        "hit_median_ms",
        shapes.hit_median_ms,
        field(&golden, "hit_median_ms"),
        REL_TOL,
    );
    assert_close(
        "miss_median_ms",
        shapes.miss_median_ms,
        field(&golden, "miss_median_ms"),
        REL_TOL,
    );
    assert_close(
        "first_chunk_retx_mean",
        shapes.first_chunk_retx_mean,
        field(&golden, "first_chunk_retx_mean"),
        REL_TOL,
    );
    assert_close(
        "later_chunk_retx_mean",
        shapes.later_chunk_retx_mean,
        field(&golden, "later_chunk_retx_mean"),
        REL_TOL,
    );

    // Shape invariants, independent of exact snapshot values: misses cost
    // an order of magnitude, and the first chunk dominates retransmits.
    assert!(
        shapes.miss_median_ms > 10.0 * shapes.hit_median_ms,
        "miss/hit separation collapsed: {} vs {}",
        shapes.miss_median_ms,
        shapes.hit_median_ms
    );
    assert!(
        shapes.first_chunk_retx_mean > 1.5 * shapes.later_chunk_retx_mean.max(0.01),
        "first-chunk retransmit dominance collapsed: {} vs {}",
        shapes.first_chunk_retx_mean,
        shapes.later_chunk_retx_mean
    );
}
