//! End-to-end integration tests: one simulated measurement window must
//! reproduce the *shapes* of the paper's findings (Table 1).
//!
//! These run at the `tiny` scale (hundreds of sessions) so the suite stays
//! fast; magnitudes are asserted loosely, orderings and crossovers
//! strictly.

use streamlab::analysis::figures::{cdn, client, network};
use streamlab::experiments::{run_experiment, ExperimentId};
use streamlab::{RunOutput, Simulation, SimulationConfig};

/// One shared tiny run per test binary (the assertions are read-only).
fn run() -> &'static RunOutput {
    use std::sync::OnceLock;
    static OUT: OnceLock<RunOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Simulation::new(SimulationConfig::tiny(2016))
            .run()
            .expect("tiny simulation")
    })
}

#[test]
fn dataset_is_joined_and_preprocessed() {
    let out = run();
    assert!(out.dataset.sessions.len() > 300);
    assert!(out.dataset.chunk_count() > 5_000);
    // §3: proxy filtering keeps roughly 77% of sessions.
    let retention = out.dataset.retention();
    assert!((0.68..0.92).contains(&retention), "retention = {retention}");
}

#[test]
fn finding_cdn1_retry_timer_bimodalizes_read_latency() {
    // Fig. 5: D_read splits into two modes separated by ~10 ms.
    let out = run();
    let series = cdn::fig05(&out.dataset, 400);
    let read = &series[2];
    assert_eq!(read.label, "read");
    let p25 = read.x_at(0.25).unwrap();
    let p90 = read.x_at(0.90).unwrap();
    assert!(p25 < 5.0, "fast mode should be RAM-speed, got {p25} ms");
    assert!(
        p90 > 10.0,
        "slow mode must sit past the 10 ms timer, got {p90}"
    );
}

#[test]
fn finding_cdn2_misses_cost_an_order_of_magnitude() {
    let out = run();
    let s = cdn::headline_stats(&out.dataset);
    assert!(
        s.miss_rate > 0.005 && s.miss_rate < 0.25,
        "miss = {}",
        s.miss_rate
    );
    assert!(
        s.miss_median_ms > 10.0 * s.hit_median_ms,
        "hit {} vs miss {}",
        s.hit_median_ms,
        s.miss_median_ms
    );
    // Hit median is single-digit milliseconds, like the paper's 2 ms.
    assert!(s.hit_median_ms < 8.0, "hit median = {}", s.hit_median_ms);
}

#[test]
fn finding_cdn3_unpopular_videos_miss_persistently() {
    let out = run();
    let rows = cdn::fig06(&out.dataset, out.catalog.len(), 10);
    let head = &rows[0];
    let tail = rows.last().unwrap();
    assert!(
        tail.miss_pct > 5.0 * head.miss_pct.max(0.5),
        "head {}% vs tail {}%",
        head.miss_pct,
        tail.miss_pct
    );
}

#[test]
fn finding_cdn4_cache_focused_routing_load_paradox() {
    // §4.1.3: busier servers are *not* slower; under content-affinity
    // routing the correlation is flat-to-negative.
    let out = run();
    let corr = out.load_latency_correlation();
    assert!(corr < 0.35, "load/latency correlation = {corr}");
}

#[test]
fn finding_net1_enterprises_dominate_high_variability() {
    let out = run();
    let t4 = network::tab04(&out.dataset, 10, 5);
    // The CV ranking is led by an enterprise, by a wide margin over the
    // pooled residential rate (paper: ~40% vs ~1%).
    let top = t4.top.first().expect("ranking non-empty");
    assert_eq!(
        top.kind,
        streamlab::workload::OrgKind::Enterprise,
        "{top:?}"
    );
    assert!(
        top.pct() > 8.0 * t4.residential_pct.max(0.3),
        "top {}% vs residential {}%",
        top.pct(),
        t4.residential_pct
    );
    // ...while residential ISPs pool near the paper's ~1%.
    assert!(
        t4.residential_pct < 5.0,
        "residential = {}%",
        t4.residential_pct
    );
}

#[test]
fn finding_net2_tail_latency_is_distance_or_enterprise() {
    let out = run();
    let f9 = network::fig09(&out.dataset, 100.0, 100);
    assert!(f9.tail_prefixes > 0);
    // Most tail prefixes are outside the US (paper: 75%)...
    assert!(f9.non_us_share > 0.4, "non-US share = {}", f9.non_us_share);
    // ...and the close-by US tail is enterprise-dominated (paper: 90%).
    // At tiny scale the close set can be empty; assert only when it has
    // enough members to mean something.
    if f9.close_us_prefixes >= 3 {
        assert!(
            f9.close_enterprise_share > 0.6,
            "close enterprise share = {} over {} prefixes",
            f9.close_enterprise_share,
            f9.close_us_prefixes
        );
    }
}

#[test]
fn finding_net3_early_losses_hurt_most() {
    let out = run();
    // Fig. 15: the first chunk has the highest retransmission rate.
    let f15 = network::fig15(&out.dataset, 19);
    let first = f15.bins.first().expect("chunk 0");
    assert_eq!(first.x_center, 0.0);
    let later: Vec<&_> = f15.bins.iter().filter(|b| b.x_center >= 3.0).collect();
    let later_mean = later.iter().map(|b| b.mean).sum::<f64>() / later.len() as f64;
    assert!(
        first.mean > 1.5 * later_mean.max(0.01),
        "first {} vs later {}",
        first.mean,
        later_mean
    );
    // Fig. 14: a loss at a chunk raises the rebuffering odds there.
    let f14 = network::fig14(&out.dataset, 19);
    let lift: Vec<f64> = f14
        .iter()
        .filter(|r| r.n > 50 && r.p_rebuf > 0.0)
        .map(|r| r.p_rebuf_given_loss / r.p_rebuf)
        .collect();
    let mean_lift = lift.iter().sum::<f64>() / lift.len().max(1) as f64;
    assert!(mean_lift > 1.3, "conditional lift = {mean_lift}");
}

#[test]
fn finding_net3b_loss_free_sessions_are_common_and_rebuffer_less() {
    let out = run();
    let f11 = network::fig11(&out.dataset, 100);
    // Paper: 40% of sessions see no loss; >90% stay under 10% retx.
    assert!(
        (0.15..0.65).contains(&f11.loss_free_share),
        "loss-free share = {}",
        f11.loss_free_share
    );
    assert!(f11.below_10pct_share > 0.9);
    // Rebuffering mass concentrates in the loss sessions: compare the
    // CCDF at a 1% rebuffering rate.
    let at = |s: &streamlab::analysis::figures::CdfSeries| {
        s.points
            .iter()
            .find(|&&(x, _)| x >= 1.0)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    };
    assert!(at(&f11.rebuf_loss) > at(&f11.rebuf_no_loss));
}

#[test]
fn finding_net4_throughput_dominates_bad_performance() {
    let out = run();
    let f16 = network::fig16(&out.dataset, 200);
    // Bad chunks exist but are the minority.
    assert!(
        (0.005..0.35).contains(&f16.bad_share),
        "bad = {}",
        f16.bad_share
    );
    // D_LB separates good from bad far more than D_FB does (medians).
    let med = |s: &streamlab::analysis::figures::CdfSeries| s.x_at(0.5).unwrap();
    let dlb_ratio = med(&f16.dlb_bad) / med(&f16.dlb_good);
    let dfb_ratio = med(&f16.dfb_bad) / med(&f16.dfb_good);
    assert!(
        dlb_ratio > 2.0 * dfb_ratio,
        "dlb x{dlb_ratio} vs dfb x{dfb_ratio}"
    );
    // Bad chunks have a lower latency *share* (throughput-dominated).
    assert!(med(&f16.share_bad) < med(&f16.share_good));
}

#[test]
fn finding_client1_transient_stack_buffering_detected() {
    let out = run();
    let f17 = client::fig17(&out.dataset);
    let rate = f17.flagged_chunks as f64 / f17.total_chunks.max(1) as f64;
    // Paper: 0.32% of chunks, 3.1% of sessions.
    assert!((0.0005..0.02).contains(&rate), "flag rate = {rate}");
    assert!(f17.precision > 0.6, "precision = {}", f17.precision);
    assert!(f17.recall > 0.2, "recall = {}", f17.recall);
}

#[test]
fn finding_client2_first_chunks_have_higher_stack_latency() {
    let out = run();
    let f18 = client::fig18(&out.dataset, (20.0, 120.0), 100);
    assert!(
        (100.0..700.0).contains(&f18.median_gap_ms),
        "median gap = {} ms (paper ~300)",
        f18.median_gap_ms
    );
}

#[test]
fn finding_client3_unpopular_browsers_render_worse() {
    let out = run();
    let f22 = client::fig22(&out.dataset, 20);
    assert!(
        !f22.rows.is_empty(),
        "no unpopular-browser rows at this scale"
    );
    for row in &f22.rows {
        assert!(
            row.dropped_pct > f22.rest_avg_pct,
            "{} drops {}% <= rest {}%",
            row.label,
            row.dropped_pct,
            f22.rest_avg_pct
        );
    }
}

#[test]
fn finding_client4_download_rate_knee_at_1_5() {
    let out = run();
    let f19 = client::fig19(&out.dataset);
    let mean_at = |lo: f64, hi: f64| {
        let bins: Vec<&_> = f19
            .by_rate
            .bins
            .iter()
            .filter(|b| b.x_center >= lo && b.x_center < hi)
            .collect();
        bins.iter().map(|b| b.mean * b.count as f64).sum::<f64>()
            / bins.iter().map(|b| b.count as f64).sum::<f64>().max(1.0)
    };
    let slow = mean_at(0.0, 1.0);
    let knee = mean_at(1.5, 2.5);
    let fast = mean_at(2.5, 5.0);
    assert!(slow > 2.0 * knee, "slow {slow} vs knee {knee}");
    // Beyond the knee nothing improves — but nothing collapses either
    // (high-rate bins carry CPU-bound sessions; allow their noise).
    assert!(fast < 2.5 * knee.max(1.0), "knee {knee} vs fast {fast}");
    assert!(f19.hardware_mean_pct < 2.0);
}

#[test]
fn finding_client5_dds_platform_ranking() {
    let out = run();
    let t5 = client::tab05(&out.dataset, 30);
    assert!(!t5.rows.is_empty());
    // Paper: 17.6% of chunks show non-zero D_DS.
    assert!(
        (0.03..0.45).contains(&t5.nonzero_fraction),
        "nonzero D_DS fraction = {}",
        t5.nonzero_fraction
    );
    // Safari-off-Mac should rank above Chrome wherever both appear.
    let rank_of = |os: streamlab::workload::Os, b: streamlab::workload::Browser| {
        t5.rows.iter().position(|r| r.os == os && r.browser == b)
    };
    use streamlab::workload::{Browser, Os};
    if let (Some(safari), Some(chrome)) = (
        rank_of(Os::Windows, Browser::Safari),
        rank_of(Os::Windows, Browser::Chrome),
    ) {
        assert!(safari < chrome, "Safari/Win must out-rank Chrome/Win");
    }
}

#[test]
fn every_experiment_produces_output() {
    let out = run();
    for &id in ExperimentId::all() {
        let r = run_experiment(id, out);
        assert!(!r.text.trim().is_empty(), "{id:?} rendered empty");
        assert!(
            r.json.is_object()
                || r.json.is_array()
                || !r.json.is_null()
                || id == ExperimentId::Fig13,
            "{id:?} produced null JSON"
        );
    }
}

#[test]
fn determinism_across_identical_runs() {
    let a = Simulation::new(SimulationConfig::tiny(77)).run().unwrap();
    let b = Simulation::new(SimulationConfig::tiny(77)).run().unwrap();
    assert_eq!(a.dataset.chunk_count(), b.dataset.chunk_count());
    let digest = |o: &RunOutput| -> (u64, u64, u64) {
        let mut fb = 0u64;
        let mut retx = 0u64;
        let mut drops = 0u64;
        for (_, c) in o.dataset.chunks() {
            fb = fb.wrapping_add(c.player.d_fb.as_nanos());
            retx += u64::from(c.cdn.retx_segments);
            drops += u64::from(c.player.dropped_frames);
        }
        (fb, retx, drops)
    };
    assert_eq!(digest(&a), digest(&b));
}

#[test]
fn finding_client6_bitrate_paradox() {
    // §4.4.2: high-bitrate sessions render *better*, because the ABR
    // selects high bitrates exactly on the connections with lower RTT
    // variation and lower loss. The low-bitrate bucket is a small minority
    // (most links comfortably exceed 1 Mbps), so this test runs its own
    // larger window for sample size.
    let mut cfg = SimulationConfig::tiny(2016);
    cfg.traffic.sessions = 2_000;
    let out = Simulation::new(cfg).run().expect("run");
    let p = client::bitrate_paradox(&out.dataset);
    assert!(
        p.high_sessions > 200 && p.low_sessions >= 40,
        "split: {} high / {} low",
        p.high_sessions,
        p.low_sessions
    );
    assert!(
        p.high_dropped_pct < p.low_dropped_pct,
        "high-bitrate drops {} >= low-bitrate {}",
        p.high_dropped_pct,
        p.low_dropped_pct
    );
    assert!(
        p.high_srttvar_ms < p.low_srttvar_ms,
        "selection effect missing: srttvar {} vs {}",
        p.high_srttvar_ms,
        p.low_srttvar_ms
    );
    assert!(p.high_retx_rate < p.low_retx_rate);
}

#[test]
fn finding_client7_stack_latency_estimate_tracks_rebuffering() {
    // §4.3.2: the paper reports that rebuffering sessions carry much
    // higher D_DS. What production measures is the Eq. 5 *estimate*, and
    // that estimate inflates under network queueing — so the association
    // must show in the estimate columns. The ground-truth columns reveal
    // how much of it the estimator's network sensitivity supplies (a
    // decomposition only a simulator can do).
    let out = run();
    let b = client::dds_vs_rebuffering(&out.dataset);
    assert!(b.counts[0] > 50, "bucket sizes: {:?}", b.counts);
    if b.counts[2] >= 10 {
        assert!(
            b.est_heavy_rebuffer_ms > b.est_no_rebuffer_ms,
            "estimated D_DS: heavy {} <= none {}",
            b.est_heavy_rebuffer_ms,
            b.est_no_rebuffer_ms
        );
    }
}
