//! Property tests for the work-stealing shard scheduler.
//!
//! The engine's determinism contract says the [`WorkQueue`] only decides
//! *which worker runs which job when* — results land in job-id-indexed
//! slots, so any steal interleaving must merge into the same canonical
//! output. These tests drive adversarial interleavings (a randomized
//! schedule of which worker pops next) against exactly that contract.

use proptest::prelude::*;
use streamlab::scheduler::WorkQueue;

/// Drain the queue single-threadedly but in an adversarial order: step
/// `k` lets worker `order[k] % workers` pop next. Returns, per job id,
/// the worker that claimed it.
fn drain_with_schedule(workers: usize, costs: &[u64], order: &[u8]) -> Vec<Option<usize>> {
    let q = WorkQueue::deal(workers, costs);
    let mut claimed_by: Vec<Option<usize>> = vec![None; costs.len()];
    let mut idle_scans = 0usize;
    let mut k = 0usize;
    while idle_scans < workers {
        let w = if order.is_empty() {
            k % workers
        } else {
            order[k % order.len()] as usize % workers
        };
        k += 1;
        match q.pop(w) {
            Some(job) => {
                assert!(
                    claimed_by[job].is_none(),
                    "job {job} claimed twice (second time by worker {w})"
                );
                claimed_by[job] = Some(w);
                idle_scans = 0;
            }
            None => idle_scans += 1,
        }
    }
    claimed_by
}

proptest! {
    /// Every job is claimed exactly once no matter which workers pop in
    /// which order — the merge slots (indexed by job id) are total and
    /// collision-free under any steal interleaving.
    #[test]
    fn adversarial_interleavings_claim_every_job_exactly_once(
        workers in 1usize..9,
        costs in proptest::collection::vec(0u64..1000, 1..40),
        order in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let claimed = drain_with_schedule(workers, &costs, &order);
        for (job, by) in claimed.iter().enumerate() {
            prop_assert!(by.is_some(), "job {job} never claimed");
        }
    }

    /// Simulate the engine's merge: each claim writes its job id into a
    /// pre-allocated slot; reading the slots front to back must yield
    /// canonical order (0, 1, 2, ...) regardless of the interleaving —
    /// i.e. the steal order can never leak into the output.
    #[test]
    fn merge_slots_come_out_in_canonical_order(
        workers in 1usize..9,
        costs in proptest::collection::vec(0u64..1000, 1..40),
        order in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let q = WorkQueue::deal(workers, &costs);
        let mut slots: Vec<Option<usize>> = vec![None; costs.len()];
        let mut k = 0usize;
        let mut idle = 0usize;
        while idle < workers {
            let w = order[k % order.len()] as usize % workers;
            k += 1;
            match q.pop(w) {
                Some(job) => {
                    slots[job] = Some(job);
                    idle = 0;
                }
                None => idle += 1,
            }
        }
        let merged: Vec<usize> = slots.into_iter().map(|s| s.expect("slot filled")).collect();
        let canonical: Vec<usize> = (0..costs.len()).collect();
        prop_assert_eq!(merged, canonical);
    }

    /// The LPT deal itself is a pure function of the costs: same costs,
    /// same deal, and it covers every job exactly once.
    #[test]
    fn deal_is_reproducible_and_total(
        workers in 1usize..9,
        costs in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let a = WorkQueue::deal(workers, &costs).assignments();
        let b = WorkQueue::deal(workers, &costs).assignments();
        prop_assert_eq!(&a, &b);
        let mut all: Vec<usize> = a.into_iter().flatten().collect();
        all.sort_unstable();
        let canonical: Vec<usize> = (0..costs.len()).collect();
        prop_assert_eq!(all, canonical);
    }

    /// Degenerate shard/worker shapes round-trip: one job among many
    /// workers, more jobs than workers, and zero-cost (zero-session)
    /// jobs all drain completely with no worker wedged.
    #[test]
    fn shard_count_need_not_match_worker_count(
        workers in 1usize..9,
        jobs in 1usize..40,
        zero_every in 1usize..5,
    ) {
        let costs: Vec<u64> = (0..jobs)
            .map(|i| if i % zero_every == 0 { 0 } else { (i as u64 * 13) % 97 + 1 })
            .collect();
        let claimed = drain_with_schedule(workers, &costs, &[]);
        prop_assert!(claimed.iter().all(|c| c.is_some()));
        // After a full drain every deque is empty for every worker.
        let q = WorkQueue::deal(workers, &costs);
        let mut popped = 0;
        while q.pop(popped % workers).is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, jobs);
        for w in 0..workers {
            prop_assert_eq!(q.pop(w), None);
        }
    }
}
