//! Estimator validation on a full simulated dataset: the paper's Eq. 1/4/5
//! estimators measured against the simulator's ground truth.

use streamlab::analysis::validate::{validate_eq4, validate_eq5, validate_rtt0};
use streamlab::{RunOutput, Simulation, SimulationConfig};

fn run() -> &'static RunOutput {
    use std::sync::OnceLock;
    static OUT: OnceLock<RunOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        Simulation::new(SimulationConfig::tiny(404))
            .run()
            .expect("tiny simulation")
    })
}

#[test]
fn eq5_bound_rarely_violates_and_has_power() {
    let v = validate_eq5(&run().dataset);
    assert!(v.chunks > 5_000);
    // The RTO argument can be beaten by RTT spikes beyond the smoothed
    // estimate; that must stay a rare corner, not a systematic error.
    assert!(
        v.violation_rate() < 0.01,
        "violation rate = {} ({} of {})",
        v.violation_rate(),
        v.violations,
        v.chunks
    );
    // And the bound must actually surface large stack latencies.
    assert!(v.big_dds_chunks > 0, "no large-D_DS chunks at this scale?");
    assert!(v.power() > 0.5, "power = {}", v.power());
}

#[test]
fn eq4_detector_is_precise_on_full_sim() {
    let v = validate_eq4(&run().dataset);
    assert!(v.truth_events > 0, "no transient events generated");
    assert!(v.precision() > 0.6, "precision = {}", v.precision());
    assert!(v.recall() > 0.2, "recall = {}", v.recall());
    // Flag rate in the paper's ballpark (0.32%).
    let rate = v.flagged as f64 / v.chunks as f64;
    assert!(rate < 0.02, "flag rate = {rate}");
}

#[test]
fn rtt0_residual_upper_bounds_truth() {
    let v = validate_rtt0(&run().dataset);
    assert!(v.chunks > 5_000);
    // Jitter-level undershoot is expected (two independent RTT draws),
    // and a latency-spike episode can begin or end *between* the rtt0
    // sample and the first data round, making the two draws diverge by
    // the full spike multiplier. Only a systematic excess would indicate
    // an accounting bug.
    assert!(
        (v.violations as f64) < 0.035 * v.chunks as f64,
        "violations = {} of {} (jitter-level: {})",
        v.violations,
        v.chunks,
        v.jitter_undershoots
    );
    assert!(v.mean_over_ms >= 0.0);
}
