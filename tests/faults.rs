//! Scenario-driven fault injection: the example scenarios under
//! `examples/` drive end-to-end runs whose failure signatures — miss
//! storms after restarts, rejections and retries under outages, partial
//! results after a shard panic — must appear on cue and fade afterwards.

use streamlab::faults::FaultScenario;
use streamlab::telemetry::records::CacheOutcome;
use streamlab::{ObsOptions, RunOutput, Simulation, SimulationConfig};

fn scenario(name: &str) -> FaultScenario {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    FaultScenario::from_json_file(&path).expect("example scenario parses")
}

fn run_with(scenario: FaultScenario, seed: u64, threads: usize) -> RunOutput {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    cfg.faults = scenario;
    Simulation::new(cfg)
        .run_observed(ObsOptions::default())
        .expect("faulted run completes")
}

/// Share of chunks served from RAM among those served in `[from_s, until_s)`.
fn ram_share(out: &RunOutput, from_s: f64, until_s: f64) -> f64 {
    let mut hits = 0u64;
    let mut total = 0u64;
    for (_, c) in out.dataset.chunks() {
        let t = c.cdn.served_at.as_secs_f64();
        if t >= from_s && t < until_s {
            total += 1;
            if c.cdn.cache == CacheOutcome::RamHit {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

#[test]
fn restart_storm_miss_rate_spikes_then_recovers() {
    let out = run_with(scenario("restart_storm.json"), 2016, 2);
    let m = &out.metrics.as_ref().expect("metrics").sim;
    assert_eq!(m.server_restarts.get(), 20, "every tiny server restarts");

    // The storm wipes every RAM cache at t=7200 s: requests that were RAM
    // hits fall through to the (warm) disk tier or the backend — the §5
    // churn→miss-storm mechanism. The RAM-hit share collapses right after
    // the storm and climbs back as the working set refills.
    let before = ram_share(&out, 5400.0, 7200.0);
    let after = ram_share(&out, 7200.0, 9000.0);
    let recovered = ram_share(&out, 12600.0, 14400.0);
    assert!(
        after < 0.6 * before,
        "no miss storm: RAM share before={before:.3} after={after:.3}"
    );
    assert!(
        recovered > 1.5 * after,
        "no recovery: after={after:.3} recovered={recovered:.3}"
    );
}

#[test]
fn outage_restart_scenario_reports_resilience_activity() {
    let out = run_with(scenario("faults_outage_restart.json"), 2016, 2);
    let m = &out.metrics.as_ref().expect("metrics").sim;
    assert_eq!(m.server_restarts.get(), 3);
    assert!(m.outage_rejections.get() > 0, "PoP outage rejects requests");
    assert!(
        m.request_retries.get() > 0,
        "clients retry after rejections"
    );
    assert!(m.failovers.get() > 0, "failover kicks in after 2 failures");
    assert!(out.shard_errors.is_empty());
    // Sessions either finish or abort with a proper end event — the run
    // itself always completes.
    assert_eq!(m.sessions_started.get(), m.sessions_ended.get());
}

#[test]
fn shard_panic_scenario_yields_structured_partial_results() {
    let out = run_with(scenario("faults_shard_panic.json"), 2016, 2);
    assert_eq!(out.shard_errors.len(), 1);
    assert_eq!(out.shard_errors[0].pop_index(), 0);
    assert!(out.shard_errors[0]
        .to_string()
        .contains("injected shard panic"));
    assert!(
        !out.dataset.sessions.is_empty(),
        "surviving shards still produce their sessions"
    );
}
