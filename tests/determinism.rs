//! Cross-thread-count determinism: the sharded engine's contract is that
//! `threads` is purely a wall-clock knob. The same seed must produce a
//! **byte-identical** serialized dataset and identical per-server reports
//! at every thread count.

use streamlab::{ObsOptions, Simulation, SimulationConfig};

fn run_serialized(seed: u64, threads: usize) -> (String, String) {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    let out = Simulation::new(cfg).run().expect("run");
    let dataset = serde_json::to_string(&out.dataset).expect("serialize dataset");
    let servers = serde_json::to_string(&out.servers).expect("serialize servers");
    (dataset, servers)
}

/// Run instrumented and serialize the deterministic metrics block — the
/// exact bytes `streamlab run --metrics-out` writes (modulo pretty-printing,
/// which is itself deterministic).
fn run_metrics_serialized(seed: u64, threads: usize) -> String {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    let out = Simulation::new(cfg)
        .run_observed(ObsOptions { trace: false })
        .expect("run");
    let metrics = out.metrics.expect("observed run must carry metrics");
    serde_json::to_string(&metrics.sim).expect("serialize sim metrics")
}

#[test]
fn thread_counts_1_2_8_are_byte_identical() {
    let (dataset_1, servers_1) = run_serialized(2016, 1);
    for threads in [2, 8] {
        let (dataset_n, servers_n) = run_serialized(2016, threads);
        assert!(
            dataset_1 == dataset_n,
            "dataset bytes diverge between threads=1 and threads={threads}"
        );
        assert!(
            servers_1 == servers_n,
            "server reports diverge between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn parallel_runs_are_reproducible_run_to_run() {
    let a = run_serialized(7, 4);
    let b = run_serialized(7, 4);
    assert!(a == b, "two threads=4 runs of the same seed diverge");
}

#[test]
fn sim_metrics_are_byte_identical_across_thread_counts() {
    let metrics_1 = run_metrics_serialized(2016, 1);
    for threads in [2, 8] {
        let metrics_n = run_metrics_serialized(2016, threads);
        assert!(
            metrics_1 == metrics_n,
            "sim metrics bytes diverge between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn sim_metrics_are_reproducible_run_to_run() {
    let a = run_metrics_serialized(7, 4);
    let b = run_metrics_serialized(7, 4);
    assert!(
        a == b,
        "two observed threads=4 runs of the same seed diverge"
    );
}
