//! Cross-thread-count determinism: the sharded engine's contract is that
//! `threads` is purely a wall-clock knob. The same seed must produce a
//! **byte-identical** serialized dataset and identical per-server reports
//! at every thread count.

use streamlab::{ObsOptions, Simulation, SimulationConfig};

fn run_serialized(seed: u64, threads: usize) -> (String, String) {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    let out = Simulation::new(cfg).run().expect("run");
    let dataset = serde_json::to_string(&out.dataset).expect("serialize dataset");
    let servers = serde_json::to_string(&out.servers).expect("serialize servers");
    (dataset, servers)
}

/// Run instrumented and serialize the deterministic metrics block — the
/// exact bytes `streamlab run --metrics-out` writes (modulo pretty-printing,
/// which is itself deterministic).
fn run_metrics_serialized(seed: u64, threads: usize) -> String {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    let out = Simulation::new(cfg)
        .run_observed(ObsOptions::default())
        .expect("run");
    let metrics = out.metrics.expect("observed run must carry metrics");
    serde_json::to_string(&metrics.sim).expect("serialize sim metrics")
}

#[test]
fn thread_counts_1_2_4_8_are_byte_identical() {
    let (dataset_1, servers_1) = run_serialized(2016, 1);
    for threads in [2, 4, 8] {
        let (dataset_n, servers_n) = run_serialized(2016, threads);
        assert!(
            dataset_1 == dataset_n,
            "dataset bytes diverge between threads=1 and threads={threads}"
        );
        assert!(
            servers_1 == servers_n,
            "server reports diverge between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn parallel_runs_are_reproducible_run_to_run() {
    let a = run_serialized(7, 4);
    let b = run_serialized(7, 4);
    assert!(a == b, "two threads=4 runs of the same seed diverge");
}

#[test]
fn sim_metrics_are_byte_identical_across_thread_counts() {
    let metrics_1 = run_metrics_serialized(2016, 1);
    for threads in [2, 4, 8] {
        let metrics_n = run_metrics_serialized(2016, threads);
        assert!(
            metrics_1 == metrics_n,
            "sim metrics bytes diverge between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn sim_metrics_are_reproducible_run_to_run() {
    let a = run_metrics_serialized(7, 4);
    let b = run_metrics_serialized(7, 4);
    assert!(
        a == b,
        "two observed threads=4 runs of the same seed diverge"
    );
}

/// The acceptance scenario: server restarts, a whole-PoP outage and a
/// loss burst, all active inside the tiny 4 h window.
fn faulted_config(seed: u64, threads: usize) -> SimulationConfig {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/faults_outage_restart.json"
    );
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    cfg.faults = streamlab::faults::FaultScenario::from_json_file(path).expect("scenario parses");
    cfg
}

fn run_faulted_serialized(seed: u64, threads: usize) -> (String, String, String) {
    let out = Simulation::new(faulted_config(seed, threads))
        .run_observed(ObsOptions::default())
        .expect("faulted run");
    let dataset = serde_json::to_string(&out.dataset).expect("serialize dataset");
    let servers = serde_json::to_string(&out.servers).expect("serialize servers");
    let metrics =
        serde_json::to_string(&out.metrics.expect("metrics").sim).expect("serialize sim metrics");
    (dataset, servers, metrics)
}

#[test]
fn faulted_runs_are_byte_identical_across_thread_counts() {
    let (dataset_1, servers_1, metrics_1) = run_faulted_serialized(2016, 1);
    // The scenario actually fired: retries, failovers and restarts all
    // show up in the deterministic metrics block.
    for key in ["server_restarts", "request_retries", "failovers"] {
        let needle = format!("\"{key}\":0");
        assert!(
            !metrics_1.contains(&needle),
            "expected nonzero {key} in {metrics_1}"
        );
    }
    for threads in [2, 4, 8] {
        let (dataset_n, servers_n, metrics_n) = run_faulted_serialized(2016, threads);
        assert!(
            dataset_1 == dataset_n,
            "faulted dataset bytes diverge between threads=1 and threads={threads}"
        );
        assert!(
            servers_1 == servers_n,
            "faulted server reports diverge between threads=1 and threads={threads}"
        );
        assert!(
            metrics_1 == metrics_n,
            "faulted sim metrics diverge between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn faulted_runs_are_reproducible_run_to_run() {
    let a = run_faulted_serialized(7, 4);
    let b = run_faulted_serialized(7, 4);
    assert!(
        a == b,
        "two faulted threads=4 runs of the same seed diverge"
    );
}
