//! Cross-thread-count determinism: the sharded engine's contract is that
//! `threads` is purely a wall-clock knob. The same seed must produce a
//! **byte-identical** serialized dataset and identical per-server reports
//! at every thread count.

use streamlab::{Simulation, SimulationConfig};

fn run_serialized(seed: u64, threads: usize) -> (String, String) {
    let mut cfg = SimulationConfig::tiny(seed);
    cfg.threads = threads;
    let out = Simulation::new(cfg).run().expect("run");
    let dataset = serde_json::to_string(&out.dataset).expect("serialize dataset");
    let servers = serde_json::to_string(&out.servers).expect("serialize servers");
    (dataset, servers)
}

#[test]
fn thread_counts_1_2_8_are_byte_identical() {
    let (dataset_1, servers_1) = run_serialized(2016, 1);
    for threads in [2, 8] {
        let (dataset_n, servers_n) = run_serialized(2016, threads);
        assert!(
            dataset_1 == dataset_n,
            "dataset bytes diverge between threads=1 and threads={threads}"
        );
        assert!(
            servers_1 == servers_n,
            "server reports diverge between threads=1 and threads={threads}"
        );
    }
}

#[test]
fn parallel_runs_are_reproducible_run_to_run() {
    let a = run_serialized(7, 4);
    let b = run_serialized(7, 4);
    assert!(a == b, "two threads=4 runs of the same seed diverge");
}
